#include "core/constraint_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>

#include "core/groups.h"
#include "eval/ground_truth.h"
#include "netlist/builder.h"
#include "util/error.h"

namespace ancstr {
namespace {

struct IoSetup {
  Library lib;
  FlatDesign design;
  DetectionResult detection;
};

IoSetup makeSetup() {
  NetlistBuilder b;
  b.beginSubckt("leaf", {"a", "vss"});
  b.res("r1", "a", "m", 1e3);
  b.res("r2", "m", "vss", 1e3);
  b.endSubckt();
  b.beginSubckt("top", {"x", "y", "vss"});
  b.inst("u1", "leaf", {"x", "vss"});
  b.inst("u2", "leaf", {"y", "vss"});
  b.nmos("m1", "x", "y", "t", "vss", 1e-6, 0.1e-6);
  b.nmos("m2", "y", "x", "t", "vss", 1e-6, 0.1e-6);
  b.endSubckt();
  Library lib = b.build("top");
  FlatDesign design = FlatDesign::elaborate(lib);

  DetectionResult detection;
  detection.systemThreshold = 0.98;
  detection.deviceThreshold = 0.99;
  const CandidateSet candidates = enumerateCandidates(design, lib);
  for (const CandidatePair& pair : candidates.pairs) {
    ScoredCandidate c;
    c.pair = pair;
    c.similarity = 0.995;
    c.accepted = true;
    detection.scored.push_back(c);
  }
  detection.set = buildConstraintSet(design, detection);
  return {std::move(lib), std::move(design), std::move(detection)};
}

TEST(ConstraintIo, JsonRoundTrip) {
  const IoSetup s = makeSetup();
  ConstraintSet set = s.detection.set;
  appendSymmetryGroups(s.design, set);
  const std::string text = constraintSetToJson(s.design, set);
  const auto parsed = parseConstraintsJson(text);

  // Every accepted constraint must come back with the same key fields.
  std::size_t pairRecords = 0;
  for (const ParsedConstraint& p : parsed) {
    if (p.nameB.empty()) continue;
    ++pairRecords;
    EXPECT_NEAR(p.similarity, 0.995, 1e-12);
  }
  EXPECT_EQ(pairRecords, s.detection.scored.size());
}

TEST(ConstraintIo, NativeRoundTripIsLossless) {
  const IoSetup s = makeSetup();
  ConstraintSet set = s.detection.set;
  appendSymmetryGroups(s.design, set);
  const ConstraintSet back =
      parseConstraintSetJson(constraintSetToJson(s.design, set));
  EXPECT_TRUE(back == set);
  // And the round trip is a fixed point: re-serializing gives the bytes.
  EXPECT_EQ(constraintSetToJson(s.design, back),
            constraintSetToJson(s.design, set));
}

TEST(ConstraintIo, NativeParserRejectsV1Documents) {
  const std::string v1 =
      "{\"format\":\"ancstr-constraints\",\"version\":1,\"constraints\":[]}";
  try {
    parseConstraintSetJson(v1);
    FAIL() << "expected parseConstraintSetJson to reject version 1";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("io.format"), std::string::npos);
  }
}

TEST(ConstraintIo, NativeParserRejectsUnknownType) {
  const std::string text =
      "{\"format\":\"ancstr-constraints\",\"version\":2,\"constraints\":"
      "[{\"type\":\"wormhole\",\"hierarchy\":\"\",\"hierarchy_id\":0,"
      "\"level\":\"device\",\"members\":[],\"score\":0.5}]}";
  try {
    parseConstraintSetJson(text);
    FAIL() << "expected parseConstraintSetJson to reject unknown type";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("io.format"), std::string::npos);
  }
}

TEST(ConstraintIo, JsonPreservesHierarchyAndLevel) {
  const IoSetup s = makeSetup();
  const std::string text = constraintSetToJson(s.design, s.detection.set);
  const auto parsed = parseConstraintsJson(text);
  bool sawSystem = false, sawDeviceInLeaf = false;
  for (const ParsedConstraint& p : parsed) {
    if (p.level == ConstraintLevel::kSystem && p.nameA == "u1") {
      sawSystem = true;
      EXPECT_EQ(p.hierPath, "");
    }
    if (p.hierPath == "u1" && p.nameA == "r1") sawDeviceInLeaf = true;
  }
  EXPECT_TRUE(sawSystem);
  EXPECT_TRUE(sawDeviceInLeaf);
}

TEST(ConstraintIo, SymRoundTrip) {
  const IoSetup s = makeSetup();
  ConstraintSet set = s.detection.set;
  appendSymmetryGroups(s.design, set);
  const std::string text = constraintSetToSym(s.design, set);
  const auto parsed = parseConstraintsSym(text);
  std::size_t pairs = 0;
  for (const ParsedConstraint& p : parsed) {
    if (!p.nameB.empty()) ++pairs;
  }
  EXPECT_EQ(pairs, s.detection.scored.size());
}

TEST(ConstraintIo, SymTopHierarchyIsDot) {
  const IoSetup s = makeSetup();
  const std::string text = constraintSetToSym(s.design, s.detection.set);
  EXPECT_NE(text.find(". m1 m2"), std::string::npos);
  EXPECT_NE(text.find("u1 r1 r2"), std::string::npos);
}

TEST(ConstraintIo, SymCommentsAndBlanksSkipped) {
  const auto parsed = parseConstraintsSym(
      "# comment\n\n. a b\n  # indented comment\nx1 c\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].hierPath, "");
  EXPECT_EQ(parsed[0].nameA, "a");
  EXPECT_EQ(parsed[0].nameB, "b");
  EXPECT_EQ(parsed[1].hierPath, "x1");
  EXPECT_TRUE(parsed[1].nameB.empty());
}

TEST(ConstraintIo, SymRejectsMalformedLine) {
  EXPECT_THROW(parseConstraintsSym(". a b c d\n"), ParseError);
  EXPECT_THROW(parseConstraintsSym("loneword\n"), ParseError);
}

TEST(ConstraintIo, JsonRejectsWrongFormatTag) {
  EXPECT_THROW(parseConstraintsJson("{\"format\":\"other\"}"), Error);
  EXPECT_THROW(parseConstraintsJson("not json at all"), Error);
}

TEST(ConstraintIo, ToGroundTruthSkipsSelfEntries) {
  std::vector<ParsedConstraint> parsed{
      {"", "a", "b", ConstraintLevel::kDevice, 1.0},
      {"x", "solo", "", ConstraintLevel::kDevice, 0.0},
  };
  const GroundTruth truth = toGroundTruth(parsed);
  EXPECT_EQ(truth.size(), 1u);
  EXPECT_TRUE(truth.contains("", "a", "b"));
}

// --- corrupted inputs carry the documented diagnostic codes ------------

std::string jsonErrorWhat(const std::string& text) {
  try {
    parseConstraintsJson(text);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected parseConstraintsJson to throw";
  return {};
}

TEST(ConstraintIo, TruncatedJsonCarriesTruncatedCode) {
  const IoSetup s = makeSetup();
  std::string text = constraintSetToJson(s.design, s.detection.set);
  text.resize(text.size() / 2);  // cut mid-document
  EXPECT_NE(jsonErrorWhat(text).find("io.truncated"), std::string::npos);
}

TEST(ConstraintIo, WrongFormatTagCarriesFormatCode) {
  EXPECT_NE(jsonErrorWhat("{\"format\":\"other\"}").find("io.format"),
            std::string::npos);
}

TEST(ConstraintIo, UnknownLevelCarriesFormatCode) {
  const std::string text =
      "{\"format\":\"ancstr-constraints\",\"version\":1,\"constraints\":"
      "[{\"hierarchy\":\"\",\"level\":\"galaxy\",\"a\":\"m1\",\"b\":\"m2\","
      "\"similarity\":0.5}]}";
  EXPECT_NE(jsonErrorWhat(text).find("io.format"), std::string::npos);
}

TEST(ConstraintIo, OverflowingSimilarityIsRejected) {
  // 1e999 overflows double; the number never becomes a silent inf — the
  // parse is rejected with a coded error instead.
  const std::string text =
      "{\"format\":\"ancstr-constraints\",\"version\":1,\"constraints\":"
      "[{\"hierarchy\":\"\",\"level\":\"device\",\"a\":\"m1\",\"b\":\"m2\","
      "\"similarity\":1e999}]}";
  EXPECT_NE(jsonErrorWhat(text).find("io.truncated"), std::string::npos);
}

TEST(ConstraintIo, NaNScoreDoesNotRoundTrip) {
  // A NaN score in a registry must not survive a JSON round-trip
  // unnoticed: the dump renders a token JSON cannot parse, so reading it
  // back fails loudly with a coded error.
  IoSetup s = makeSetup();
  ASSERT_FALSE(s.detection.scored.empty());
  s.detection.scored[0].similarity =
      std::numeric_limits<double>::quiet_NaN();
  s.detection.set = buildConstraintSet(s.design, s.detection);
  const std::string text = constraintSetToJson(s.design, s.detection.set);
  EXPECT_NE(jsonErrorWhat(text).find("io.truncated"), std::string::npos);
}

TEST(ConstraintIo, MissingFileCarriesFailureCode) {
  try {
    parseConstraintsFile("/nonexistent/dir/constraints.json");
    FAIL() << "expected parseConstraintsFile to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("io.failure"), std::string::npos);
  }
}

TEST(ConstraintIo, GoldenFileDiffWorkflow) {
  // Extract -> write sym -> read back as ground truth -> every accepted
  // constraint labels as true.
  const IoSetup s = makeSetup();
  const std::string text = constraintSetToSym(s.design, s.detection.set);
  const GroundTruth golden = toGroundTruth(parseConstraintsSym(text));
  const auto labels = labelCandidates(s.design, s.detection.scored, golden);
  for (const bool l : labels) EXPECT_TRUE(l);
}

// --- registry/scored-view agreement ------------------------------------
//
// The typed registry is the only detection-output currency (the legacy v1
// writers and DetectionResult::constraints() were removed per the
// docs/api.md deprecation policy); pin the registry's symmetry pairs to
// the accepted entries of the raw scored list they are built from.

using Record = std::tuple<std::string, std::string, std::string>;

TEST(ConstraintIo, RegistryPairsMatchAcceptedScored) {
  const IoSetup s = makeSetup();
  std::vector<Record> fromScored;
  for (const ScoredCandidate& c : s.detection.scored) {
    if (!c.accepted) continue;
    std::string a = c.pair.nameA, b = c.pair.nameB;
    if (b < a) std::swap(a, b);
    fromScored.emplace_back(s.design.node(c.pair.hierarchy).path, a, b);
  }
  std::vector<Record> fromSet;
  for (const Constraint* c :
       s.detection.set.ofType(ConstraintType::kSymmetryPair)) {
    std::string a = c->members[0].name, b = c->members[1].name;
    if (b < a) std::swap(a, b);
    fromSet.emplace_back(s.design.node(c->hierarchy).path, a, b);
  }
  std::sort(fromScored.begin(), fromScored.end());
  std::sort(fromSet.begin(), fromSet.end());
  EXPECT_EQ(fromScored, fromSet);
}

}  // namespace
}  // namespace ancstr
