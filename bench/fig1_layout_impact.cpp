// Reproduces Fig. 1's message: automated P&R quality depends on accurate
// symmetry constraints. The paper removes one matched-resistor-pair
// constraint from a CTDSM and shows 3.1 dB SNDR / 3.8 dB SFDR post-layout
// degradation on silicon. We cannot tape out, so the substitution
// (DESIGN.md) is a constraint-driven annealing placer plus a *geometric
// asymmetry* proxy: the mean mirror-mismatch of the designer's
// ground-truth pairs in the produced layout. Matched pairs that are laid
// out asymmetrically see mismatched parasitics — the mechanism behind the
// paper's SNDR loss.
//
// Scenarios per circuit:
//   full  — all constraints the trained detector extracted
//   -1pair — same, with one matched passive pair's constraint dropped
//   none  — no symmetry constraints at all
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "common.h"
#include "core/groups.h"
#include "harness.h"
#include "place/pnr.h"
#include "place/svg.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

struct Scenario {
  double wirelength = 0.0;
  double violation = 0.0;
  std::size_t routedWirelength = 0;
  std::size_t mirroredNets = 0;
};

std::string svgDir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "ancstr_fig1_layouts";
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Places-and-routes hierarchy node `node` honouring `pairs`; reports the
/// asymmetry of the full ground-truth pair set `assess`.
Scenario placeWith(
    const FlatDesign& design, HierNodeId node,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const std::vector<std::pair<std::string, std::string>>& assess,
    const std::string& svgName) {
  place::PlacementProblem problem = place::buildPlacementProblem(design, node);
  auto indexOf = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < problem.cells.size(); ++i) {
      if (problem.cells[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };
  for (const auto& [a, b] : pairs) {
    const int ia = indexOf(a);
    const int ib = indexOf(b);
    if (ia >= 0 && ib >= 0) {
      problem.symmetricPairs.emplace_back(static_cast<std::size_t>(ia),
                                          static_cast<std::size_t>(ib));
    }
  }
  place::PnrOptions options;
  options.anneal.iterations = 20000;
  options.anneal.seed = 11;
  const place::PnrResult pnr = place::placeAndRoute(problem, options);
  const place::AnnealResult& result = pnr.placement;
  place::writeSvgFile(problem, result.solution, svgDir() + "/" + svgName);

  // Assess against the full designer pair set regardless of what was
  // enforced.
  place::PlacementProblem assessor = problem;
  assessor.symmetricPairs.clear();
  for (const auto& [a, b] : assess) {
    const int ia = indexOf(a);
    const int ib = indexOf(b);
    if (ia >= 0 && ib >= 0) {
      assessor.symmetricPairs.emplace_back(static_cast<std::size_t>(ia),
                                           static_cast<std::size_t>(ib));
    }
  }
  Scenario out;
  out.wirelength = result.wirelength;
  out.violation = place::symmetryViolation(assessor, result.solution);
  out.routedWirelength = pnr.routing.wirelength;
  for (const place::RoutedNet& net : pnr.routing.nets) {
    out.mirroredNets += net.mirrored ? 1u : 0u;
  }
  return out;
}

void run(BenchContext& ctx) {
  const auto corpus = fullCorpus();
  RunReport trainReport;
  Pipeline pipeline = trainPipeline(corpus, paperConfig(), &trainReport);
  ctx.accumulateReport(trainReport);

  std::printf("\n=== Fig. 1 proxy: layout impact of symmetry constraints "
              "===\n");
  TextTable table;
  table.setHeader({"Design", "constraints", "HPWL", "asymmetry",
                   "routed WL", "mirrored nets"});

  // Fully differential blocks where the paper's experiment is meaningful
  // (matched passive pairs present).
  for (const std::string target : {"OTA4", "OTA5", "COMP3"}) {
    const circuits::CircuitBenchmark* bench = nullptr;
    for (const auto& b : corpus) {
      if (b.name == target) bench = &b;
    }
    if (bench == nullptr) continue;
    const FlatDesign design = FlatDesign::elaborate(bench->lib);
    const ExtractionResult extraction = pipeline.extract(bench->lib);
    ctx.accumulateReport(extraction.report);

    // Extracted device-level pairs at the root hierarchy.
    std::vector<std::pair<std::string, std::string>> extracted;
    for (const Constraint* c :
         extraction.detection.set.ofType(ConstraintType::kSymmetryPair)) {
      if (c->hierarchy == 0 && c->members[0].kind == ModuleKind::kDevice) {
        extracted.emplace_back(c->members[0].name, c->members[1].name);
      }
    }
    // Designer ground truth (assessment yardstick).
    std::vector<std::pair<std::string, std::string>> truthPairs;
    for (const auto& e : bench->truth.entries()) {
      if (e.hierPath.empty()) truthPairs.emplace_back(e.nameA, e.nameB);
    }

    // Drop one matched *passive* pair, like the paper's experiment.
    std::vector<std::pair<std::string, std::string>> oneDropped = extracted;
    for (std::size_t i = 0; i < oneDropped.size(); ++i) {
      if (oneDropped[i].first[0] == 'r' || oneDropped[i].first[0] == 'c') {
        oneDropped.erase(oneDropped.begin() + static_cast<long>(i));
        break;
      }
    }

    const Scenario full =
        placeWith(design, 0, extracted, truthPairs, target + "_full.svg");
    const Scenario dropped =
        placeWith(design, 0, oneDropped, truthPairs, target + "_drop1.svg");
    const Scenario none =
        placeWith(design, 0, {}, truthPairs, target + "_none.svg");
    char buf[32];
    auto cell = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return std::string(buf);
    };
    auto addRow = [&](const char* label, const Scenario& s) {
      table.addRow({target, label, cell(s.wirelength), cell(s.violation),
                    std::to_string(s.routedWirelength),
                    std::to_string(s.mirroredNets)});
    };
    addRow("full", full);
    addRow("-1 pair", dropped);
    addRow("none", none);
    table.addSeparator();
  }
  table.print(std::cout);
  std::printf(
      "\nShape check (paper Fig. 1: layout quality degrades as symmetry\n"
      "constraints are removed): asymmetry(full) < asymmetry(-1 pair) <= "
      "asymmetry(none) per design.\n");
}

[[maybe_unused]] const bool kRegistered =
    registerBench("fig1.layout_impact", run);

}  // namespace

ANCSTR_BENCH_MAIN("fig1_layout_impact")
