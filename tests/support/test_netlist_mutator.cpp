#include "support/netlist_mutator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "circuits/synthetic.h"
#include "core/circuit_hash.h"
#include "netlist/flatten.h"
#include "netlist/manifest.h"

namespace ancstr {
namespace {

using testsupport::attachFanout;
using testsupport::MutationKind;
using testsupport::NetlistMutator;
using testsupport::rebuildIdentity;

util::StructuralHash designHash(const Library& lib) {
  const FlatDesign design = FlatDesign::elaborate(lib);
  return structuralHash(design, GraphBuildOptions{}, FeatureConfig{});
}

/// Flat terminal count per net path (paths are unique within a design).
std::map<std::string, std::size_t> terminalsByPath(const FlatDesign& design) {
  std::map<std::string, std::size_t> counts;
  for (FlatNetId net = 0; net < design.nets().size(); ++net) {
    counts[design.net(net).path] = design.netTerminals()[net].size();
  }
  return counts;
}

TEST(NetlistMutator, IdentityRebuildIsHashIdentical) {
  const auto bench = circuits::makeBlockArray(3);
  const Library rebuilt = rebuildIdentity(bench.lib);
  EXPECT_TRUE(designHash(bench.lib) == designHash(rebuilt));
  // Master content hashes survive the round-trip too (all ids preserved).
  for (SubcktId id = 0; id < bench.lib.subcktCount(); ++id) {
    EXPECT_TRUE(subcktContentHash(bench.lib, id) ==
                subcktContentHash(rebuilt, id));
  }
}

TEST(NetlistMutator, RenamesAreHashInvariant) {
  const auto bench = circuits::makeBlockArray(3);
  NetlistMutator mutator(bench.lib, /*seed=*/7);
  const Library mutated = mutator.mutate(
      6, {MutationKind::kRenameNet, MutationKind::kRenameDevice,
          MutationKind::kRenameInstance});
  ASSERT_EQ(mutator.applied().size(), 6u);
  EXPECT_TRUE(designHash(bench.lib) == designHash(mutated));
}

TEST(NetlistMutator, StructuralEditsChangeTheDesignHash) {
  const auto bench = circuits::makeBlockArray(3);
  NetlistMutator addDevice(bench.lib, /*seed=*/11);
  EXPECT_FALSE(designHash(bench.lib) ==
               designHash(addDevice.mutate(1, {MutationKind::kAddDevice})));
  NetlistMutator editParams(bench.lib, /*seed=*/12);
  EXPECT_FALSE(designHash(bench.lib) ==
               designHash(editParams.mutate(1, {MutationKind::kEditParams})));
}

TEST(NetlistMutator, MutatedLibrariesStayValid) {
  const auto bench = circuits::makeBlockArray(3);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    NetlistMutator mutator(bench.lib, seed);
    const Library mutated = mutator.mutate(5);
    EXPECT_NO_THROW(mutated.validate()) << "seed=" << seed;
    const FlatDesign design = FlatDesign::elaborate(mutated);
    EXPECT_GT(design.devices().size(), 0u) << "seed=" << seed;
  }
}

TEST(NetlistMutator, SameSeedReproducesTheSameEditSequence) {
  const auto bench = circuits::makeBlockArray(3);
  NetlistMutator a(bench.lib, /*seed=*/3);
  NetlistMutator b(bench.lib, /*seed=*/3);
  const Library la = a.mutate(4);
  const Library lb = b.mutate(4);
  ASSERT_EQ(a.applied().size(), b.applied().size());
  for (std::size_t i = 0; i < a.applied().size(); ++i) {
    EXPECT_EQ(a.applied()[i].kind, b.applied()[i].kind);
    EXPECT_EQ(a.applied()[i].description, b.applied()[i].description);
  }
  EXPECT_TRUE(designHash(la) == designHash(lb));
}

TEST(NetlistMutator, AttachFanoutAddsTerminalsToExistingNets) {
  const auto bench = circuits::makeBlockArray(3);
  const std::map<std::string, std::size_t> before =
      terminalsByPath(FlatDesign::elaborate(bench.lib));
  const Library fanned = attachFanout(bench.lib, 5);
  const std::map<std::string, std::size_t> after =
      terminalsByPath(FlatDesign::elaborate(fanned));

  // Five two-pin caps: ten new terminals, all landing on pre-existing
  // nets (the hub gets five, the return net gets the other five).
  std::size_t gained = 0;
  std::size_t maxGain = 0;
  for (const auto& [path, count] : before) {
    ASSERT_TRUE(after.contains(path)) << path;
    ASSERT_GE(after.at(path), count) << path;
    const std::size_t gain = after.at(path) - count;
    gained += gain;
    maxGain = std::max(maxGain, gain);
  }
  EXPECT_EQ(after.size(), before.size());
  EXPECT_EQ(gained, 10u);
  EXPECT_EQ(maxGain, 5u);
}

}  // namespace
}  // namespace ancstr
