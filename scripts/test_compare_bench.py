#!/usr/bin/env python3
"""Self-test for compare_bench.py (registered as ctest `compare_bench_gate`).

Builds synthetic BENCH.json pairs in a temp directory and checks the three
exit-code contracts the CI gate relies on: 0 for an identical pair, 1 for an
injected 2x median slowdown, and 2 for a schema violation. Also covers
--min-seconds skipping and --allow-missing.
"""
import copy
import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def make_report(median=1.0, rss=1 << 20, name="case.a"):
    return {
        "schemaVersion": 1,
        "binary": "synthetic",
        "gitSha": "deadbeef",
        "buildType": "Release",
        "buildFlags": "",
        "threads": 1,
        "seed": 42,
        "cases": [{
            "name": name,
            "reps": 3,
            "warmup": 1,
            "wall": {"median": median, "mad": 0.01, "min": median,
                     "max": median, "samples": [median] * 3},
            "phases": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "resource": {"peakRssBytes": rss, "allocCount": 10,
                         "freeCount": 10, "allocBytes": 1000,
                         "userCpuSeconds": median, "systemCpuSeconds": 0.0},
            "counters": {},
        }],
    }


def run(old, new, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        new_path = os.path.join(tmp, "new.json")
        with open(old_path, "w", encoding="utf-8") as fh:
            json.dump(old, fh)
        with open(new_path, "w", encoding="utf-8") as fh:
            json.dump(new, fh)
        proc = subprocess.run(
            [sys.executable, SCRIPT, old_path, new_path, *extra],
            capture_output=True, text=True)
        return proc.returncode


def check(label, got, want):
    status = "ok" if got == want else "FAIL"
    print(f"{status}: {label}: exit {got}, want {want}")
    return got == want


def main():
    base = make_report()
    ok = True

    ok &= check("identical pair", run(base, copy.deepcopy(base)), 0)
    ok &= check("2x slowdown", run(base, make_report(median=2.0)), 1)
    ok &= check("within threshold", run(base, make_report(median=1.1)), 0)
    ok &= check("RSS doubles, ungated by default",
                run(base, make_report(rss=2 << 20)), 0)
    ok &= check("RSS doubles with --rss-threshold",
                run(base, make_report(rss=2 << 20), "--rss-threshold", "0.5"),
                1)
    ok &= check("slowdown under --min-seconds skipped",
                run(make_report(median=0.001),
                    make_report(median=0.002), "--min-seconds", "0.01"), 0)
    ok &= check("case only in baseline",
                run(base, make_report(name="case.b")), 1)
    ok &= check("case mismatch with --allow-missing",
                run(base, make_report(name="case.b"), "--allow-missing"), 1)
    ok &= check("schema error", run(base, {"schemaVersion": 99}), 2)

    missing_wall = make_report()
    del missing_wall["cases"][0]["wall"]
    ok &= check("missing wall stats", run(base, missing_wall), 2)

    if not ok:
        print("FAIL: compare_bench.py contract violated", file=sys.stderr)
        return 1
    print("OK: all compare_bench.py contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
