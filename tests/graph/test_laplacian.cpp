#include "graph/laplacian.h"

#include <gtest/gtest.h>

#include "graph/eigen.h"

namespace ancstr {
namespace {

SimpleDigraph path3() {
  SimpleDigraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  return g;
}

TEST(Laplacian, UndirectedAdjacencySymmetric) {
  const nn::Matrix a = undirectedAdjacency(path3());
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(0, 2), 0.0);
}

TEST(Laplacian, RowSumsZero) {
  const nn::Matrix l = combinatorialLaplacian(path3());
  for (std::size_t i = 0; i < l.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < l.cols(); ++j) row += l(i, j);
    EXPECT_NEAR(row, 0.0, 1e-12);
  }
}

TEST(Laplacian, SmallestEigenvalueZero) {
  const auto values = symmetricEigenvalues(combinatorialLaplacian(path3()));
  EXPECT_NEAR(values.front(), 0.0, 1e-10);
}

TEST(Laplacian, ZeroEigenvalueMultiplicityEqualsComponents) {
  SimpleDigraph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  const auto values = symmetricEigenvalues(combinatorialLaplacian(g));
  int zeros = 0;
  for (const double v : values) {
    if (std::abs(v) < 1e-9) ++zeros;
  }
  EXPECT_EQ(zeros, 2);
}

TEST(Laplacian, NormalizedEigenvaluesBounded) {
  SimpleDigraph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(3, 4);
  g.addEdge(4, 0);
  const auto values = symmetricEigenvalues(normalizedLaplacian(g));
  for (const double v : values) {
    EXPECT_GE(v, -1e-10);
    EXPECT_LE(v, 2.0 + 1e-10);
  }
}

TEST(Laplacian, SelfLoopsIgnored) {
  SimpleDigraph g(2);
  g.addEdge(0, 0);
  g.addEdge(0, 1);
  const nn::Matrix l = combinatorialLaplacian(g);
  EXPECT_DOUBLE_EQ(l(0, 0), 1.0);  // only the 0-1 edge counts
}

TEST(Laplacian, IsomorphicGraphsShareSpectrum) {
  // Same path graph with permuted vertex labels.
  SimpleDigraph a(4);
  a.addEdge(0, 1);
  a.addEdge(1, 2);
  a.addEdge(2, 3);
  SimpleDigraph b(4);
  b.addEdge(3, 0);
  b.addEdge(0, 2);
  b.addEdge(2, 1);
  const auto va = symmetricEigenvalues(combinatorialLaplacian(a));
  const auto vb = symmetricEigenvalues(combinatorialLaplacian(b));
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i], vb[i], 1e-9);
  }
}

}  // namespace
}  // namespace ancstr
