// Per-request run ledger: one wide-event JSON line per extraction request
// (docs/observability.md, "Run ledger").
//
// Where trace spans and the metrics registry are aggregate views, the
// ledger is the per-request record: which cache tier served the design,
// how long each phase took, which diagnostics fired, what came out. Each
// LedgerRecord serializes with a fixed top-level key order (validated by
// scripts/check_ledger.py, same contract style as BENCH.json), so ledgers
// diff cleanly and downstream tooling can parse them positionally.
//
// LedgerWriter reuses the disk_cache append discipline: appends never
// throw, are whole-line (compose, then one buffered write + flush, so
// concurrent engine requests interleave at line granularity only), are
// write-behind by default (background writer thread, flush-on-destruct),
// and degrade fail-soft — after `degradeAfterFailures` consecutive write
// failures the writer turns itself off for the rest of its lifetime
// rather than stalling the serving path.
//
// Fault site (util/fault.h): ledger.write.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace ancstr {
class Json;
}

namespace ancstr::ledger {

/// One request's wide event. Field order here mirrors the serialized key
/// order; see toJson(). String enums:
///   cacheOutcome — "mem_hit" | "disk_hit" | "cold" | "none" (no design
///                  hash was consulted: rejected/errored before hashing);
///   outcome      — "ok" | "degraded" | "deadline_exceeded" |
///                  "admission_rejected" | "error".
struct LedgerRecord {
  std::uint64_t requestId = 0;
  std::string correlationId;  ///< caller-supplied; "" when none
  std::string designHash;     ///< 32 lowercase hex chars; "" pre-hash
  std::uint64_t devices = 0;
  std::uint64_t nets = 0;
  std::uint64_t hierarchyNodes = 0;
  std::string cacheOutcome = "none";
  std::uint64_t blockCacheHits = 0;
  std::uint64_t blockCacheMisses = 0;
  std::string outcome = "ok";
  /// Active nn kernel backend for the request ("scalar" | "avx2" |
  /// "avx512" — nn/kernels.h); results are bitwise identical across
  /// backends, so this only attributes perf, never output content.
  std::string kernel;
  /// Constraint counts by type tag, in ConstraintType enum order.
  std::vector<std::pair<std::string, std::uint64_t>> constraints;
  std::uint64_t constraintsTotal = 0;
  /// Diagnostic counts by code, sorted by code.
  std::vector<std::pair<std::string, std::uint64_t>> diagnostics;
  /// Phase timings from the RunReport, in execution order.
  std::vector<std::pair<std::string, double>> phases;
  double wallSeconds = 0.0;
  std::uint64_t peakRssDeltaBytes = 0;
  /// Wall-clock append time (seconds since the Unix epoch); stamped by
  /// LedgerWriter::append, not by the producer.
  double unixTimeSeconds = 0.0;

  /// Key order (the schema contract): schemaVersion, requestId,
  /// correlationId, designHash, devices, nets, hierarchyNodes,
  /// cacheOutcome, blockCacheHits, blockCacheMisses, outcome, kernel,
  /// constraintsTotal, constraints, diagnostics, phases, wallSeconds,
  /// peakRssDeltaBytes, unixTimeSeconds.
  Json toJson() const;

  /// Compact single-line serialization of toJson() (no trailing newline).
  std::string toJsonLine() const;
};

struct LedgerWriterConfig {
  /// JSON-lines output path, opened in append mode (created if absent).
  /// An empty path — or an open failure — disables the writer.
  std::filesystem::path path;
  /// Write-behind appends (background writer thread). Off = synchronous
  /// appends on the calling thread, deterministic for tests.
  bool writeBehind = true;
  /// Write-behind queue bound; a full queue drops the record (counted).
  std::size_t maxQueuedRecords = 1024;
  /// Consecutive write failures before the writer degrades to off.
  int degradeAfterFailures = 4;
};

/// Cumulative counters of one LedgerWriter.
struct LedgerStats {
  std::uint64_t appended = 0;  ///< records durably written
  std::uint64_t dropped = 0;   ///< queue overflow or degraded writer
  std::uint64_t writeFailures = 0;
  bool enabled = false;   ///< open succeeded and not degraded
  bool degraded = false;  ///< turned itself off after repeated failures
};

/// See file comment. All methods are thread-safe and none of them throws.
class LedgerWriter {
 public:
  /// The "schemaVersion" value stamped into every record. v2 added the
  /// "kernel" key (after "outcome").
  static constexpr int kSchemaVersion = 2;

  explicit LedgerWriter(LedgerWriterConfig config);
  ~LedgerWriter();  ///< flushes pending write-behind appends

  LedgerWriter(const LedgerWriter&) = delete;
  LedgerWriter& operator=(const LedgerWriter&) = delete;

  /// False when open failed or the writer degraded.
  bool enabled() const;

  /// Serializes and appends one record (stamping unixTimeSeconds).
  /// Write-behind mode enqueues and returns; a full queue drops the
  /// record (counted). Never throws.
  void append(const LedgerRecord& record);

  /// Drains pending write-behind appends (no-op in synchronous mode).
  void flush();

  LedgerStats stats() const;
  const LedgerWriterConfig& config() const { return config_; }

 private:
  struct Impl;

  bool writeLine(const std::string& line);
  void writerLoop();
  void noteWriteFailure();

  LedgerWriterConfig config_;
  Impl* impl_;
};

}  // namespace ancstr::ledger
