#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace ancstr::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};

const char* levelTag(Level lvl) {
  switch (lvl) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void setLevel(Level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  std::fprintf(stderr, "[ancstr %s] %s\n", levelTag(lvl), message.c_str());
}

}  // namespace ancstr::log
