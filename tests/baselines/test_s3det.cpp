#include "baselines/s3det.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"

namespace ancstr::s3det {
namespace {

Library blockDesign() {
  NetlistBuilder b;
  // Identical RC blocks.
  b.beginSubckt("rc_a", {"in", "out", "vss"});
  b.res("r1", "in", "out", 1e3);
  b.cap("c1", "out", "vss", 1e-15);
  b.endSubckt();
  // Same category, different topology (extra series element).
  b.beginSubckt("rc_b", {"in", "out", "vss"});
  b.res("r1", "in", "mid", 1e3);
  b.res("r2", "mid", "out", 1e3);
  b.cap("c1", "out", "vss", 1e-15);
  b.endSubckt();
  b.beginSubckt("top", {"a", "bnet", "c", "vss"});
  b.inst("x1", "rc_a", {"a", "o1", "vss"});
  b.inst("x2", "rc_a", {"bnet", "o2", "vss"});
  b.inst("x3", "rc_b", {"c", "o3", "vss"});
  b.res("rp", "o1", "vss", 2e3);
  b.res("rn", "o2", "vss", 2e3);
  b.res("rx", "o3", "vss", 7e3);
  b.endSubckt();
  return b.build("top");
}

TEST(S3Det, IdenticalBlocksAccepted) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const S3DetResult result = detectSystemConstraints(design, lib);
  bool found = false;
  for (const ScoredCandidate& c : result.scored) {
    if (c.pair.nameA == "x1" && c.pair.nameB == "x2") {
      found = true;
      EXPECT_NEAR(c.similarity, 1.0, 1e-9);
      EXPECT_TRUE(c.accepted);
    }
  }
  EXPECT_TRUE(found);
}

TEST(S3Det, NonIsomorphicBlocksGetLowerSimilarity) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const S3DetResult result = detectSystemConstraints(design, lib);
  for (const ScoredCandidate& c : result.scored) {
    if (c.pair.nameB == "x3" || c.pair.nameA == "x3") {
      EXPECT_LT(c.similarity, 1.0);
    }
  }
}

TEST(S3Det, OnlySystemLevelCandidatesScored) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const S3DetResult result = detectSystemConstraints(design, lib);
  for (const ScoredCandidate& c : result.scored) {
    EXPECT_EQ(c.pair.level, ConstraintLevel::kSystem);
  }
  EXPECT_GT(result.scored.size(), 0u);
}

TEST(S3Det, MatchedPassivesByValue) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const S3DetResult result = detectSystemConstraints(design, lib);
  for (const ScoredCandidate& c : result.scored) {
    if (c.pair.a.kind != ModuleKind::kDevice) continue;
    if (c.pair.nameA == "rp" && c.pair.nameB == "rn") {
      EXPECT_DOUBLE_EQ(c.similarity, 1.0);
    }
    if (c.pair.nameB == "rx" || c.pair.nameA == "rx") {
      EXPECT_LT(c.similarity, 1.0);  // 7k vs 2k
    }
  }
}

TEST(S3Det, SpectrumMatchesSubcircuitSize) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  // Node 1 is x1 (2 devices): the isolated spectrum has 2 eigenvalues.
  S3DetConfig isolated;
  isolated.includeBoundaryContext = false;
  const auto spectrum = subcircuitSpectrum(design, 1, isolated);
  EXPECT_EQ(spectrum.size(), 2u);
  // With boundary context the matrix strictly grows (rp hangs off o1).
  const auto contextual = subcircuitSpectrum(design, 1, S3DetConfig{});
  EXPECT_GT(contextual.size(), spectrum.size());
}

TEST(S3Det, KsThresholdControlsAcceptance) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  S3DetConfig loose;
  loose.ksThreshold = 1.0;  // accept everything with sim > 0
  const S3DetResult all = detectSystemConstraints(design, lib, loose);
  std::size_t acceptedLoose = 0;
  for (const auto& c : all.scored) acceptedLoose += c.accepted;
  S3DetConfig strict;
  strict.ksThreshold = 1e-6;
  const S3DetResult few = detectSystemConstraints(design, lib, strict);
  std::size_t acceptedStrict = 0;
  for (const auto& c : few.scored) acceptedStrict += c.accepted;
  EXPECT_GE(acceptedLoose, acceptedStrict);
}

TEST(S3Det, RuntimeReported) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const S3DetResult result = detectSystemConstraints(design, lib);
  EXPECT_GE(result.seconds, 0.0);
}

}  // namespace
}  // namespace ancstr::s3det
