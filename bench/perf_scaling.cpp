// Runtime-scaling microbenchmarks (google-benchmark), backing the paper's
// Section V-B scalability claims: graph construction, GNN inference, and
// full extraction scale gently with design size, while the spectral
// baseline's per-pair eigendecompositions blow up on block-rich designs
// (the ADC4/ADC5 runtime gap in Table V).
#include <benchmark/benchmark.h>

#include "baselines/s3det.h"
#include "circuits/synthetic.h"
#include "core/features.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "graph/pagerank.h"

using namespace ancstr;

namespace {

circuits::CircuitBenchmark& chain(int stages) {
  static std::map<int, circuits::CircuitBenchmark> cache;
  auto it = cache.find(stages);
  if (it == cache.end()) {
    it = cache.emplace(stages, circuits::makeDiffChain(stages)).first;
  }
  return it->second;
}

circuits::CircuitBenchmark& blockArray(int blocks) {
  static std::map<int, circuits::CircuitBenchmark> cache;
  auto it = cache.find(blocks);
  if (it == cache.end()) {
    it = cache.emplace(blocks, circuits::makeBlockArray(blocks)).first;
  }
  return it->second;
}

void BM_GraphConstruction(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildHeteroGraph(design));
  }
  state.SetComplexityN(state.range(0));
}

void BM_Elaboration(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatDesign::elaborate(bench.lib));
  }
  state.SetComplexityN(state.range(0));
}

void BM_GnnInference(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const CircuitGraph graph = buildHeteroGraph(design);
  const PreparedGraph prepared =
      prepareGraph(graph, buildFeatureMatrix(design));
  Rng rng(1);
  const GnnModel model(GnnConfig{}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.embed(prepared));
  }
  state.SetComplexityN(state.range(0));
}

void BM_PageRank(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const SimpleDigraph g = buildHeteroGraph(design).graph.simplified();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pageRank(g));
  }
  state.SetComplexityN(state.range(0));
}

void BM_FullExtraction(benchmark::State& state) {
  const auto& bench = blockArray(static_cast<int>(state.range(0)));
  PipelineConfig config;
  config.train.epochs = 2;
  Pipeline pipeline(config);
  pipeline.train({&bench.lib});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.extract(bench.lib));
  }
  state.SetComplexityN(state.range(0));
}

void BM_S3DetExtraction(benchmark::State& state) {
  const auto& bench = blockArray(static_cast<int>(state.range(0)));
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s3det::detectSystemConstraints(design, bench.lib));
  }
  state.SetComplexityN(state.range(0));
}

void BM_Training(benchmark::State& state) {
  const auto& bench = chain(static_cast<int>(state.range(0)));
  PipelineConfig config;
  config.train.epochs = 1;
  for (auto _ : state) {
    Pipeline pipeline(config);
    pipeline.train({&bench.lib});
  }
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK(BM_Elaboration)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_GraphConstruction)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_GnnInference)->RangeMultiplier(4)->Range(4, 64)->Complexity();
BENCHMARK(BM_PageRank)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_FullExtraction)->DenseRange(2, 10, 4);
BENCHMARK(BM_S3DetExtraction)->DenseRange(2, 10, 4);
BENCHMARK(BM_Training)->RangeMultiplier(4)->Range(4, 64);

BENCHMARK_MAIN();
