// Unsupervised inductive training loop (paper Section IV-C): minimise the
// graph-context loss (Eq. 2) with Adam over all circuits of the corpus.
// Training is inductive — the resulting weights apply to unseen circuits.
#pragma once

#include <vector>

#include "core/model.h"
#include "core/sampler.h"
#include "util/rng.h"

namespace ancstr {

struct TrainConfig {
  int epochs = 80;
  double learningRate = 5e-3;
  int negativeSamples = 5;     ///< B in Eq. 2
  double clipNorm = 5.0;       ///< global gradient-norm clip; <=0 disables
  bool meanReduction = true;   ///< see contrastiveLoss
  bool verbose = false;        ///< log per-epoch loss
  /// Graphs per optimizer step. Every graph in a batch is evaluated
  /// against the batch-start weights (sampling from its own RNG stream
  /// seeded with epochSeed ^ graphIndex) and the gradients are summed in
  /// batch order, so the result is independent of the thread count.
  /// 1 (default) reproduces classic per-graph SGD steps; 0 means the whole
  /// epoch forms one batch. Values > 1 are what the parallel fan-out
  /// actually accelerates. (The worker count itself is not part of this
  /// config: PipelineConfig::threads is the single knob, and the free
  /// function below takes it as an explicit argument.)
  std::size_t batchSize = 1;
  /// Numerical guardrail (docs/robustness.md): when a batch produces a
  /// non-finite loss or gradient, the epoch is abandoned before stepping,
  /// the last-good weights (epoch entry) are restored, the learning rate
  /// is multiplied by `retryLrBackoff`, and the epoch is re-run with the
  /// SAME shuffle order and RNG streams — so recovery is deterministic and
  /// thread-count independent. After `maxEpochRetries` failed retries the
  /// trainer throws Error ([train.retries_exhausted]). 0 disables retry.
  int maxEpochRetries = 2;
  double retryLrBackoff = 0.5;  ///< lr multiplier applied per retry
};

struct TrainStats {
  std::vector<double> epochLoss;  ///< mean loss per epoch
  double seconds = 0.0;
  int epochRetries = 0;  ///< total non-finite-recovery retries executed

  double finalLoss() const {
    return epochLoss.empty() ? 0.0 : epochLoss.back();
  }
};

/// Trains `model` in place over the prepared corpus. Deterministic for a
/// given rng state. Throws ShapeError when graph features disagree with
/// the model's configured featureDim.
///
/// `threads` is the worker count for the per-graph forward/loss/backward
/// fan-out within a batch: 0 = hardware_concurrency, 1 = serial; the
/// ANCSTR_THREADS environment variable overrides (see
/// util::resolveThreadCount). Trained weights are bitwise identical for
/// every value.
TrainStats trainUnsupervised(GnnModel& model,
                             const std::vector<PreparedGraph>& corpus,
                             const TrainConfig& config, Rng& rng,
                             std::size_t threads = 1);

}  // namespace ancstr
