// Placement model: devices of one (sub)circuit as rectangles, nets as
// pin groups, symmetry constraints as mirror pairs / self-symmetric cells
// about a shared vertical axis — the exact contract the paper's automated
// P&R flow (Fig. 1) consumes.
#pragma once

#include <string>
#include <vector>

#include "netlist/flatten.h"
#include "place/geometry.h"

namespace ancstr::place {

/// One placeable cell.
struct Cell {
  std::string name;
  FlatDeviceId device = 0;
  double w = 0.0;  ///< footprint width  [um]
  double h = 0.0;  ///< footprint height [um]
};

/// A placement problem: cells + nets (as cell-index groups) + symmetry.
struct PlacementProblem {
  std::vector<Cell> cells;
  /// Each net is the list of cell indices it connects (2+ pins).
  std::vector<std::vector<std::size_t>> nets;
  /// Mirror pairs (cell indices) about the common vertical axis.
  std::vector<std::pair<std::size_t, std::size_t>> symmetricPairs;
  /// Cells whose centre must sit on the axis.
  std::vector<std::size_t> selfSymmetric;
};

/// A placement solution: one rectangle per cell (same order as cells).
struct PlacementSolution {
  std::vector<Rect> rects;
  double symmetryAxis = 0.0;  ///< x of the vertical symmetry axis
};

/// Builds a placement problem for the leaf devices of one hierarchy node.
/// Footprints derive from device geometry (W/L, value for passives);
/// nets with more terminals than `maxNetDegree` are dropped (rails).
PlacementProblem buildPlacementProblem(const FlatDesign& design,
                                       HierNodeId node,
                                       std::size_t maxNetDegree = 16);

/// Total half-perimeter wirelength over all nets (cell centres as pins).
double wirelength(const PlacementProblem& problem,
                  const PlacementSolution& solution);

/// Total pairwise overlap area (0 for a legal placement).
double totalOverlap(const PlacementSolution& solution);

/// Symmetry violation: mean distance between each pair's actual mirror
/// positions (and each self-symmetric cell's centre offset), normalised by
/// the mean cell dimension. 0 = perfectly symmetric layout.
double symmetryViolation(const PlacementProblem& problem,
                         const PlacementSolution& solution);

}  // namespace ancstr::place
