#include "util/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ancstr::util {
namespace {

/// Saves/restores ANCSTR_THREADS so env-sensitive tests are hermetic.
class EnvGuard {
 public:
  EnvGuard() {
    const char* value = std::getenv("ANCSTR_THREADS");
    if (value != nullptr) saved_ = value;
    had_ = value != nullptr;
    unsetenv("ANCSTR_THREADS");
  }
  ~EnvGuard() {
    if (had_) {
      setenv("ANCSTR_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("ANCSTR_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(ResolveThreadCount, PassesConfiguredValueThrough) {
  const EnvGuard guard;
  EXPECT_EQ(resolveThreadCount(1), 1u);
  EXPECT_EQ(resolveThreadCount(5), 5u);
}

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  const EnvGuard guard;
  EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(ResolveThreadCount, EnvOverridesConfigured) {
  const EnvGuard guard;
  setenv("ANCSTR_THREADS", "3", 1);
  EXPECT_EQ(resolveThreadCount(1), 3u);
  EXPECT_EQ(resolveThreadCount(8), 3u);
  setenv("ANCSTR_THREADS", "0", 1);
  EXPECT_GE(resolveThreadCount(1), 1u);  // 0 -> hardware_concurrency
  setenv("ANCSTR_THREADS", "not-a-number", 1);
  EXPECT_EQ(resolveThreadCount(2), 2u);  // junk values are ignored
}

TEST(ThreadPool, LifecycleAndSize) {
  for (std::size_t threads : {0u, 1u, 2u, 5u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads < 1 ? 1u : threads);
    std::atomic<int> runs{0};
    pool.forEach(4, [&](std::size_t) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(), 4);
  }
  // Repeated construction/destruction must not leak or deadlock.
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(4);
    pool.forEach(1, [](std::size_t) {});
  }
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  bool invoked = false;
  pool.parallelFor(0, [&](std::size_t, std::size_t) { invoked = true; });
  EXPECT_FALSE(invoked);
}

TEST(ThreadPool, ChunkBoundsPartitionExactly) {
  // Contiguous, complete, sizes differing by at most one — for every
  // (n, chunks) shape including n < chunks leftovers.
  for (std::size_t n : {1u, 3u, 7u, 10u, 16u, 1000u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 4u, 7u, 16u}) {
      if (chunks > n) continue;
      std::size_t expectedBegin = 0;
      std::size_t minSize = n, maxSize = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = ThreadPool::chunkBounds(c, chunks, n);
        EXPECT_EQ(begin, expectedBegin) << "n=" << n << " chunks=" << chunks;
        EXPECT_GE(end, begin);
        minSize = std::min(minSize, end - begin);
        maxSize = std::max(maxSize, end - begin);
        expectedBegin = end;
      }
      EXPECT_EQ(expectedBegin, n);
      EXPECT_LE(maxSize - minSize, 1u);
    }
  }
}

void expectEveryIndexVisitedOnce(std::size_t threads, std::size_t n) {
  ThreadPool pool(threads);
  // Each slot is written by exactly one chunk, so plain ints suffice.
  std::vector<int> visits(n, 0);
  pool.forEach(n, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i], 1) << "threads=" << threads << " n=" << n
                            << " index=" << i;
  }
}

TEST(ThreadPool, CoversRangeSmallerThanPool) {
  expectEveryIndexVisitedOnce(8, 3);
}

TEST(ThreadPool, CoversRangeNotDivisibleByPool) {
  expectEveryIndexVisitedOnce(4, 10);
  expectEveryIndexVisitedOnce(3, 1000);
}

TEST(ThreadPool, CoversRangeEqualToPool) {
  expectEveryIndexVisitedOnce(4, 4);
}

TEST(ThreadPool, ChunksAreStaticContiguousRanges) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  const std::size_t n = 11;
  pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.emplace_back(begin, end);
  });
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), std::min<std::size_t>(pool.size(), n));
  std::size_t expected = 0;
  for (std::size_t c = 0; c < seen.size(); ++c) {
    EXPECT_EQ(seen[c].first, expected);
    EXPECT_EQ(seen[c], ThreadPool::chunkBounds(c, seen.size(), n));
    expected = seen[c].second;
  }
  EXPECT_EQ(expected, n);
}

TEST(ThreadPool, ExceptionPropagatesFromCallerChunk) {
  ThreadPool pool(4);
  // Index 0 lives in chunk 0, which the calling thread runs itself.
  EXPECT_THROW(pool.forEach(8,
                            [](std::size_t i) {
                              if (i == 0) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesFromWorkerChunk) {
  ThreadPool pool(4);
  // The last index lives in the last chunk, which a worker thread runs.
  EXPECT_THROW(pool.forEach(8,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, LowestChunkExceptionWinsAndPoolSurvives) {
  ThreadPool pool(4);
  try {
    pool.parallelFor(8, [](std::size_t begin, std::size_t) {
      throw std::runtime_error("chunk " + std::to_string(begin));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 0");
  }
  // The pool must stay fully usable after a throwing job.
  std::atomic<int> runs{0};
  pool.forEach(16, [&](std::size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 16);
}

TEST(ParallelMapReduce, MatchesSerialAccumulateBitwise) {
  // The fold is serial and ordered, so even double summation must be
  // bitwise identical to std::accumulate for every thread count.
  const std::size_t n = 10000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);
  for (std::size_t threads : {1u, 2u, 3u, 5u, 8u}) {
    ThreadPool pool(threads);
    const double parallel = parallelMapReduce(
        pool, n, 0.0,
        [](std::size_t i) { return 1.0 / static_cast<double>(i + 1); });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ParallelMapReduce, IntegerReductionMatchesAccumulate) {
  const std::size_t n = 1234;
  std::vector<long> values(n);
  std::iota(values.begin(), values.end(), 0L);
  const long serial = std::accumulate(values.begin(), values.end(), 0L);
  ThreadPool pool(4);
  const long parallel = parallelMapReduce(
      pool, n, 0L, [](std::size_t i) { return static_cast<long>(i); });
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace ancstr::util
