#!/usr/bin/env python3
"""Summarizes an ancstr run-ledger file (extract --ledger-out).

Reads the JSON-lines ledger (docs/observability.md, "Run ledger") and
prints:

  * per-cache-tier request counts and wallSeconds percentiles (p50/p90/p99),
  * the overall tier hit-rate breakdown (mem_hit / disk_hit / cold / none),
  * the top-N slowest requests (request id, design hash, tier, wall time),
  * the diagnostics histogram summed across every record.

Run check_ledger.py first when schema validity matters — this tool skips
lines it cannot parse (counted) rather than failing. Usage:

    analyze_ledger.py LEDGER [--top N]
"""
import json
import sys


def percentile(sorted_values, fraction):
    """Nearest-rank percentile over an ascending list (empty -> 0)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(fraction * len(sorted_values))))
    return sorted_values[rank]


def main(argv):
    args = list(argv[1:])
    top_n = 5
    if "--top" in args:
        i = args.index("--top")
        top_n = int(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 1
    path = args[0]

    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return 1

    records = []
    skipped = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            skipped += 1
    if not records:
        print(f"error: no ledger records in {path}", file=sys.stderr)
        return 1

    by_tier = {}
    for record in records:
        tier = record.get("cacheOutcome", "none")
        by_tier.setdefault(tier, []).append(
            float(record.get("wallSeconds", 0.0)))

    print(f"{len(records)} request(s)" +
          (f" ({skipped} unparsable line(s) skipped)" if skipped else ""))
    print()
    print(f"{'tier':<10} {'count':>6} {'share':>7} "
          f"{'p50 s':>10} {'p90 s':>10} {'p99 s':>10}")
    for tier in ("mem_hit", "disk_hit", "cold", "none"):
        walls = sorted(by_tier.get(tier, []))
        if not walls:
            continue
        share = len(walls) / len(records)
        print(f"{tier:<10} {len(walls):>6} {share:>6.1%} "
              f"{percentile(walls, 0.50):>10.4f} "
              f"{percentile(walls, 0.90):>10.4f} "
              f"{percentile(walls, 0.99):>10.4f}")
    served = sum(len(by_tier.get(t, [])) for t in ("mem_hit", "disk_hit"))
    print(f"\ncache hit rate: {served}/{len(records)} "
          f"({served / len(records):.1%}) served from a cache tier")

    slowest = sorted(records, key=lambda r: -float(r.get("wallSeconds", 0.0)))
    print(f"\ntop {min(top_n, len(slowest))} slowest:")
    for record in slowest[:top_n]:
        print(f"  request {record.get('requestId', '?'):>6}  "
              f"{(record.get('designHash') or '-'):<32}  "
              f"{record.get('cacheOutcome', '?'):<8}  "
              f"{float(record.get('wallSeconds', 0.0)):.4f}s  "
              f"{record.get('outcome', '?')}")

    histogram = {}
    for record in records:
        for code, count in (record.get("diagnostics") or {}).items():
            histogram[code] = histogram.get(code, 0) + int(count)
    if histogram:
        print("\ndiagnostics:")
        for code in sorted(histogram, key=lambda c: (-histogram[c], c)):
            print(f"  {histogram[code]:>6}  {code}")
    else:
        print("\ndiagnostics: none")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
