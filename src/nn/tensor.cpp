#include "nn/tensor.h"

#include <cmath>
#include <unordered_set>

#include "nn/kernels_detail.h"
#include "util/error.h"

namespace ancstr::nn {

using detail::Node;

Tensor Tensor::param(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requiresGrad = true;
  return Tensor(std::move(node));
}

Tensor Tensor::constant(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requiresGrad = false;
  return Tensor(std::move(node));
}

void Tensor::setValue(Matrix m) {
  if (!m.sameShape(node_->value)) {
    throw ShapeError("Tensor::setValue: shape mismatch " +
                     m.shapeString() + " vs " + node_->value.shapeString());
  }
  node_->value = std::move(m);
}

void Tensor::zeroGrad() {
  if (!node_->grad.empty()) node_->grad.setZero();
}

void Tensor::accumulateGrad(const Matrix& g) {
  if (!g.sameShape(node_->value)) {
    throw ShapeError("Tensor::accumulateGrad: shape mismatch " +
                     g.shapeString() + " vs " + node_->value.shapeString());
  }
  node_->ensureGrad() += g;
}

void Tensor::backward() {
  if (rows() != 1 || cols() != 1) {
    throw ShapeError("backward() requires a scalar; got " +
                     node_->value.shapeString());
  }
  // Topological order via iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack{{node_.get(), 0}};
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [cur, next] = stack.back();
    if (next < cur->inputs.size()) {
      Node* child = cur->inputs[next++].get();
      if (visited.insert(child).second) stack.emplace_back(child, 0);
    } else {
      order.push_back(cur);
      stack.pop_back();
    }
  }
  node_->ensureGrad()(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward && !n->grad.empty()) n->backward(*n);
  }
}

namespace {

Tensor makeNode(Matrix value, std::vector<Tensor> inputs,
                std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool grad = false;
  for (const Tensor& t : inputs) {
    ANCSTR_ASSERT(t.valid());
    grad = grad || t.node()->requiresGrad;
    node->inputs.push_back(t.node());
  }
  node->requiresGrad = grad;
  if (grad) node->backward = std::move(backward);
  return Tensor(std::move(node));
}

void accumulate(const std::shared_ptr<Node>& input, const Matrix& delta) {
  if (!input->requiresGrad && input->inputs.empty()) return;
  input->ensureGrad() += delta;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  Matrix value = a.value().matmul(b.value());
  return makeNode(std::move(value), {a, b}, [](Node& n) {
    const Matrix& g = n.grad;
    const auto& ain = n.inputs[0];
    const auto& bin = n.inputs[1];
    // dA = G B^T ; dB = A^T G
    accumulate(ain, g.matmul(bin->value.transposed()));
    accumulate(bin, ain->value.transposed().matmul(g));
  });
}

Tensor spmm(const SparseMatrix& a, const Tensor& h) {
  Matrix value = a.multiply(h.value());
  // The sparse operator is constant; capture its transpose for backward.
  auto at = std::make_shared<SparseMatrix>(a.transposed());
  return makeNode(std::move(value), {h}, [at](Node& n) {
    accumulate(n.inputs[0], at->multiply(n.grad));
  });
}

Tensor add(const Tensor& a, const Tensor& b) {
  return makeNode(a.value() + b.value(), {a, b}, [](Node& n) {
    accumulate(n.inputs[0], n.grad);
    accumulate(n.inputs[1], n.grad);
  });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return makeNode(a.value() - b.value(), {a, b}, [](Node& n) {
    accumulate(n.inputs[0], n.grad);
    accumulate(n.inputs[1], n.grad * -1.0);
  });
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  return makeNode(a.value().hadamard(b.value()), {a, b}, [](Node& n) {
    accumulate(n.inputs[0], n.grad.hadamard(n.inputs[1]->value));
    accumulate(n.inputs[1], n.grad.hadamard(n.inputs[0]->value));
  });
}

Tensor scale(const Tensor& a, double s) {
  return makeNode(a.value() * s, {a}, [s](Node& n) {
    accumulate(n.inputs[0], n.grad * s);
  });
}

Tensor addRow(const Tensor& a, const Tensor& biasRow) {
  if (biasRow.rows() != 1 || biasRow.cols() != a.cols()) {
    throw ShapeError("addRow: bias must be 1x" + std::to_string(a.cols()));
  }
  Matrix value = a.value();
  for (std::size_t r = 0; r < value.rows(); ++r) {
    for (std::size_t c = 0; c < value.cols(); ++c) {
      value(r, c) += biasRow.value()(0, c);
    }
  }
  return makeNode(std::move(value), {a, biasRow}, [](Node& n) {
    accumulate(n.inputs[0], n.grad);
    Matrix colSums(1, n.grad.cols());
    for (std::size_t r = 0; r < n.grad.rows(); ++r) {
      for (std::size_t c = 0; c < n.grad.cols(); ++c) {
        colSums(0, c) += n.grad(r, c);
      }
    }
    accumulate(n.inputs[1], colSums);
  });
}

Tensor sigmoid(const Tensor& a) {
  // kdetail::stableSigmoid is the shared definition (stable in both
  // tails), so the fused inference GRU step rounds identically.
  Matrix value = a.value().map(kdetail::stableSigmoid);
  return makeNode(std::move(value), {a}, [](Node& n) {
    Matrix delta(n.grad.rows(), n.grad.cols());
    for (std::size_t i = 0; i < n.grad.rows(); ++i) {
      for (std::size_t j = 0; j < n.grad.cols(); ++j) {
        const double y = n.value(i, j);
        delta(i, j) = n.grad(i, j) * y * (1.0 - y);
      }
    }
    accumulate(n.inputs[0], delta);
  });
}

Tensor tanh(const Tensor& a) {
  Matrix value = a.value().map([](double x) { return std::tanh(x); });
  return makeNode(std::move(value), {a}, [](Node& n) {
    Matrix delta(n.grad.rows(), n.grad.cols());
    for (std::size_t i = 0; i < n.grad.rows(); ++i) {
      for (std::size_t j = 0; j < n.grad.cols(); ++j) {
        const double y = n.value(i, j);
        delta(i, j) = n.grad(i, j) * (1.0 - y * y);
      }
    }
    accumulate(n.inputs[0], delta);
  });
}

Tensor logSigmoid(const Tensor& a) {
  // log sigmoid(x) = -softplus(-x) = min(x,0) - log1p(exp(-|x|))
  Matrix value = a.value().map([](double x) {
    return std::min(x, 0.0) - std::log1p(std::exp(-std::fabs(x)));
  });
  return makeNode(std::move(value), {a}, [](Node& n) {
    Matrix delta(n.grad.rows(), n.grad.cols());
    const Matrix& x = n.inputs[0]->value;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) {
        const double v = x(i, j);
        const double sig = kdetail::stableSigmoid(v);
        delta(i, j) = n.grad(i, j) * (1.0 - sig);
      }
    }
    accumulate(n.inputs[0], delta);
  });
}

Tensor oneMinus(const Tensor& a) {
  Matrix value = a.value().map([](double x) { return 1.0 - x; });
  return makeNode(std::move(value), {a}, [](Node& n) {
    accumulate(n.inputs[0], n.grad * -1.0);
  });
}

Tensor gatherRows(const Tensor& a, std::vector<std::size_t> indices) {
  Matrix value(indices.size(), a.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= a.rows()) {
      throw ShapeError("gatherRows: index out of range");
    }
    for (std::size_t c = 0; c < a.cols(); ++c) {
      value(i, c) = a.value()(indices[i], c);
    }
  }
  auto idx = std::make_shared<std::vector<std::size_t>>(std::move(indices));
  return makeNode(std::move(value), {a}, [idx](Node& n) {
    Matrix delta(n.inputs[0]->value.rows(), n.inputs[0]->value.cols());
    for (std::size_t i = 0; i < idx->size(); ++i) {
      for (std::size_t c = 0; c < n.grad.cols(); ++c) {
        delta((*idx)[i], c) += n.grad(i, c);
      }
    }
    accumulate(n.inputs[0], delta);
  });
}

Tensor rowScale(const Tensor& a, std::vector<double> factors) {
  if (factors.size() != a.rows()) {
    throw ShapeError("rowScale: factor count != rows");
  }
  Matrix value = a.value();
  for (std::size_t r = 0; r < value.rows(); ++r) {
    for (std::size_t c = 0; c < value.cols(); ++c) {
      value(r, c) *= factors[r];
    }
  }
  auto f = std::make_shared<std::vector<double>>(std::move(factors));
  return makeNode(std::move(value), {a}, [f](Node& n) {
    Matrix delta = n.grad;
    for (std::size_t r = 0; r < delta.rows(); ++r) {
      for (std::size_t c = 0; c < delta.cols(); ++c) {
        delta(r, c) *= (*f)[r];
      }
    }
    accumulate(n.inputs[0], delta);
  });
}

Tensor rowSum(const Tensor& a) {
  Matrix value(a.rows(), 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) total += a.value()(r, c);
    value(r, 0) = total;
  }
  return makeNode(std::move(value), {a}, [](Node& n) {
    Matrix delta(n.inputs[0]->value.rows(), n.inputs[0]->value.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r) {
      for (std::size_t c = 0; c < delta.cols(); ++c) {
        delta(r, c) = n.grad(r, 0);
      }
    }
    accumulate(n.inputs[0], delta);
  });
}

Tensor sumAll(const Tensor& a) {
  return makeNode(Matrix::scalar(a.value().sum()), {a}, [](Node& n) {
    Matrix delta(n.inputs[0]->value.rows(), n.inputs[0]->value.cols(),
                 n.grad(0, 0));
    accumulate(n.inputs[0], delta);
  });
}

}  // namespace ancstr::nn
