#include "nn/optim.h"

#include <cmath>

namespace ancstr::nn {

double clipGradNorm(const std::vector<Tensor>& params, double maxNorm) {
  double sq = 0.0;
  for (const Tensor& p : params) {
    if (p.grad().empty()) continue;
    const double n = p.grad().frobeniusNorm();
    sq += n * n;
  }
  const double norm = std::sqrt(sq);
  if (norm > maxNorm && norm > 0.0) {
    const double scaleBy = maxNorm / norm;
    for (const Tensor& p : params) {
      if (!p.grad().empty()) {
        // const_cast-free: re-set the grad through the node handle.
        auto node = p.node();
        node->grad *= scaleBy;
      }
    }
  }
  return norm;
}

void zeroGrads(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) const_cast<Tensor&>(p).zeroGrad();
}

void Optimizer::zeroGrad() { zeroGrads(params_); }

Sgd::Sgd(std::vector<Tensor> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {}

void Sgd::step() {
  for (Tensor& p : params_) {
    if (p.grad().empty()) continue;
    Matrix update = p.grad();
    if (momentum_ > 0.0) {
      auto [it, inserted] = velocity_.try_emplace(
          p.id(), Matrix(update.rows(), update.cols()));
      Matrix& vel = it->second;
      vel *= momentum_;
      vel += update;
      update = vel;
    }
    Matrix value = p.value();
    value.addScaled(update, -lr_);
    p.setValue(std::move(value));
  }
}

Adam::Adam(std::vector<Tensor> params) : Adam(std::move(params), Config()) {}

Adam::Adam(std::vector<Tensor> params, Config config)
    : Optimizer(std::move(params)), config_(config) {}

void Adam::step() {
  ++stepCount_;
  const double bc1 =
      1.0 - std::pow(config_.beta1, static_cast<double>(stepCount_));
  const double bc2 =
      1.0 - std::pow(config_.beta2, static_cast<double>(stepCount_));
  for (Tensor& p : params_) {
    if (p.grad().empty()) continue;
    Matrix g = p.grad();
    if (config_.weightDecay > 0.0) {
      g.addScaled(p.value(), config_.weightDecay);
    }
    auto [it, inserted] = state_.try_emplace(
        p.id(), State{Matrix(g.rows(), g.cols()), Matrix(g.rows(), g.cols())});
    State& s = it->second;
    Matrix value = p.value();
    for (std::size_t r = 0; r < g.rows(); ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) {
        const double grad = g(r, c);
        double& m = s.m(r, c);
        double& v = s.v(r, c);
        m = config_.beta1 * m + (1.0 - config_.beta1) * grad;
        v = config_.beta2 * v + (1.0 - config_.beta2) * grad * grad;
        const double mHat = m / bc1;
        const double vHat = v / bc2;
        value(r, c) -= config_.lr * mHat / (std::sqrt(vHat) + config_.eps);
      }
    }
    p.setValue(std::move(value));
  }
}

}  // namespace ancstr::nn
