#include "core/sampler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/features.h"
#include "nn/init.h"
#include "util/error.h"
#include "netlist/builder.h"

namespace ancstr {
namespace {

PreparedGraph smallGraph() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "b", "c", "vss"});
  b.nmos("m1", "a", "b", "c", "vss", 1e-6, 0.1e-6);
  b.nmos("m2", "b", "c", "a", "vss", 1e-6, 0.1e-6);
  b.res("r1", "a", "b", 1e3);
  b.res("r2", "b", "c", 1e3);
  b.cap("c1", "c", "a", 1e-15);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("cell"));
  return prepareGraph(buildHeteroGraph(design), buildFeatureMatrix(design));
}

TEST(Sampler, PositivesAreExactlyInNeighborEdges) {
  const PreparedGraph g = smallGraph();
  Rng rng(1);
  const ContrastiveBatch batch = sampleContrastiveBatch(g, 5, rng);
  std::size_t expected = 0;
  for (const auto& n : g.inNeighbors) expected += n.size();
  EXPECT_EQ(batch.posV.size(), expected);
  EXPECT_EQ(batch.posU.size(), expected);
  for (std::size_t i = 0; i < batch.posV.size(); ++i) {
    const auto& neigh = g.inNeighbors[batch.posV[i]];
    EXPECT_TRUE(std::binary_search(neigh.begin(), neigh.end(),
                                   static_cast<std::uint32_t>(batch.posU[i])));
  }
}

TEST(Sampler, NegativeCountPerVertex) {
  const PreparedGraph g = smallGraph();
  Rng rng(2);
  const ContrastiveBatch batch = sampleContrastiveBatch(g, 5, rng);
  EXPECT_EQ(batch.negV.size(), g.numVertices() * 5);
}

TEST(Sampler, NegativesAvoidSelf) {
  const PreparedGraph g = smallGraph();
  Rng rng(3);
  const ContrastiveBatch batch = sampleContrastiveBatch(g, 20, rng);
  for (std::size_t i = 0; i < batch.negV.size(); ++i) {
    EXPECT_NE(batch.negV[i], batch.negU[i]);
  }
}

TEST(Sampler, TinyGraphsYieldEmptyBatch) {
  NetlistBuilder b;
  b.beginSubckt("solo", {"a", "b"});
  b.res("r1", "a", "b", 1e3);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("solo"));
  const PreparedGraph g =
      prepareGraph(buildHeteroGraph(design), buildFeatureMatrix(design));
  Rng rng(4);
  EXPECT_EQ(sampleContrastiveBatch(g, 5, rng).size(), 0u);
}

TEST(ContrastiveLoss, PositiveWhenEmbeddingsRandom) {
  const PreparedGraph g = smallGraph();
  Rng rng(5);
  const ContrastiveBatch batch = sampleContrastiveBatch(g, 5, rng);
  nn::Tensor z = nn::Tensor::param(nn::uniform(g.numVertices(), 8, -1, 1, rng));
  const nn::Tensor loss = contrastiveLoss(z, batch, true);
  EXPECT_GT(loss.value()(0, 0), 0.0);
}

TEST(ContrastiveLoss, LowerWhenNeighborsAligned) {
  const PreparedGraph g = smallGraph();
  Rng rng(6);
  const ContrastiveBatch batch = sampleContrastiveBatch(g, 0, rng);
  // All-equal embeddings make every positive dot product large.
  nn::Tensor aligned = nn::Tensor::param(nn::Matrix(g.numVertices(), 4, 2.0));
  nn::Tensor scattered =
      nn::Tensor::param(nn::uniform(g.numVertices(), 4, -0.1, 0.1, rng));
  EXPECT_LT(contrastiveLoss(aligned, batch, true).value()(0, 0),
            contrastiveLoss(scattered, batch, true).value()(0, 0));
}

TEST(ContrastiveLoss, MeanVsSumReduction) {
  const PreparedGraph g = smallGraph();
  Rng rng(7);
  const ContrastiveBatch batch = sampleContrastiveBatch(g, 5, rng);
  nn::Tensor z = nn::Tensor::param(nn::uniform(g.numVertices(), 4, -1, 1, rng));
  const double sum = contrastiveLoss(z, batch, false).value()(0, 0);
  const double mean = contrastiveLoss(z, batch, true).value()(0, 0);
  EXPECT_NEAR(mean, sum / static_cast<double>(batch.size()), 1e-9);
}

TEST(ContrastiveLoss, GradientsReachEmbeddings) {
  const PreparedGraph g = smallGraph();
  Rng rng(8);
  const ContrastiveBatch batch = sampleContrastiveBatch(g, 5, rng);
  nn::Tensor z = nn::Tensor::param(nn::uniform(g.numVertices(), 4, -1, 1, rng));
  nn::Tensor loss = contrastiveLoss(z, batch, true);
  loss.backward();
  EXPECT_GT(z.grad().maxAbs(), 0.0);
}

TEST(Sampler, DeterministicForSeed) {
  const PreparedGraph g = smallGraph();
  Rng rngA(9), rngB(9);
  const ContrastiveBatch a = sampleContrastiveBatch(g, 5, rngA);
  const ContrastiveBatch b = sampleContrastiveBatch(g, 5, rngB);
  EXPECT_EQ(a.negU, b.negU);
  EXPECT_EQ(a.posV, b.posV);
}

}  // namespace
}  // namespace ancstr
