* malformed corpus: .subckt without .ends
.subckt amp in out vss
m1 d in s vss nch w=1u l=0.1u
m2 d2 in s vss nch w=1u l=0.1u
