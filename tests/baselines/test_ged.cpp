#include "baselines/ged.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"

namespace ancstr::ged {
namespace {

Library blockDesign() {
  NetlistBuilder b;
  b.beginSubckt("rc_a", {"in", "out", "vss"});
  b.res("r1", "in", "out", 1e3);
  b.cap("c1", "out", "vss", 1e-15);
  b.endSubckt();
  b.beginSubckt("rc_big", {"in", "out", "vss"});
  b.res("r1", "in", "out", 8e3);  // same topology, 8x values
  b.cap("c1", "out", "vss", 8e-15);
  b.endSubckt();
  b.beginSubckt("rc_long", {"in", "out", "vss"});
  b.res("r1", "in", "m1", 1e3);
  b.res("r2", "m1", "m2", 1e3);
  b.res("r3", "m2", "out", 1e3);
  b.cap("c1", "out", "vss", 1e-15);
  b.endSubckt();
  b.beginSubckt("top", {"a", "bnet", "c", "d", "vss"});
  b.inst("x1", "rc_a", {"a", "o1", "vss"});
  b.inst("x2", "rc_a", {"bnet", "o2", "vss"});
  b.inst("x3", "rc_big", {"c", "o3", "vss"});
  b.inst("x4", "rc_long", {"d", "o4", "vss"});
  b.endSubckt();
  return b.build("top");
}

TEST(Ged, IdenticalSubcircuitsScoreOne) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  // Nodes 1 and 2 are the rc_a twins.
  EXPECT_NEAR(subcircuitGedSimilarity(design, 1, 2), 1.0, 1e-9);
}

TEST(Ged, SizeDifferenceLowersSimilarity) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const double same = subcircuitGedSimilarity(design, 1, 2);
  const double sized = subcircuitGedSimilarity(design, 1, 3);  // 8x values
  EXPECT_LT(sized, same);
  EXPECT_GT(sized, 0.5) << "topology still matches";
}

TEST(Ged, DeviceCountDifferencePenalised) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const double longer = subcircuitGedSimilarity(design, 1, 4);
  const double sized = subcircuitGedSimilarity(design, 1, 3);
  EXPECT_LT(longer, sized) << "2 vs 4 devices is worse than a value gap";
}

TEST(Ged, SimilarityIsSymmetric) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  EXPECT_NEAR(subcircuitGedSimilarity(design, 1, 4),
              subcircuitGedSimilarity(design, 4, 1), 1e-9);
}

TEST(Ged, DetectorAcceptsOnlyTheTwinPair) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const GedResult result = detectSystemConstraints(design, lib);
  for (const ScoredCandidate& c : result.scored) {
    const bool twins = (c.pair.nameA == "x1" && c.pair.nameB == "x2");
    EXPECT_EQ(c.accepted, twins) << c.pair.nameA << "/" << c.pair.nameB;
  }
}

TEST(Ged, SimilarityRangeIsValid) {
  const Library lib = blockDesign();
  const FlatDesign design = FlatDesign::elaborate(lib);
  const GedResult result = detectSystemConstraints(design, lib);
  for (const ScoredCandidate& c : result.scored) {
    EXPECT_GE(c.similarity, 0.0);
    EXPECT_LE(c.similarity, 1.0);
  }
}

}  // namespace
}  // namespace ancstr::ged
