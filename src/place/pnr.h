// Place-and-route convenience: anneal a placement, derive a routing grid
// from it, route all nets (mirroring the nets of symmetric cell pairs),
// and report combined quality. This is the miniature of the automated
// netlist-to-GDSII flow the paper's constraints serve.
#pragma once

#include "place/annealer.h"
#include "place/router.h"

namespace ancstr::place {

struct PnrOptions {
  AnnealOptions anneal;
  RouterOptions route;
  /// Grid cells per micron of placement extent.
  double gridResolution = 1.0;
};

struct PnrResult {
  AnnealResult placement;
  RoutingResult routing;
  int gridWidth = 0;
  int gridHeight = 0;
  /// Index pairs of nets that were routed as mirrored twins.
  std::vector<std::pair<std::size_t, std::size_t>> symmetricNets;
};

/// Detects nets that are images of each other under the problem's
/// symmetric-pair mapping (cell i <-> partner(i), free cells fixed).
/// Returns index pairs (first < second) into problem.nets.
std::vector<std::pair<std::size_t, std::size_t>> findSymmetricNetPairs(
    const PlacementProblem& problem);

/// Full flow: anneal, then route on a grid sized from the placement.
PnrResult placeAndRoute(const PlacementProblem& problem,
                        const PnrOptions& options = {});

}  // namespace ancstr::place
