#include "eval/roc.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ancstr {

RocCurve computeRoc(const std::vector<double>& scores,
                    const std::vector<bool>& labels) {
  ANCSTR_ASSERT(scores.size() == labels.size());
  static metrics::Counter& scoredCounter =
      metrics::Registry::instance().counter("eval.roc_candidates");
  const trace::TraceSpan span("eval.roc");
  scoredCounter.add(scores.size());
  RocCurve curve;
  std::size_t positives = 0;
  for (const bool l : labels) positives += l ? 1u : 0u;
  const std::size_t negatives = labels.size() - positives;

  if (positives == 0 || negatives == 0) {
    curve.points = {{1.0, 0.0, 0.0}, {0.0, 1.0, 1.0}};
    curve.auc = 0.5;
    return curve;
  }

  // Sort by descending score; walk thresholds from +inf downwards.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  curve.points.push_back({scores[order.front()] + 1.0, 0.0, 0.0});
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < order.size();) {
    const double s = scores[order[i]];
    // All candidates tied at this score flip together.
    while (i < order.size() && scores[order[i]] == s) {
      if (labels[order[i]]) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    curve.points.push_back(
        {s, static_cast<double>(fp) / static_cast<double>(negatives),
         static_cast<double>(tp) / static_cast<double>(positives)});
  }
  if (curve.points.back().fpr != 1.0 || curve.points.back().tpr != 1.0) {
    curve.points.push_back({-1.0, 1.0, 1.0});
  }

  // Trapezoidal AUC over the staircase.
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const RocPoint& p0 = curve.points[i - 1];
    const RocPoint& p1 = curve.points[i];
    auc += (p1.fpr - p0.fpr) * 0.5 * (p0.tpr + p1.tpr);
  }
  curve.auc = auc;
  return curve;
}

std::string rocToCsv(const RocCurve& curve) {
  std::ostringstream os;
  os << "threshold,fpr,tpr\n";
  for (const RocPoint& p : curve.points) {
    os << p.threshold << ',' << p.fpr << ',' << p.tpr << '\n';
  }
  return os.str();
}

}  // namespace ancstr
