// Observability across the full pipeline: spans from every layer show up
// in one trace (with worker-thread attribution), the RunReport phases
// agree with the span taxonomy, and the metrics delta matches the
// detection result it describes. Also guards the core contract: enabling
// tracing never changes a result bit (see test_parallel_equivalence.cpp
// for the thread-count sweep with tracing on).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "circuits/synthetic.h"
#include "core/pipeline.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ancstr {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* value = std::getenv("ANCSTR_THREADS");
    had_ = value != nullptr;
    if (had_) saved_ = value;
    unsetenv("ANCSTR_THREADS");
    trace::TraceCollector::instance().setEnabled(false);
    trace::TraceCollector::instance().clear();
  }
  void TearDown() override {
    if (had_) setenv("ANCSTR_THREADS", saved_.c_str(), 1);
    trace::TraceCollector::instance().setEnabled(false);
    trace::TraceCollector::instance().clear();
  }

 private:
  std::string saved_;
  bool had_ = false;
};

std::set<std::string> spanNames(const std::vector<trace::TraceEvent>& events) {
  std::set<std::string> names;
  for (const trace::TraceEvent& e : events) names.insert(e.name);
  return names;
}

TEST_F(ObservabilityTest, FullRunEmitsEveryLayersSpans) {
  // ANCSTR_THREADS is the env route into util::resolveThreadCount — the
  // tsan CI job runs the whole suite under it, and this test forces it
  // regardless so worker attribution is always exercised.
  setenv("ANCSTR_THREADS", "4", 1);
  trace::TraceCollector::instance().setEnabled(true);

  const circuits::CircuitBenchmark array = circuits::makeBlockArray(4);
  PipelineConfig config;
  config.train.epochs = 2;
  config.train.batchSize = 0;  // widest per-batch fan-out
  Pipeline pipeline(config);
  pipeline.train({&array.lib});
  const ExtractionResult result = pipeline.extract(array.lib);
  unsetenv("ANCSTR_THREADS");

  const std::vector<trace::TraceEvent> events =
      trace::TraceCollector::instance().events();
  const std::set<std::string> names = spanNames(events);
  for (const char* required :
       {"pipeline.train", "train.prepare", "train.loop", "train.epoch",
        "train.batch", "train.graph", "graph.build", "pipeline.extract",
        "extract.graph_build", "extract.inference", "extract.detection",
        "model.embed", "detect.run", "detect.embed_blocks", "detect.score",
        "embed.subcircuit", "graph.build_induced", "graph.pagerank"}) {
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;
  }

  // Worker attribution: the per-graph / per-subcircuit spans must not all
  // sit on the caller thread.
  std::set<std::uint32_t> workerTids;
  for (const trace::TraceEvent& e : events) {
    if (e.name == "train.graph" || e.name == "embed.subcircuit") {
      workerTids.insert(e.tid);
    }
  }
  EXPECT_GT(workerTids.size(), 1u);

  // The report's phase list is the extract taxonomy, in execution order.
  ASSERT_EQ(result.report.phases.size(), 3u);
  EXPECT_EQ(result.report.phases[0].name, "extract.graph_build");
  EXPECT_EQ(result.report.phases[1].name, "extract.inference");
  EXPECT_EQ(result.report.phases[2].name, "extract.detection");
  EXPECT_GT(result.report.totalSeconds(), 0.0);
}

TEST_F(ObservabilityTest, ExtractionMetricsDeltaMatchesResult) {
  const circuits::CircuitBenchmark array = circuits::makeBlockArray(3);
  PipelineConfig config;
  config.train.epochs = 2;
  Pipeline pipeline(config);
  pipeline.train({&array.lib});
  const ExtractionResult result = pipeline.extract(array.lib);

  std::size_t accepted = 0;
  for (const ScoredCandidate& c : result.detection.scored) {
    if (c.accepted) ++accepted;
  }
  EXPECT_EQ(result.report.metrics.counters.at("detector.pairs_scored"),
            result.detection.scored.size());
  EXPECT_EQ(result.report.metrics.counters.at("detector.pairs_accepted"),
            accepted);
}

TEST_F(ObservabilityTest, TrainReportCarriesEpochLossesAndMetrics) {
  const circuits::CircuitBenchmark chain = circuits::makeDiffChain(3);
  PipelineConfig config;
  config.train.epochs = 3;
  Pipeline pipeline(config);
  const TrainReport report = pipeline.train({&chain.lib});

  ASSERT_EQ(report.epochLoss.size(), 3u);
  EXPECT_EQ(report.finalLoss(), report.epochLoss.back());
  EXPECT_EQ(report.report.metrics.counters.at("train.epochs"), 3u);
  const metrics::HistogramSnapshot& loss =
      report.report.metrics.histograms.at("train.epoch_loss");
  EXPECT_EQ(loss.count, 3u);
  EXPECT_EQ(report.report.phases.front().name, "train.prepare");
  EXPECT_EQ(report.report.phases.back().name, "train.loop");

  // The report is the source of truth for the loop timing.
  EXPECT_GT(report.report.phaseSeconds("train.loop"), 0.0);
  EXPECT_EQ(report.report.phaseSeconds("train.loop"),
            report.report.phases.back().seconds);

  // Report renders both ways.
  EXPECT_FALSE(report.report.toTable().empty());
  std::string error;
  EXPECT_TRUE(Json::parse(report.report.toJson().dump(), &error).has_value())
      << error;
}

TEST_F(ObservabilityTest, TracingNeverChangesResults) {
  auto run = [](bool traced) {
    trace::TraceCollector::instance().setEnabled(traced);
    const circuits::CircuitBenchmark array = circuits::makeBlockArray(3);
    PipelineConfig config;
    config.train.epochs = 2;
    config.threads = 2;
    Pipeline pipeline(config);
    pipeline.train({&array.lib});
    const ExtractionResult result = pipeline.extract(array.lib);
    trace::TraceCollector::instance().setEnabled(false);
    trace::TraceCollector::instance().clear();
    return result;
  };
  const ExtractionResult plain = run(false);
  const ExtractionResult traced = run(true);
  EXPECT_EQ(plain.embeddings, traced.embeddings);
  ASSERT_EQ(plain.detection.scored.size(), traced.detection.scored.size());
  for (std::size_t i = 0; i < plain.detection.scored.size(); ++i) {
    EXPECT_EQ(plain.detection.scored[i].similarity,
              traced.detection.scored[i].similarity);
    EXPECT_EQ(plain.detection.scored[i].accepted,
              traced.detection.scored[i].accepted);
  }
}

}  // namespace
}  // namespace ancstr
