// Hierarchical elaboration: expands a Library from its top cell into a
// flat device/net list while retaining the hierarchy tree T of the paper's
// Problem 1. Every HierNode is a subcircuit instantiation (the root being
// the top cell); leaf devices hang off the node that directly contains
// them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/diagnostics.h"

namespace ancstr {

namespace detail {
class Elaborator;
}

using FlatNetId = std::uint32_t;
using FlatDeviceId = std::uint32_t;
using HierNodeId = std::uint32_t;

/// A primitive device after elaboration.
struct FlatDevice {
  std::string path;      ///< "xfilter/xota/m1"
  DeviceType type = DeviceType::kUnknown;
  DeviceParams params;
  HierNodeId owner = 0;  ///< hierarchy node that directly contains it
  /// (function, flat net) per pin, in card order.
  std::vector<std::pair<PinFunction, FlatNetId>> pins;
};

/// An electrical net after elaboration.
struct FlatNet {
  std::string path;  ///< name in the highest hierarchy level it reaches
};

/// One node of the hierarchy tree: the top cell or a subckt instance.
struct HierNode {
  HierNodeId id = 0;
  HierNodeId parent = 0;       ///< == id for the root
  std::string path;            ///< "" for root, else "xfilter/xota"
  std::string instanceName;    ///< local instance name ("xota"); "" for root
  SubcktId master = kInvalidId;
  std::vector<HierNodeId> children;      ///< child block instances
  std::vector<FlatDeviceId> leafDevices; ///< devices directly inside
};

/// The elaborated design. Immutable after construction.
class FlatDesign {
 public:
  /// Elaborates `lib` from its top cell. Throws NetlistError on invalid
  /// structure (validate() is implied).
  static FlatDesign elaborate(const Library& lib);

  /// Fail-soft elaboration (docs/robustness.md). With a collect-mode sink,
  /// invalid constructs degrade instead of throwing: devices with bad pin
  /// counts or dangling pins are dropped ([netlist.invalid]) and instances
  /// whose master is undefined, port-arity-mismatched, dangling, or
  /// recursive are skipped whole ([pipeline.subckt_skipped]) — the valid
  /// remainder still elaborates. A strict sink reproduces elaborate(lib).
  /// An empty library (no top cell) still throws in either mode.
  static FlatDesign elaborate(const Library& lib, diag::DiagnosticSink& sink);

  const std::vector<FlatDevice>& devices() const { return devices_; }
  const std::vector<FlatNet>& nets() const { return nets_; }
  const std::vector<HierNode>& hierarchy() const { return hier_; }
  const HierNode& root() const { return hier_.front(); }
  const HierNode& node(HierNodeId id) const { return hier_.at(id); }
  const FlatDevice& device(FlatDeviceId id) const { return devices_.at(id); }
  const FlatNet& net(FlatNetId id) const { return nets_.at(id); }

  /// (device, pinIndex) terminals per flat net.
  const std::vector<std::vector<std::pair<FlatDeviceId, std::uint32_t>>>&
  netTerminals() const {
    return terminals_;
  }

  /// All devices in the subtree rooted at `node` (preorder).
  std::vector<FlatDeviceId> subtreeDevices(HierNodeId node) const;

  /// Number of devices in the subtree rooted at `node`.
  std::size_t subtreeDeviceCount(HierNodeId node) const;

  /// Size of the largest proper subcircuit (|N̂_sub| in Eq. 4): the max
  /// device count over all non-root hierarchy nodes; 0 if none exist.
  std::size_t maxSubcircuitSize() const;

 private:
  friend class detail::Elaborator;
  FlatDesign() = default;

  std::vector<FlatDevice> devices_;
  std::vector<FlatNet> nets_;
  std::vector<HierNode> hier_;
  std::vector<std::vector<std::pair<FlatDeviceId, std::uint32_t>>> terminals_;
};

}  // namespace ancstr
