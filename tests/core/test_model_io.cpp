#include "core/model_io.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/features.h"
#include "netlist/builder.h"
#include "util/error.h"

namespace ancstr {
namespace {

PreparedGraph probeGraph() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"a", "b", "vss"});
  b.nmos("m1", "a", "b", "vss", "vss", 1e-6, 0.1e-6);
  b.res("r1", "a", "b", 1e3);
  b.cap("c1", "b", "vss", 1e-15);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("cell"));
  return prepareGraph(buildHeteroGraph(design), buildFeatureMatrix(design));
}

TEST(ModelIo, RoundTripPreservesEmbeddings) {
  Rng rng(11);
  GnnModel model(GnnConfig{}, rng);
  std::stringstream stream;
  saveModel(model, stream);
  GnnModel loaded = loadModel(stream);
  EXPECT_EQ(loaded.config(), model.config());
  const PreparedGraph g = probeGraph();
  EXPECT_EQ(loaded.embed(g), model.embed(g));
}

TEST(ModelIo, RoundTripNonDefaultConfig) {
  Rng rng(12);
  GnnConfig config;
  config.featureDim = 18;
  config.hiddenDim = 12;
  config.numLayers = 3;
  config.sharedWeights = false;
  GnnModel model(config, rng);
  std::stringstream stream;
  saveModel(model, stream);
  GnnModel loaded = loadModel(stream);
  EXPECT_EQ(loaded.config(), config);
  EXPECT_EQ(loaded.parameters().size(), model.parameters().size());
}

TEST(ModelIo, RoundTripMeanAggregation) {
  Rng rng(15);
  GnnConfig config;
  config.meanAggregation = true;
  GnnModel model(config, rng);
  std::stringstream stream;
  saveModel(model, stream);
  GnnModel loaded = loadModel(stream);
  EXPECT_TRUE(loaded.config().meanAggregation);
  const PreparedGraph g = probeGraph();
  EXPECT_EQ(loaded.embed(g), model.embed(g));
}

TEST(ModelIo, ReadsVersion1Files) {
  // A v1 header lacks the meanAggregation field; it must default to off.
  Rng rng(16);
  GnnModel model(GnnConfig{}, rng);
  std::stringstream stream;
  saveModel(model, stream);
  std::string text = stream.str();
  const std::size_t headerEnd = text.find('\n');
  const std::size_t configEnd = text.find('\n', headerEnd + 1);
  // Rewrite "ancstr-gnn-model 2\nF H K S M\n" into v1 without M.
  std::string configLine =
      text.substr(headerEnd + 1, configEnd - headerEnd - 1);
  configLine = configLine.substr(0, configLine.rfind(' '));
  const std::string v1 = "ancstr-gnn-model 1\n" + configLine +
                         text.substr(configEnd);
  std::stringstream v1Stream(v1);
  GnnModel loaded = loadModel(v1Stream);
  EXPECT_FALSE(loaded.config().meanAggregation);
  const PreparedGraph g = probeGraph();
  EXPECT_EQ(loaded.embed(g), model.embed(g));
}

TEST(ModelIo, RejectsWrongMagic) {
  std::stringstream stream("not-a-model 1\n");
  EXPECT_THROW(loadModel(stream), Error);
}

TEST(ModelIo, RejectsWrongVersion) {
  std::stringstream stream("ancstr-gnn-model 99\n18 18 2 1\n");
  EXPECT_THROW(loadModel(stream), Error);
}

TEST(ModelIo, RejectsTruncatedData) {
  Rng rng(13);
  GnnModel model(GnnConfig{}, rng);
  std::stringstream stream;
  saveModel(model, stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(loadModel(truncated), Error);
}

TEST(ModelIo, FileRoundTrip) {
  Rng rng(14);
  GnnModel model(GnnConfig{}, rng);
  const std::string path = testing::TempDir() + "/ancstr_model.txt";
  saveModelFile(model, path);
  GnnModel loaded = loadModelFile(path);
  const PreparedGraph g = probeGraph();
  EXPECT_EQ(loaded.embed(g), model.embed(g));
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(loadModelFile("/nonexistent/dir/model.txt"), Error);
}

// --- corrupted inputs carry the documented diagnostic codes ------------

std::string errorWhat(const std::string& text) {
  std::stringstream stream(text);
  try {
    loadModel(stream);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected loadModel to throw";
  return {};
}

TEST(ModelIo, WrongMagicCarriesFormatCode) {
  EXPECT_NE(errorWhat("not-a-model 1\n").find("io.format"),
            std::string::npos);
}

TEST(ModelIo, TruncatedDataCarriesTruncatedCode) {
  Rng rng(17);
  GnnModel model(GnnConfig{}, rng);
  std::stringstream stream;
  saveModel(model, stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);  // cut mid-matrix
  EXPECT_NE(errorWhat(text).find("io.truncated"), std::string::npos);
}

TEST(ModelIo, MissingFileCarriesFailureCode) {
  try {
    loadModelFile("/nonexistent/dir/model.txt");
    FAIL() << "expected loadModelFile to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("io.failure"), std::string::npos);
  }
}

TEST(ModelIo, SaveRefusesNonFiniteParameters) {
  // A poisoned weight must be refused at save time ([io.nonfinite])
  // instead of producing a file that cannot be read back.
  Rng rng(18);
  GnnModel model(GnnConfig{}, rng);
  auto params = model.parameters();
  ASSERT_FALSE(params.empty());
  nn::Matrix poisoned = params[0].value();
  ASSERT_GT(poisoned.rows() * poisoned.cols(), 0u);
  poisoned(0, 0) = std::numeric_limits<double>::quiet_NaN();
  params[0].setValue(poisoned);
  std::stringstream stream;
  try {
    saveModel(model, stream);
    FAIL() << "expected saveModel to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("io.nonfinite"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ancstr
