#include "netlist/spectre_parser.h"

#include <gtest/gtest.h>

#include <fstream>

#include "netlist/spice_parser.h"
#include "netlist/spice_writer.h"
#include "util/error.h"

namespace ancstr {
namespace {

TEST(SpectreParser, ParsesSubcktWithPrimitives) {
  const char* text = R"(
// Spectre netlist
simulator lang=spectre
subckt ota (vinp vinn vout vdd vss)
M1 (n1 vinp tail vss) nch_lvt w=4u l=0.2u nf=2
M2 (vout vinn tail vss) nch_lvt w=4u l=0.2u nf=2
MT (tail vbn vss vss) nch w=8u l=0.4u
R1 (n1 vdd) resistor r=5k
C1 (vout vss) capacitor c=60f
ends ota
)";
  const Library lib = parseSpectre(text);
  const auto id = lib.findSubckt("ota");
  ASSERT_TRUE(id.has_value());
  const SubcktDef& ota = lib.subckt(*id);
  EXPECT_EQ(ota.ports().size(), 5u);
  EXPECT_EQ(ota.devices().size(), 5u);
  const Device& m1 = ota.device(*ota.findDevice("m1"));
  EXPECT_EQ(m1.type, DeviceType::kNchLvt);
  EXPECT_DOUBLE_EQ(m1.params.w, 4e-6);
  EXPECT_EQ(m1.params.nf, 2);
  const Device& r1 = ota.device(*ota.findDevice("r1"));
  EXPECT_DOUBLE_EQ(r1.params.value, 5000.0);
  const Device& c1 = ota.device(*ota.findDevice("c1"));
  EXPECT_DOUBLE_EQ(c1.params.value, 60e-15);
}

TEST(SpectreParser, HierarchyAndInstances) {
  const char* text = R"(
subckt inv (in out vdd vss)
MP (out in vdd vdd) pch w=2u l=0.1u
MN (out in vss vss) nch w=1u l=0.1u
ends inv
subckt buf (in out vdd vss)
x1 (in mid vdd vss) inv
x2 (mid out vdd vss) inv
ends buf
)";
  const Library lib = parseSpectre(text);
  EXPECT_EQ(lib.flatDeviceCount(), 4u);
  EXPECT_EQ(lib.top(), *lib.findSubckt("buf"));
}

TEST(SpectreParser, ParametersAndContinuations) {
  const char* text =
      "subckt cell (d g s)\n"
      "parameters wu=1u lmin=0.1u\n"
      "M1 (d g s s) nch \\\n"
      "   w=wu*3 l=lmin\n"
      "ends cell\n";
  const Library lib = parseSpectre(text);
  const Device& m1 = lib.subckt(0).device(0);
  EXPECT_DOUBLE_EQ(m1.params.w, 3e-6);
  EXPECT_DOUBLE_EQ(m1.params.l, 1e-7);
}

TEST(SpectreParser, NodeListWithoutParentheses) {
  const char* text =
      "subckt cell a b\n"
      "R1 a b resistor r=2k\n"
      "ends\n";
  const Library lib = parseSpectre(text);
  EXPECT_DOUBLE_EQ(lib.subckt(0).device(0).params.value, 2000.0);
}

TEST(SpectreParser, CommentsIgnored) {
  const char* text =
      "* spice-style comment line\n"
      "subckt c (a b)\n"
      "R1 (a b) resistor r=1k // trailing comment\n"
      "ends\n";
  const Library lib = parseSpectre(text);
  EXPECT_EQ(lib.subckt(0).devices().size(), 1u);
}

TEST(SpectreParser, InductorLengthIsValue) {
  const char* text =
      "subckt c (a b)\nL1 (a b) inductor l=2n\nends\n";
  const Library lib = parseSpectre(text);
  const Device& l1 = lib.subckt(0).device(0);
  EXPECT_EQ(l1.type, DeviceType::kInd);
  EXPECT_DOUBLE_EQ(l1.params.value, 2e-9);
}

TEST(SpectreParser, Errors) {
  EXPECT_THROW(parseSpectre("subckt c (a\nends\n"), ParseError);  // unbalanced
  EXPECT_THROW(parseSpectre("subckt c (a b)\nR1 (a b) nosuchmaster\nends\n"),
               ParseError);
  EXPECT_THROW(parseSpectre("subckt c (a b)\nR1 (a b) resistor r=1k\n"),
               ParseError);  // missing ends
  EXPECT_THROW(parseSpectre("ends\n"), ParseError);
  EXPECT_THROW(
      parseSpectre("subckt c (a b)\nM1 (a b) nch w=1u l=1u\nends\n"),
      ParseError);  // too few MOS nodes
}

TEST(SpectreParser, EquivalentToSpiceVersion) {
  // The same circuit through both dialects elaborates identically.
  const char* spectre = R"(
subckt cell (a b vss)
M1 (a b vss vss) nch w=2u l=0.1u
R1 (a b) resistor r=1k
ends cell
)";
  const char* spice = R"(
.subckt cell a b vss
m1 a b vss vss nch w=2u l=0.1u
r1 a b 1k rppoly
.ends
)";
  const Library a = parseSpectre(spectre);
  const Library b = parseSpice(spice);
  EXPECT_EQ(a.flatDeviceCount(), b.flatDeviceCount());
  EXPECT_EQ(a.flatNetCount(), b.flatNetCount());
}

TEST(SpectreParser, FileDispatchBySniffing) {
  const std::string dir = testing::TempDir();
  const std::string spectrePath = dir + "/t1.sp";
  {
    std::ofstream out(spectrePath);
    out << "simulator lang=spectre\nsubckt c (a b)\nR1 (a b) resistor "
           "r=1k\nends\n";
  }
  const Library viaSniff = parseNetlistFile(spectrePath);
  EXPECT_TRUE(viaSniff.findSubckt("c").has_value());

  const std::string spicePath = dir + "/t2.sp";
  {
    std::ofstream out(spicePath);
    out << ".subckt c a b\nr1 a b 1k\n.ends\n";
  }
  const Library viaSpice = parseNetlistFile(spicePath);
  EXPECT_TRUE(viaSpice.findSubckt("c").has_value());

  const std::string scsPath = dir + "/t3.scs";
  {
    std::ofstream out(scsPath);
    out << "subckt c (a b)\nR1 (a b) resistor r=1k\nends\n";
  }
  EXPECT_TRUE(parseNetlistFile(scsPath).findSubckt("c").has_value());
}

}  // namespace
}  // namespace ancstr
