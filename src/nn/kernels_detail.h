// Shared plumbing for the runtime-dispatched kernel backends: function
// pointer types, the per-ISA op table, and the reference (scalar)
// implementations that define the numeric contract every backend must
// reproduce bitwise.
//
// The contract (see docs/api.md, "Numeric contract"):
//
//  * gemmAcc / gemmBatchAcc  C += A B accumulates output element (i, j) by
//    folding k in ascending order with a separate multiply round and add
//    round per term (never fused into an FMA), skipping terms whose A
//    element compares equal to 0.0. Backends may vectorise across j (output
//    elements are independent) and block across i, but must preserve the
//    per-element term sequence exactly.
//  * gemv  y[i] = dot(A row i, x) via a fixed 8-lane decomposition: lane
//    (p mod 8) accumulates element p in ascending order (separate multiply
//    and add rounds), and the lanes are combined with the fixed tree
//    ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
//  * axpy  y[j] += s * x[j], ascending j, separate multiply and add rounds.
//
// Every backend TU is compiled with -ffp-contract=off so scalar tails can
// never be contracted into FMAs by the compiler, which would single-round
// the multiply-add and break cross-kernel bitwise equality.
#pragma once

#include <cmath>
#include <cstddef>

namespace ancstr::nn::kdetail {

/// C += A B; A is m x k, B is k x n, C is m x n, all row-major and densely
/// packed. C must be initialised by the caller.
using GemmFn = void (*)(const double* a, const double* b, double* c,
                        std::size_t m, std::size_t k, std::size_t n);

/// Shared-A batch: cs[t] += A bs[t] for t < count. Streams A once across
/// several weight matrices (the per-edge-type message transforms); the
/// per-output-element term sequence is identical to gemmAcc.
using GemmBatchFn = void (*)(const double* a, const double* const* bs,
                             double* const* cs, std::size_t count,
                             std::size_t m, std::size_t k, std::size_t n);

/// y = A x; A is m x n row-major, x has n elements, y has m.
using GemvFn = void (*)(const double* a, const double* x, double* y,
                        std::size_t m, std::size_t n);

/// y += s * x over n elements.
using AxpyFn = void (*)(double* y, const double* x, double s, std::size_t n);

/// The ISA-specific op table a backend TU exports. The fused GRU step is
/// composed on top of these in kernels.cpp (its elementwise half is shared
/// across backends by construction).
struct KernelOps {
  GemmFn gemmAcc = nullptr;
  GemmBatchFn gemmBatchAcc = nullptr;
  GemvFn gemv = nullptr;
  AxpyFn axpy = nullptr;
};

/// Backend table accessors, defined in their own translation units (the
/// only TUs compiled with -mavx2 / -mavx512f). Null when the backend was
/// not compiled in.
const KernelOps* scalarOps();
const KernelOps* avx2Ops();
const KernelOps* avx512Ops();

/// Combines the 8 gemv lanes in the fixed contract order. `static inline`
/// (internal linkage) on purpose: each backend TU gets its own copy, so the
/// linker can never substitute a copy compiled for a different ISA.
static inline double reduceLanes8(const double* lane) {
  const double s01 = lane[0] + lane[1];
  const double s23 = lane[2] + lane[3];
  const double s45 = lane[4] + lane[5];
  const double s67 = lane[6] + lane[7];
  return (s01 + s23) + (s45 + s67);
}

/// Numerically stable logistic function; the single definition shared by
/// the autograd sigmoid op and the fused GRU step, so the tape path and the
/// inference fast path round identically.
static inline double stableSigmoid(double x) {
  return x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                  : std::exp(x) / (1.0 + std::exp(x));
}

// --- reference implementations --------------------------------------------
// These define the contract. They are `static inline` so a backend TU can
// fall back to them for shapes it does not vectorise without creating
// ODR-merged copies across TUs compiled with different target flags.

static inline void gemmAccRef(const double* a, const double* b, double* c,
                              std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* aRow = a + i * k;
    double* cRow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      const double* bRow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) cRow[j] += av * bRow[j];
    }
  }
}

static inline void gemmBatchAccRef(const double* a, const double* const* bs,
                                   double* const* cs, std::size_t count,
                                   std::size_t m, std::size_t k,
                                   std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* aRow = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      for (std::size_t t = 0; t < count; ++t) {
        const double* bRow = bs[t] + p * n;
        double* cRow = cs[t] + i * n;
        for (std::size_t j = 0; j < n; ++j) cRow[j] += av * bRow[j];
      }
    }
  }
}

static inline void gemvRef(const double* a, const double* x, double* y,
                           std::size_t m, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* aRow = a + i * n;
    double lane[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    for (std::size_t p = 0; p < n; ++p) lane[p & 7] += aRow[p] * x[p];
    y[i] = reduceLanes8(lane);
  }
}

static inline void axpyRef(double* y, const double* x, double s,
                           std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] += s * x[j];
}

}  // namespace ancstr::nn::kdetail
