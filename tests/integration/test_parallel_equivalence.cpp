// The determinism contract of the parallel execution layer: for any thread
// count, Pipeline train + extract must produce bitwise identical results —
// same trained weights, same similarities, same accepted constraints.
// Parallelism that changes a single bit is a bug, not a speedup.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/synthetic.h"
#include "core/model_io.h"
#include "core/pipeline.h"
#include "util/trace.h"

namespace ancstr {
namespace {

/// The pipeline reads ANCSTR_THREADS as an override, which would defeat
/// the explicit thread counts this test sweeps — clear it for the
/// duration of the suite and restore afterwards.
class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* value = std::getenv("ANCSTR_THREADS");
    had_ = value != nullptr;
    if (had_) saved_ = value;
    unsetenv("ANCSTR_THREADS");
  }
  void TearDown() override {
    if (had_) setenv("ANCSTR_THREADS", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
  bool had_ = false;
};

struct RunResult {
  std::vector<ExtractionResult> extractions;  ///< one per circuit
  std::string modelText;                      ///< serialized trained weights
};

RunResult runPipeline(std::size_t threads) {
  // Two benchmark circuits: a flat differential chain (device-level pairs)
  // and a hierarchical block array (system-level pairs + Algorithm-2
  // block embeddings), so every parallelised stage does real work.
  const circuits::CircuitBenchmark chain = circuits::makeDiffChain(3);
  const circuits::CircuitBenchmark array = circuits::makeBlockArray(4);

  PipelineConfig config;
  config.threads = threads;
  config.train.epochs = 6;
  config.train.batchSize = 4;  // exercises the per-batch gradient fan-out
  Pipeline pipeline(config);
  pipeline.train({&chain.lib, &array.lib});

  RunResult result;
  result.extractions.push_back(pipeline.extract(chain.lib));
  result.extractions.push_back(pipeline.extract(array.lib));
  std::ostringstream model;
  saveModel(pipeline.model(), model);
  result.modelText = model.str();
  return result;
}

void expectBitwiseIdentical(const RunResult& serial,
                            const RunResult& parallel) {
  // Trained weights: saveModel writes with 17 significant digits, which
  // round-trips doubles exactly, so string equality is bitwise equality.
  EXPECT_EQ(serial.modelText, parallel.modelText);

  ASSERT_EQ(serial.extractions.size(), parallel.extractions.size());
  for (std::size_t c = 0; c < serial.extractions.size(); ++c) {
    const ExtractionResult& a = serial.extractions[c];
    const ExtractionResult& b = parallel.extractions[c];
    EXPECT_EQ(a.embeddings, b.embeddings) << "circuit " << c;
    EXPECT_EQ(a.detection.systemThreshold, b.detection.systemThreshold);
    EXPECT_EQ(a.detection.deviceThreshold, b.detection.deviceThreshold);
    ASSERT_EQ(a.detection.scored.size(), b.detection.scored.size())
        << "circuit " << c;
    for (std::size_t i = 0; i < a.detection.scored.size(); ++i) {
      const ScoredCandidate& sa = a.detection.scored[i];
      const ScoredCandidate& sb = b.detection.scored[i];
      EXPECT_EQ(sa.pair.a, sb.pair.a) << "circuit " << c << " pair " << i;
      EXPECT_EQ(sa.pair.b, sb.pair.b) << "circuit " << c << " pair " << i;
      EXPECT_EQ(sa.pair.nameA, sb.pair.nameA);
      EXPECT_EQ(sa.pair.nameB, sb.pair.nameB);
      // EXPECT_EQ on double is exact comparison — bitwise, not near.
      EXPECT_EQ(sa.similarity, sb.similarity)
          << "circuit " << c << " pair " << sa.pair.nameA << "/"
          << sa.pair.nameB;
      EXPECT_EQ(sa.accepted, sb.accepted);
    }
    // Mirror detection runs through the same fixed-slot fan-out, so its
    // scored list must also be positionally bitwise identical.
    ASSERT_EQ(a.detection.mirrorScored.size(), b.detection.mirrorScored.size())
        << "circuit " << c;
    for (std::size_t i = 0; i < a.detection.mirrorScored.size(); ++i) {
      const ScoredCandidate& sa = a.detection.mirrorScored[i];
      const ScoredCandidate& sb = b.detection.mirrorScored[i];
      EXPECT_EQ(sa.pair.a, sb.pair.a) << "circuit " << c << " mirror " << i;
      EXPECT_EQ(sa.pair.b, sb.pair.b) << "circuit " << c << " mirror " << i;
      EXPECT_EQ(sa.similarity, sb.similarity)
          << "circuit " << c << " mirror " << sa.pair.nameA << "/"
          << sa.pair.nameB;
      EXPECT_EQ(sa.accepted, sb.accepted);
    }
    EXPECT_EQ(a.detection.mirrorThreshold, b.detection.mirrorThreshold);
    // The typed registry is derived deterministically from the above, so
    // it must compare equal wholesale.
    EXPECT_TRUE(a.detection.set == b.detection.set) << "circuit " << c;
  }
}

TEST_F(ParallelEquivalenceTest, FourThreadsMatchSerialBitwise) {
  expectBitwiseIdentical(runPipeline(1), runPipeline(4));
}

TEST_F(ParallelEquivalenceTest, OddThreadCountsMatchSerialBitwise) {
  // Chunk boundaries move with the thread count; results must not.
  expectBitwiseIdentical(runPipeline(1), runPipeline(3));
}

TEST_F(ParallelEquivalenceTest, WholeEpochBatchesMatchAcrossThreadCounts) {
  // batchSize = 0 (whole epoch per optimizer step) maximises the width of
  // the gradient fan-out; still bitwise deterministic.
  auto run = [](std::size_t threads) {
    const circuits::CircuitBenchmark array = circuits::makeBlockArray(4);
    PipelineConfig config;
    config.threads = threads;
    config.train.epochs = 4;
    config.train.batchSize = 0;
    Pipeline pipeline(config);
    pipeline.train({&array.lib});
    std::ostringstream model;
    saveModel(pipeline.model(), model);
    return model.str();
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
}

TEST_F(ParallelEquivalenceTest, TracingEnabledStaysBitwiseIdentical) {
  // Instrumentation observes, never steers: with the span collector live,
  // the serial and 4-thread runs must still match bit for bit.
  trace::TraceCollector::instance().setEnabled(true);
  const RunResult serial = runPipeline(1);
  const RunResult parallel = runPipeline(4);
  trace::TraceCollector::instance().setEnabled(false);
  trace::TraceCollector::instance().clear();
  expectBitwiseIdentical(serial, parallel);
}

TEST_F(ParallelEquivalenceTest, EnvOverrideKeepsResultsIdentical) {
  // ANCSTR_THREADS reroutes execution, never results.
  const RunResult serial = runPipeline(1);
  setenv("ANCSTR_THREADS", "4", 1);
  const RunResult forced = runPipeline(1);
  unsetenv("ANCSTR_THREADS");
  expectBitwiseIdentical(serial, forced);
}

}  // namespace
}  // namespace ancstr
