// Monotonic wall-clock stopwatch: the single clock source for all timing
// in the library — trace spans (util/trace.h) embed one, RunReport phase
// timings reuse the span's stopwatch, and the bench harnesses use it
// directly for the runtime columns of Tables V and VI.
#pragma once

#include <chrono>

namespace ancstr {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ancstr
