# Run-ledger contract check for `extract --batch --ledger-out`
# (docs/observability.md): every design in a batch produces exactly one
# schema-valid ledger line, and a restart-warm rerun over the same
# --cache-dir reports `disk_hit` for every design. Validation is delegated
# to scripts/check_ledger.py — the same gate CI runs.
#
# Invoked by ctest as:
#   cmake -DCLI=<ancstr_cli> -DMODEL=<model.txt> -DCORPUS=<dir> -DWORK=<dir>
#         -DPYTHON=<python3> -DSCRIPTS=<scripts dir> -P ledger_test.cmake
foreach(var CLI MODEL CORPUS WORK PYTHON SCRIPTS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ledger_test.cmake: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

file(GLOB designs ${CORPUS}/*.sp)
list(LENGTH designs design_count)
if(design_count EQUAL 0)
  message(FATAL_ERROR "no .sp designs found in ${CORPUS}")
endif()

foreach(pass cold warm)
  execute_process(
    COMMAND ${CLI} extract --model ${MODEL} --batch ${CORPUS}
            --threads 2 --cache-dir ${WORK}/cache
            --ledger-out ${WORK}/${pass}-ledger.jsonl
            --out-dir ${WORK}/${pass}
    RESULT_VARIABLE rc
    ERROR_VARIABLE log)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${pass} extract --ledger-out failed (${rc}):\n${log}")
  endif()
endforeach()

# One schema-valid record per design on the cold pass.
execute_process(
  COMMAND ${PYTHON} ${SCRIPTS}/check_ledger.py ${WORK}/cold-ledger.jsonl
          --expect ${design_count}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold ledger failed validation:\n${out}")
endif()

# The restart-warm pass must be served entirely from the disk tier.
execute_process(
  COMMAND ${PYTHON} ${SCRIPTS}/check_ledger.py ${WORK}/warm-ledger.jsonl
          --expect ${design_count} --expect-cache-outcome disk_hit
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm ledger failed validation:\n${out}")
endif()

message(STATUS "run-ledger OK: ${design_count} records per pass, "
               "restart-warm pass all disk_hit")
