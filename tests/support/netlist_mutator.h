// Seeded netlist mutation for the delta-equivalence differential-testing
// harness (tests/integration/test_delta_equivalence.cpp).
//
// A Library is lifted into an index-based LibrarySpec, edited there, and
// rebuilt — SubcktDef has no rename/remove API, and in-place edits would
// desync the per-net terminal lists. The rebuild is id-preserving: nets,
// devices, and instances are re-added in their original id order, so an
// identity round-trip produces a library whose elaboration is
// hash-identical to the original (verified by the mutator's own tests).
//
// Mutations model real ECO edits: pure renames (hash-invariant — the diff
// must classify everything clean), pin swaps, device insertion/removal,
// instance retargeting, and sizing edits (all hash-visible — the diff
// must dirty exactly the touched cone). Every mutation validates the
// rebuilt library and retries with a fresh draw on failure, so a mutated
// library is always structurally valid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/rng.h"

namespace ancstr::testsupport {

/// Index-based mirror of one Device: pins reference nets by index into
/// the owning SubcktSpec::nets, so renaming a net touches one string.
struct DeviceSpec {
  std::string name;
  DeviceType type = DeviceType::kUnknown;
  std::string model;
  DeviceParams params;
  std::vector<std::pair<PinFunction, std::size_t>> pins;
};

struct InstanceSpec {
  std::string name;
  std::size_t master = 0;  ///< index into LibrarySpec::subckts
  std::vector<std::size_t> connections;
};

struct NetSpec {
  std::string name;
  bool isPort = false;
};

struct SubcktSpec {
  std::string name;
  std::vector<NetSpec> nets;  ///< in NetId order; ports first
  std::vector<DeviceSpec> devices;
  std::vector<InstanceSpec> instances;
};

struct LibrarySpec {
  std::vector<SubcktSpec> subckts;  ///< in SubcktId order
  std::size_t top = 0;
};

/// Lifts `lib` into a spec. Requires each subckt's ports to be nets
/// 0..k-1 in order (true for every parser/builder in this repo — they
/// create port nets first); throws NetlistError otherwise, because the
/// rebuild could not preserve net ids.
LibrarySpec specFromLibrary(const Library& lib);

/// Rebuilds a Library from a spec, preserving net/device/instance id
/// order exactly.
Library libraryFromSpec(const LibrarySpec& spec);

/// Identity round-trip: specFromLibrary + libraryFromSpec. The result
/// elaborates to the same structural hashes as `lib`.
Library rebuildIdentity(const Library& lib);

enum class MutationKind {
  kRenameNet,        ///< hash-invariant
  kRenameDevice,     ///< hash-invariant
  kRenameInstance,   ///< hash-invariant
  kSwapPins,         ///< swap the nets of two pins of one device
  kAddDevice,        ///< insert a passive between two existing nets
  kRemoveDevice,     ///< delete one device
  kRetargetInstance, ///< repoint an instance at an arity-compatible master
  kEditParams,       ///< scale one device's sizing parameters
};

const char* toString(MutationKind kind);

/// One applied edit, for failure-message reproduction.
struct Mutation {
  MutationKind kind = MutationKind::kRenameNet;
  std::string description;
};

/// Deterministic: the same (base, seed, counts) always produces the same
/// mutated libraries and log.
class NetlistMutator {
 public:
  NetlistMutator(const Library& base, std::uint64_t seed);

  /// Applies `count` random valid edits on top of the current state and
  /// returns the rebuilt library (the mutator keeps the state, so
  /// successive calls build an edit history). Throws Error if no valid
  /// mutation can be found (pathologically constrained base).
  Library mutate(int count);

  /// As mutate(), but drawing only from `kinds`.
  Library mutate(int count, const std::vector<MutationKind>& kinds);

  /// Library for the current (possibly unmutated) state.
  Library current() const;

  /// Every edit applied so far, in order.
  const std::vector<Mutation>& applied() const { return applied_; }

 private:
  bool tryApply(LibrarySpec& spec, MutationKind kind, std::string* desc);

  LibrarySpec spec_;
  Rng rng_;
  std::vector<Mutation> applied_;
  std::uint64_t fresh_ = 0;  ///< counter for generated unique names
};

/// Returns a copy of `lib` with `extraTerminals` additional capacitors
/// hanging between the highest-degree net of the top cell and its other
/// nets — pushes that net's flat degree across a nearby
/// GraphBuildOptions::maxNetDegree cap, flipping the eligibility bit that
/// the structural hash encodes for every subtree touching the net.
Library attachFanout(const Library& lib, std::size_t extraTerminals);

}  // namespace ancstr::testsupport
