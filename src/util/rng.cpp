#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace ancstr {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng Rng::fork() { return Rng(next()); }

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::index(std::size_t n) {
  ANCSTR_ASSERT(n > 0);
  // Rejection-free modulo is fine here: n is tiny relative to 2^64, the
  // bias is far below anything observable in our sampling use-cases.
  return static_cast<std::size_t>(next() % n);
}

double Rng::normal() {
  if (hasSpare_) {
    hasSpare_ = false;
    return spareNormal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double twoPi = 6.283185307179586476925286766559;
  spareNormal_ = mag * std::sin(twoPi * u2);
  hasSpare_ = true;
  return mag * std::cos(twoPi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace ancstr
