#include "graph/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace ancstr {
namespace {

double offDiagonalNorm(const nn::Matrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) sum += a(i, j) * a(i, j);
  }
  return std::sqrt(2.0 * sum);
}

}  // namespace

EigenResult jacobiEigen(const nn::Matrix& sym, const JacobiOptions& options) {
  if (sym.rows() != sym.cols()) {
    throw ShapeError("jacobiEigen: matrix not square: " + sym.shapeString());
  }
  const std::size_t n = sym.rows();
  nn::Matrix a = sym;
  nn::Matrix v = options.computeVectors ? nn::Matrix::identity(n)
                                        : nn::Matrix();

  for (int sweep = 0; sweep < options.maxSweeps; ++sweep) {
    if (offDiagonalNorm(a) < options.tolerance) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        if (options.computeVectors) {
          for (std::size_t k = 0; k < n; ++k) {
            const double vkp = v(k, p);
            const double vkq = v(k, q);
            v(k, p) = c * vkp - s * vkq;
            v(k, q) = s * vkp + c * vkq;
          }
        }
      }
    }
  }

  EigenResult result;
  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = a(i, i);

  // Sort ascending, permuting vectors alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return result.values[x] < result.values[y];
  });
  std::vector<double> sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = result.values[order[i]];
  result.values = std::move(sorted);
  if (options.computeVectors) {
    nn::Matrix vs(n, n);
    for (std::size_t col = 0; col < n; ++col) {
      for (std::size_t rowIdx = 0; rowIdx < n; ++rowIdx) {
        vs(rowIdx, col) = v(rowIdx, order[col]);
      }
    }
    result.vectors = std::move(vs);
  }
  return result;
}

std::vector<double> symmetricEigenvalues(const nn::Matrix& sym) {
  return jacobiEigen(sym).values;
}

}  // namespace ancstr
