* malformed corpus: a file that includes itself
.include "self_include.sp"
r1 x y 2k
