#include "util/disk_cache.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/trace.h"

namespace ancstr::util {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'A', 'N', 'C', 'S', 'T', 'R', 'D', 'C'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kMaxQueuedWrites = 1024;

void append32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void append64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

std::uint32_t read32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t read64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

StructuralHash payloadChecksum(std::string_view payload) {
  StructuralHasher hasher;
  hasher.addBytes(payload);
  return hasher.finish();
}

/// Header + payload as the exact byte stream renamed into place.
std::string encodeEntry(std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  append32(out, DiskCache::kFormatVersion);
  append32(out, 0);  // reserved
  append64(out, static_cast<std::uint64_t>(payload.size()));
  const StructuralHash sum = payloadChecksum(payload);
  append64(out, sum.hi);
  append64(out, sum.lo);
  out.append(payload);
  return out;
}

/// Why a read failed to yield a payload.
enum class ReadVerdict { kOk, kCorrupt, kVersionMismatch };

/// Validates `bytes` as a complete entry; on success `payload` gets the
/// verified payload. Never throws.
ReadVerdict decodeEntry(const std::string& bytes, std::string* payload) {
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return ReadVerdict::kCorrupt;
  }
  const std::uint32_t version = read32(bytes.data() + 8);
  if (version != DiskCache::kFormatVersion) {
    return ReadVerdict::kVersionMismatch;
  }
  const std::uint64_t payloadSize = read64(bytes.data() + 16);
  if (bytes.size() != kHeaderBytes + payloadSize) {
    return ReadVerdict::kCorrupt;  // short read / truncation / trailing junk
  }
  StructuralHash stored;
  stored.hi = read64(bytes.data() + 24);
  stored.lo = read64(bytes.data() + 32);
  std::string body = bytes.substr(kHeaderBytes);
  StructuralHash actual = payloadChecksum(body);
  if (fault::shouldFail("disk_cache.checksum")) {
    actual.hi ^= 1;  // injected bit rot
  }
  if (!(actual == stored)) return ReadVerdict::kCorrupt;
  *payload = std::move(body);
  return ReadVerdict::kOk;
}

}  // namespace

std::string DiskCache::entryFileName(std::string_view ns,
                                     const StructuralHash& key) {
  return std::string(ns) + "-" + key.hex() + ".e";
}

DiskCache::DiskCache(DiskCacheConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) return;
  open();
  if (opened_.load(std::memory_order_relaxed) && config_.writeBehind) {
    writer_ = std::thread([this] { writerLoop(); });
  }
}

DiskCache::~DiskCache() {
  if (writer_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(queueMutex_);
      stopping_ = true;  // writerLoop drains the queue before exiting
    }
    queueCv_.notify_all();
    writer_.join();
  }
}

bool DiskCache::enabled() const {
  return opened_.load(std::memory_order_relaxed) &&
         !degraded_.load(std::memory_order_relaxed);
}

void DiskCache::open() {
  const trace::TraceSpan span("disk_cache.open");
  try {
    if (fault::shouldFail("disk_cache.open")) {
      throw Error("injected fault: disk_cache.open");
    }
    fs::create_directories(config_.dir);

    // Index existing entries by mtime; sweep crash leftovers (temp files
    // from interrupted writes) and prior quarantined entries.
    struct Found {
      fs::file_time_type mtime;
      std::string name;
      std::size_t size = 0;
    };
    std::vector<Found> found;
    for (const auto& entry : fs::directory_iterator(config_.dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.find(".tmp") != std::string::npos ||
          (name.size() > 2 && name.compare(name.size() - 2, 2, ".q") == 0)) {
        std::error_code ec;
        fs::remove(entry.path(), ec);
        continue;
      }
      if (name.size() > 2 && name.compare(name.size() - 2, 2, ".e") == 0) {
        found.push_back({entry.last_write_time(), name,
                         static_cast<std::size_t>(entry.file_size())});
      }
    }
    std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
      return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
    });

    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Found& f : found) {
      index_[f.name] = IndexEntry{f.size, ++seq_};
      stats_.bytes += f.size;
    }
    evictToBudgetLocked();
    opened_.store(true, std::memory_order_relaxed);
  } catch (...) {
    // Unusable store directory: open disabled. Serving continues without
    // the disk tier; stats().enabled tells the story.
    opened_.store(false, std::memory_order_relaxed);
  }
}

void DiskCache::evictToBudgetLocked() {
  if (config_.budgetBytes == 0) return;
  // Keep at least the most recent entry: a single artifact larger than
  // the whole budget still serves its own restarts.
  while (stats_.bytes > config_.budgetBytes && index_.size() > 1) {
    auto victim = index_.begin();
    for (auto it = std::next(index_.begin()); it != index_.end(); ++it) {
      if (it->second.seq < victim->second.seq) victim = it;
    }
    std::error_code ec;
    fs::remove(config_.dir / victim->first, ec);
    stats_.bytes -= std::min(stats_.bytes, victim->second.size);
    index_.erase(victim);
    ++stats_.evictions;
  }
}

void DiskCache::noteIoFailure() {
  const int failures =
      consecutiveFailures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.degradeAfterFailures > 0 &&
      failures >= config_.degradeAfterFailures) {
    degraded_.store(true, std::memory_order_relaxed);
  }
}

void DiskCache::noteIoSuccess() {
  consecutiveFailures_.store(0, std::memory_order_relaxed);
}

void DiskCache::quarantine(const fs::path& path, const std::string& name) {
  std::error_code ec;
  bool renamed = false;
  if (!fault::shouldFail("disk_cache.rename")) {
    fs::rename(path, fs::path(path) += ".q", ec);
    renamed = !ec;
  }
  if (!renamed) fs::remove(path, ec);  // neutralize it either way
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    stats_.bytes -= std::min(stats_.bytes, it->second.size);
    index_.erase(it);
  }
  ++stats_.corrupt;
  if (renamed) ++stats_.quarantined;
}

std::optional<std::string> DiskCache::get(std::string_view ns,
                                          const StructuralHash& key,
                                          diag::DiagnosticSink* sink) {
  if (!enabled()) return std::nullopt;
  const std::string name = entryFileName(ns, key);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (index_.find(name) == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
  }
  const fs::path path = config_.dir / name;
  const trace::TraceSpan span("disk_cache.read");

  std::string bytes;
  bool read = false;
  bool sawIoError = false;
  for (int attempt = 0; attempt <= config_.maxIoRetries; ++attempt) {
    if (attempt > 0) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.retries;
    }
    if (attempt > 0 && config_.retryBackoffMicros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          config_.retryBackoffMicros << (attempt - 1)));
    }
    if (fault::shouldFail("disk_cache.read")) {
      sawIoError = true;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      // Most likely evicted or replaced under us: a plain miss, not an IO
      // fault worth degrading over.
      const std::lock_guard<std::mutex> lock(mutex_);
      index_.erase(name);
      ++stats_.misses;
      return std::nullopt;
    }
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad()) {
      sawIoError = true;
      continue;
    }
    bytes = std::move(data);
    read = true;
    break;
  }
  if (!read) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.readFailures;
      ++stats_.misses;
    }
    if (sawIoError) noteIoFailure();
    if (sink != nullptr) {
      sink->warning(diag::codes::kCacheIo, path.string(), 0,
                    "disk cache read failed; recomputing");
    }
    // Rate-limited operator visibility: an IO-failure storm (dying disk)
    // emits a bounded number of lines plus a suppression summary, never
    // one line per failed read (docs/observability.md).
    log::log(log::Level::kWarn, diag::codes::kCacheIo,
             "disk cache read failed; recomputing",
             {log::Field("path", path.string())});
    return std::nullopt;
  }

  std::string payload;
  const ReadVerdict verdict = decodeEntry(bytes, &payload);
  if (verdict != ReadVerdict::kOk) {
    quarantine(path, name);
    if (sink != nullptr) {
      if (verdict == ReadVerdict::kVersionMismatch) {
        sink->warning(diag::codes::kCacheVersion, path.string(), 0,
                      "disk cache entry has an unsupported format version; "
                      "quarantined and recomputing");
      } else {
        sink->warning(diag::codes::kCacheCorrupt, path.string(), 0,
                      "disk cache entry corrupt (bad magic, length, or "
                      "checksum); quarantined and recomputing");
      }
    }
    // Same rate-limited visibility as the IO-failure path above: a
    // corrupted store surfaces as a bounded warning stream.
    log::log(log::Level::kWarn,
             verdict == ReadVerdict::kVersionMismatch
                 ? diag::codes::kCacheVersion
                 : diag::codes::kCacheCorrupt,
             "disk cache entry quarantined; recomputing",
             {log::Field("path", path.string())});
    return std::nullopt;
  }

  noteIoSuccess();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.hits;
  const auto it = index_.find(name);
  if (it != index_.end()) it->second.seq = ++seq_;
  return payload;
}

void DiskCache::put(std::string_view ns, const StructuralHash& key,
                    std::string payload) {
  if (!enabled()) return;
  const std::string name = entryFileName(ns, key);
  std::string bytes = encodeEntry(payload);
  if (!config_.writeBehind) {
    writeEntry(name, bytes);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(queueMutex_);
    if (stopping_ || queue_.size() >= kMaxQueuedWrites) {
      const std::lock_guard<std::mutex> statsLock(mutex_);
      ++stats_.droppedWrites;
      return;
    }
    queue_.emplace_back(name, std::move(bytes));
  }
  queueCv_.notify_one();
}

bool DiskCache::writeEntry(const std::string& name,
                           const std::string& bytes) {
  const trace::TraceSpan span("disk_cache.write");
  const fs::path target = config_.dir / name;
  for (int attempt = 0; attempt <= config_.maxIoRetries; ++attempt) {
    if (attempt > 0) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.retries;
    }
    if (attempt > 0 && config_.retryBackoffMicros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          config_.retryBackoffMicros << (attempt - 1)));
    }
    std::uint64_t tmpId;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      tmpId = ++tmpSeq_;
    }
    const fs::path tmp =
        config_.dir / (name + ".tmp" + std::to_string(tmpId));
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) continue;
      if (fault::shouldFail("disk_cache.write")) {
        // Simulated ENOSPC / crash mid-write: half the bytes land in the
        // temp file and nothing is renamed — exactly the torn state the
        // atomic-rename protocol must make invisible to readers.
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
        continue;
      }
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      out.flush();
      if (!out.good()) {
        out.close();
        std::error_code ec;
        fs::remove(tmp, ec);
        continue;
      }
    }
    std::error_code ec;
    if (fault::shouldFail("disk_cache.rename")) {
      fs::remove(tmp, ec);
      continue;
    }
    fs::rename(tmp, target, ec);
    if (ec) {
      fs::remove(tmp, ec);
      continue;
    }
    noteIoSuccess();
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.writes;
    const auto it = index_.find(name);
    if (it != index_.end()) {
      stats_.bytes -= std::min(stats_.bytes, it->second.size);
      it->second.size = bytes.size();
      it->second.seq = ++seq_;
    } else {
      index_[name] = IndexEntry{bytes.size(), ++seq_};
    }
    stats_.bytes += bytes.size();
    evictToBudgetLocked();
    return true;
  }
  noteIoFailure();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writeFailures;
  return false;
}

void DiskCache::writerLoop() {
  std::unique_lock<std::mutex> lock(queueMutex_);
  for (;;) {
    queueCv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    auto [name, bytes] = std::move(queue_.front());
    queue_.pop_front();
    writerBusy_ = true;
    lock.unlock();
    if (enabled()) writeEntry(name, bytes);
    lock.lock();
    writerBusy_ = false;
    if (queue_.empty()) idleCv_.notify_all();
  }
}

void DiskCache::flush() {
  if (!writer_.joinable()) return;
  std::unique_lock<std::mutex> lock(queueMutex_);
  idleCv_.wait(lock, [this] { return queue_.empty() && !writerBusy_; });
}

DiskCacheStats DiskCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  DiskCacheStats out = stats_;
  out.entries = index_.size();
  out.enabled = enabled();
  out.degraded = degraded_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ancstr::util
