// GED baseline (Kunal et al., ICCAD 2020, paper reference [21] — Table I):
// hierarchical symmetry annotation by estimating the graph edit distance
// between candidate subcircuits.
//
// The original trains a supervised GNN to predict GED; since that needs
// the labels the paper's method exists to avoid, we implement the
// standard *bipartite GED approximation* it builds on: a Hungarian
// assignment between the two subcircuits' devices with per-device costs
// (type mismatch, sizing distance, typed-degree distance) plus
// insertion/deletion costs for the size difference. Similarity is the
// normalised complement of the assignment cost.
#pragma once

#include <vector>

#include "core/detector.h"
#include "netlist/flatten.h"

namespace ancstr::ged {

struct GedConfig {
  /// Cost of inserting/deleting one device.
  double insertDeleteCost = 1.0;
  /// Cost of matching devices of different types.
  double typeMismatchCost = 1.0;
  /// Weight of the per-edge-type degree difference.
  double degreeWeight = 0.1;
  /// Weight of the sizing disagreement (1 - sizeSimilarity).
  double sizingWeight = 0.5;
  /// Accept when normalised similarity exceeds this.
  double threshold = 0.90;
};

struct GedResult {
  std::vector<ScoredCandidate> scored;  ///< system-level candidates
  double seconds = 0.0;
};

/// Normalised GED similarity between two subcircuits in [0, 1]
/// (1 = zero-cost assignment, i.e. structurally identical).
double subcircuitGedSimilarity(const FlatDesign& design, HierNodeId a,
                               HierNodeId b, const GedConfig& config = {});

/// Runs the GED baseline over all system-level candidates.
GedResult detectSystemConstraints(const FlatDesign& design, const Library& lib,
                                  const GedConfig& config = {});

}  // namespace ancstr::ged
