#include "core/model_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/diagnostics.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/metrics.h"

namespace ancstr {
namespace {

constexpr const char* kMagic = "ancstr-gnn-model";
// v1: featureDim hiddenDim numLayers sharedWeights
// v2: + meanAggregation
constexpr int kVersion = 2;

// All model-IO failures carry a bracketed diagnostic code
// (docs/robustness.md) and bump the io.model_failures counter.
[[noreturn]] void fail(const std::string& message, std::string_view code) {
  static metrics::Counter& failures =
      metrics::Registry::instance().counter("io.model_failures");
  failures.add();
  throw Error(message + " [" + std::string(code) + "]");
}

}  // namespace

void saveModel(const GnnModel& model, std::ostream& os) {
  const GnnConfig& c = model.config();
  os << kMagic << ' ' << kVersion << '\n';
  os << c.featureDim << ' ' << c.hiddenDim << ' ' << c.numLayers << ' '
     << (c.sharedWeights ? 1 : 0) << ' ' << (c.meanAggregation ? 1 : 0)
     << '\n';
  os << std::setprecision(17);
  const auto params = model.parameters();
  os << params.size() << '\n';
  for (const nn::Tensor& p : params) {
    const nn::Matrix& m = p.value();
    os << m.rows() << ' ' << m.cols();
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t col = 0; col < m.cols(); ++col) {
        // Refuse to serialise garbage: a "nan" token would not even read
        // back (stream extraction rejects it), so fail loudly at save time.
        if (!std::isfinite(m(r, col))) {
          fail("saveModel: non-finite parameter value",
               diag::codes::kIoNonFinite);
        }
        os << ' ' << m(r, col);
      }
    }
    os << '\n';
  }
}

void saveModelFile(const GnnModel& model,
                   const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    fail("saveModel: cannot open '" + path.string() + "'",
         diag::codes::kIoFailure);
  }
  saveModel(model, out);
  if (!out) {
    fail("saveModel: write failure on '" + path.string() + "'",
         diag::codes::kIoFailure);
  }
}

GnnModel loadModel(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) {
    fail("loadModel: not an ancstr model file", diag::codes::kIoFormat);
  }
  if (version != 1 && version != kVersion) {
    fail("loadModel: unsupported version " + std::to_string(version),
         diag::codes::kIoFormat);
  }
  GnnConfig config;
  int shared = 0;
  if (!(is >> config.featureDim >> config.hiddenDim >> config.numLayers >>
        shared)) {
    fail("loadModel: truncated config", diag::codes::kIoTruncated);
  }
  config.sharedWeights = shared != 0;
  if (version >= 2) {
    int mean = 0;
    if (!(is >> mean)) {
      fail("loadModel: truncated config (v2)", diag::codes::kIoTruncated);
    }
    config.meanAggregation = mean != 0;
  }

  // The RNG only seeds initial weights, which we immediately overwrite.
  Rng rng(0);
  GnnModel model(config, rng);
  auto params = model.parameters();

  std::size_t count = 0;
  if (!(is >> count) || count != params.size()) {
    fail("loadModel: parameter count mismatch", diag::codes::kIoFormat);
  }
  std::size_t index = 0;
  for (nn::Tensor& p : params) {
    std::size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols) || rows != p.rows() || cols != p.cols()) {
      fail("loadModel: parameter shape mismatch", diag::codes::kIoFormat);
    }
    nn::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (!(is >> m(r, c))) {
          fail("loadModel: truncated matrix data", diag::codes::kIoTruncated);
        }
      }
    }
    if (rows > 0 && cols > 0) {
      m(0, 0) = fault::corruptDouble("model_io.value", m(0, 0));
    }
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (!std::isfinite(m(r, c))) {
          fail("loadModel: non-finite value in parameter " +
                   std::to_string(index),
               diag::codes::kIoNonFinite);
        }
      }
    }
    p.setValue(std::move(m));
    ++index;
  }
  return model;
}

GnnModel loadModelFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in || fault::shouldFail("model_io.open")) {
    fail("loadModel: cannot open '" + path.string() + "'",
         diag::codes::kIoFailure);
  }
  if (fault::enabled()) {
    // Route the bytes through the fault harness so tests can truncate the
    // stream mid-file without touching the disk copy.
    std::ostringstream buf;
    buf << in.rdbuf();
    std::istringstream faulted(
        fault::corruptText("model_io.read", buf.str()));
    return loadModel(faulted);
  }
  return loadModel(in);
}

}  // namespace ancstr
