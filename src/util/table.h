// Fixed-width console table and CSV writers used by the bench harnesses to
// print paper-style result tables (Tables V/VI) and ROC point series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ancstr {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row; column count is fixed from here on.
  void setHeader(std::vector<std::string> header);

  /// Appends a data row. Must match the header arity.
  void addRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders with column alignment and `|` delimiters.
  std::string render() const;

  /// Convenience: render() to the stream.
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Writes rows as RFC-4180-ish CSV (quotes fields containing commas/quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void writeRow(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Formats a double as a fixed 3-decimal metric cell ("0.952").
std::string metricCell(double v);

}  // namespace ancstr
