// Kernel dispatch, the scalar backend, and the fused GRU step.
//
// This TU is compiled for the baseline target (plus -ffp-contract=off like
// the SIMD backend TUs), so the scalar table and the shared elementwise
// half of the fused GRU step can never pick up ISA-specific code. CPUID
// detection uses __builtin_cpu_supports, which is independent of the
// flags this TU is compiled with.
#include "nn/kernels.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace ancstr::nn {

namespace {

using kdetail::KernelOps;

void gemmAccScalar(const double* a, const double* b, double* c, std::size_t m,
                   std::size_t k, std::size_t n) {
  kdetail::gemmAccRef(a, b, c, m, k, n);
}

void gemmBatchAccScalar(const double* a, const double* const* bs,
                        double* const* cs, std::size_t count, std::size_t m,
                        std::size_t k, std::size_t n) {
  kdetail::gemmBatchAccRef(a, bs, cs, count, m, k, n);
}

void gemvScalar(const double* a, const double* x, double* y, std::size_t m,
                std::size_t n) {
  kdetail::gemvRef(a, x, y, m, n);
}

void axpyScalar(double* y, const double* x, double s, std::size_t n) {
  kdetail::axpyRef(y, x, s, n);
}

/// The fused GRU step with the gemms injected, so every backend shares one
/// compiled copy of the elementwise half (baseline target) and is bitwise
/// identical to the tape path by construction: each intermediate below is
/// rounded exactly like the corresponding tensor op in nn/gru.h forward().
void fusedGruStepWith(kdetail::GemmFn gemm, const GruStepParams& p,
                      const double* x, const double* h, double* hOut,
                      std::size_t rows, double* scratch) {
  const std::size_t hd = p.hiddenDim;
  const std::size_t nh = rows * hd;
  double* bufA = scratch;           // x W, then the candidate state c
  double* bufB = scratch + nh;      // h U
  double* bufZ = scratch + 2 * nh;  // update gate z
  double* bufR = scratch + 3 * nh;  // reset gate r, then r . h
  // pre-activation = (x W + h U) + bias, matching
  // addRow(add(matmul(x, W), matmul(hs, U)), bias) term by term.
  const auto gate = [&](const double* w, const double* u, const double* hs,
                        std::size_t hsCols, const double* bias, double* out,
                        bool isTanh) {
    for (std::size_t idx = 0; idx < nh; ++idx) bufA[idx] = 0.0;
    gemm(x, w, bufA, rows, p.inputDim, hd);
    for (std::size_t idx = 0; idx < nh; ++idx) bufB[idx] = 0.0;
    gemm(hs, u, bufB, rows, hsCols, hd);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t cIdx = 0; cIdx < hd; ++cIdx) {
        const std::size_t idx = r * hd + cIdx;
        const double pre = (bufA[idx] + bufB[idx]) + bias[cIdx];
        out[idx] = isTanh ? std::tanh(pre) : kdetail::stableSigmoid(pre);
      }
    }
  };
  gate(p.wz, p.uz, h, hd, p.bz, bufZ, /*isTanh=*/false);
  gate(p.wr, p.ur, h, hd, p.br, bufR, /*isTanh=*/false);
  for (std::size_t idx = 0; idx < nh; ++idx) bufR[idx] = bufR[idx] * h[idx];
  gate(p.wc, p.uc, bufR, hd, p.bc, bufA, /*isTanh=*/true);
  // h' = (1 - z) . h + z . c, rounded like
  // add(hadamard(oneMinus(z), h), hadamard(z, c)).
  for (std::size_t idx = 0; idx < nh; ++idx) {
    hOut[idx] = ((1.0 - bufZ[idx]) * h[idx]) + (bufZ[idx] * bufA[idx]);
  }
}

void fusedGruStepScalar(const GruStepParams& p, const double* x,
                        const double* h, double* hOut, std::size_t rows,
                        double* scratch) {
  fusedGruStepWith(kdetail::scalarOps()->gemmAcc, p, x, h, hOut, rows,
                   scratch);
}

void fusedGruStepAvx2(const GruStepParams& p, const double* x,
                      const double* h, double* hOut, std::size_t rows,
                      double* scratch) {
  fusedGruStepWith(kdetail::avx2Ops()->gemmAcc, p, x, h, hOut, rows, scratch);
}

void fusedGruStepAvx512(const GruStepParams& p, const double* x,
                        const double* h, double* hOut, std::size_t rows,
                        double* scratch) {
  fusedGruStepWith(kdetail::avx512Ops()->gemmAcc, p, x, h, hOut, rows,
                   scratch);
}

bool cpuSupports(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return true;
    case KernelKind::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelKind::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
    case KernelKind::kAuto:
      break;
  }
  return false;
}

/// The complete immutable table for an available backend.
const Kernels* tableFor(KernelKind kind) {
  static const Kernels scalarTable = [] {
    Kernels t;
    t.kind = KernelKind::kScalar;
    const KernelOps* ops = kdetail::scalarOps();
    t.gemmAcc = ops->gemmAcc;
    t.gemmBatchAcc = ops->gemmBatchAcc;
    t.gemv = ops->gemv;
    t.axpy = ops->axpy;
    t.fusedGruStep = fusedGruStepScalar;
    return t;
  }();
  if (kind == KernelKind::kScalar) return &scalarTable;
  if (kind == KernelKind::kAvx2 && kdetail::avx2Ops() != nullptr) {
    static const Kernels avx2Table = [] {
      Kernels t;
      t.kind = KernelKind::kAvx2;
      const KernelOps* ops = kdetail::avx2Ops();
      t.gemmAcc = ops->gemmAcc;
      t.gemmBatchAcc = ops->gemmBatchAcc;
      t.gemv = ops->gemv;
      t.axpy = ops->axpy;
      t.fusedGruStep = fusedGruStepAvx2;
      return t;
    }();
    return &avx2Table;
  }
  if (kind == KernelKind::kAvx512 && kdetail::avx512Ops() != nullptr) {
    static const Kernels avx512Table = [] {
      Kernels t;
      t.kind = KernelKind::kAvx512;
      const KernelOps* ops = kdetail::avx512Ops();
      t.gemmAcc = ops->gemmAcc;
      t.gemmBatchAcc = ops->gemmBatchAcc;
      t.gemv = ops->gemv;
      t.axpy = ops->axpy;
      t.fusedGruStep = fusedGruStepAvx512;
      return t;
    }();
    return &avx512Table;
  }
  return nullptr;
}

KernelKind bestAvailable() {
  if (kernelAvailable(KernelKind::kAvx512)) return KernelKind::kAvx512;
  if (kernelAvailable(KernelKind::kAvx2)) return KernelKind::kAvx2;
  return KernelKind::kScalar;
}

std::atomic<const Kernels*> g_active{nullptr};

/// Publishes nn.kernel_info{dispatch=...,compiled=...} = 1 for the active
/// dispatch (Prometheus info-metric style: a re-dispatch zeroes the prior
/// label variant and raises the new one). Registered with
/// metrics::publishProcessMetrics on first dispatch, so the CLI/engine
/// metric emitters refresh it alongside process.build_info.
void publishKernelInfo() {
  static std::mutex mutex;
  static metrics::Gauge* last = nullptr;
  const std::lock_guard<std::mutex> lock(mutex);
  metrics::Gauge& info = metrics::Registry::instance().gauge(
      std::string("nn.kernel_info{dispatch=\"") +
      metrics::escapeLabelValue(activeKernelName()) + "\",compiled=\"" +
      metrics::escapeLabelValue(compiledKernelsString()) + "\"}");
  if (last != nullptr && last != &info) last->set(0.0);
  info.set(1.0);
  last = &info;
}

/// One-time registration hook; invoked after every dispatch change.
void registerKernelInfo() {
  static const bool registered = [] {
    metrics::registerProcessMetricsPublisher(&publishKernelInfo);
    return true;
  }();
  (void)registered;
  publishKernelInfo();
}

}  // namespace

const char* kernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return "auto";
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kAvx512:
      return "avx512";
  }
  return "scalar";
}

std::optional<KernelKind> parseKernelKind(std::string_view name) {
  if (name == "auto") return KernelKind::kAuto;
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "avx2") return KernelKind::kAvx2;
  if (name == "avx512") return KernelKind::kAvx512;
  return std::nullopt;
}

bool kernelCompiled(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return true;
    case KernelKind::kAvx2:
      return kdetail::avx2Ops() != nullptr;
    case KernelKind::kAvx512:
      return kdetail::avx512Ops() != nullptr;
    case KernelKind::kAuto:
      break;
  }
  return false;
}

bool kernelAvailable(KernelKind kind) {
  return kernelCompiled(kind) && cpuSupports(kind);
}

std::vector<KernelKind> compiledKernels() {
  std::vector<KernelKind> kinds{KernelKind::kScalar};
  if (kernelCompiled(KernelKind::kAvx2)) kinds.push_back(KernelKind::kAvx2);
  if (kernelCompiled(KernelKind::kAvx512)) {
    kinds.push_back(KernelKind::kAvx512);
  }
  return kinds;
}

std::string compiledKernelsString() {
  std::string out;
  for (const KernelKind kind : compiledKernels()) {
    if (!out.empty()) out += ',';
    out += kernelName(kind);
  }
  return out;
}

KernelKind resolveKernel(KernelKind requested) {
  if (const char* env = std::getenv("ANCSTR_KERNEL")) {
    if (const auto parsed = parseKernelKind(env)) {
      requested = *parsed;
    } else {
      log::warn() << "ANCSTR_KERNEL=" << env
                  << " is not auto|scalar|avx2|avx512; ignoring";
    }
  }
  if (requested == KernelKind::kAuto) return bestAvailable();
  if (kernelAvailable(requested)) return requested;
  const KernelKind fallback = bestAvailable();
  log::warn() << "kernel " << kernelName(requested)
              << (kernelCompiled(requested) ? " not supported by this CPU"
                                            : " not compiled into this binary")
              << "; falling back to " << kernelName(fallback);
  return fallback;
}

KernelKind selectKernel(KernelKind requested) {
  const KernelKind resolved = resolveKernel(requested);
  g_active.store(tableFor(resolved), std::memory_order_release);
  registerKernelInfo();
  return resolved;
}

const Kernels& activeKernels() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = tableFor(resolveKernel(KernelKind::kAuto));
    // A concurrent first use resolves to the same table; last write wins
    // and both writes are identical.
    g_active.store(table, std::memory_order_release);
    registerKernelInfo();
  }
  return *table;
}

KernelKind activeKernelKind() { return activeKernels().kind; }

const char* activeKernelName() { return kernelName(activeKernelKind()); }

const Kernels& kernelsFor(KernelKind kind) {
  const Kernels* table = kernelAvailable(kind) ? tableFor(kind) : nullptr;
  if (table == nullptr) {
    throw Error(std::string("kernelsFor: ") + kernelName(kind) +
                " is not available on this machine");
  }
  return *table;
}

namespace kdetail {

const KernelOps* scalarOps() {
  static const KernelOps ops{gemmAccScalar, gemmBatchAccScalar, gemvScalar,
                             axpyScalar};
  return &ops;
}

}  // namespace kdetail

}  // namespace ancstr::nn
