#!/usr/bin/env python3
"""Compile every public header standalone.

A header that only builds after its includer happened to pull in the
right things first is a latent break for every new call site. This
check wraps each header under src/ in a one-line translation unit and
runs the compiler in syntax-only mode, so include-order dependencies
and missing forward declarations surface in CI instead of downstream.

Usage: check_headers.py [--compiler CXX] [--src DIR] [--jobs N] [header...]
Exit codes: 0 all headers self-contained, 1 at least one failure,
2 usage/environment error.
"""

import argparse
import concurrent.futures
import os
import subprocess
import sys
import tempfile

FLAGS = ["-std=c++20", "-fsyntax-only", "-Wall", "-Wextra", "-x", "c++"]


def find_headers(src_dir):
    headers = []
    for root, _dirs, files in os.walk(src_dir):
        for name in sorted(files):
            if name.endswith(".h"):
                headers.append(os.path.join(root, name))
    return sorted(headers)


def check_header(compiler, src_dir, header):
    """Returns (header, ok, compiler output)."""
    rel = os.path.relpath(header, src_dir)
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".cpp", delete=False) as tu:
        tu.write(f'#include "{rel}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, *FLAGS, f"-I{src_dir}", tu_path],
            capture_output=True, text=True)
        return rel, proc.returncode == 0, proc.stderr.strip()
    finally:
        os.unlink(tu_path)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    parser.add_argument("--src", default=None,
                        help="source root (default: <repo>/src)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("headers", nargs="*",
                        help="specific headers (default: all under --src)")
    args = parser.parse_args(argv)

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_dir = os.path.abspath(args.src or os.path.join(repo, "src"))
    if not os.path.isdir(src_dir):
        print(f"error: no such source dir: {src_dir}", file=sys.stderr)
        return 2

    headers = [os.path.abspath(h) for h in args.headers] or \
        find_headers(src_dir)
    if not headers:
        print(f"error: no headers found under {src_dir}", file=sys.stderr)
        return 2

    failures = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        results = pool.map(
            lambda h: check_header(args.compiler, src_dir, h), headers)
        for rel, ok, output in results:
            if ok:
                print(f"ok   {rel}")
            else:
                print(f"FAIL {rel}")
                failures.append((rel, output))

    if failures:
        print(f"\n{len(failures)}/{len(headers)} headers are not "
              "self-contained:", file=sys.stderr)
        for rel, output in failures:
            print(f"\n--- {rel} ---\n{output}", file=sys.stderr)
        return 1
    print(f"\nall {len(headers)} headers compile standalone")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
