// String helpers shared by the SPICE parser and report writers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ancstr::str {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Lower-cases ASCII characters (SPICE is case-insensitive).
std::string toLower(std::string_view s);

/// True if `s` starts with `prefix` (case-sensitive).
bool startsWith(std::string_view s, std::string_view prefix);

/// Splits on any of the characters in `delims`, dropping empty tokens.
std::vector<std::string> splitTokens(std::string_view s,
                                     std::string_view delims = " \t\r\n");

/// Splits `s` on the first occurrence of `sep`; returns {s, ""} if absent.
std::pair<std::string_view, std::string_view> splitFirst(std::string_view s,
                                                         char sep);

/// Parses a SPICE-style number with optional engineering suffix:
///   1.5k -> 1500, 10u -> 1e-5, 3n, 2p, 5f, 4meg, 7x (=meg), 2m (milli), 1g, 1t.
/// Trailing unit garbage after the suffix (e.g. "10uF") is tolerated.
/// Returns nullopt when no leading numeric value can be parsed.
std::optional<double> parseSpiceNumber(std::string_view s);

/// Formats a double with `digits` significant digits, trimming zeros.
std::string formatCompact(double value, int digits = 6);

}  // namespace ancstr::str
