// End-to-end facade over the full flow of Fig. 4: multigraph construction,
// feature init, unsupervised GNN training, circuit embedding, and
// constraint detection. Train once on a corpus, then extract constraints
// from any circuit (the model is inductive).
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "core/detector.h"
#include "core/features.h"
#include "core/trainer.h"
#include "util/report.h"

namespace ancstr {

struct PipelineConfig {
  FeatureConfig features;
  GraphBuildOptions graph;
  GnnConfig model;
  TrainConfig train;
  DetectorConfig detector;
  std::uint64_t seed = 42;
  /// Worker count applied to both training (per-batch graph fan-out) and
  /// detection (block embedding + pair scoring) — the single threading knob
  /// for pipeline runs. 0 = hardware_concurrency, 1 = serial; the
  /// ANCSTR_THREADS environment variable overrides. ExtractionResult and
  /// trained weights are bitwise identical for every value — parallelism
  /// here only changes wall-clock time.
  std::size_t threads = 1;

  PipelineConfig() {
    model.featureDim = features.dims();
    // Supply/clock hub nets expand into huge cliques under Algorithm 1,
    // which (a) costs |net|^2 edges and (b) makes every rail-connected
    // device 1-hop adjacent to every other, collapsing their embeddings.
    // Production default: skip nets beyond this degree (0 = paper-literal
    // full cliques; see GraphBuildOptions).
    graph.maxNetDegree = 64;
  }
};

/// Wall-clock breakdown of one extraction (Tables V/VI runtime columns
/// exclude training, matching the paper's footnote). Thin view derived
/// from ExtractionResult::report — kept for callers that only want the
/// three classic numbers.
struct ExtractTiming {
  double graphBuildSeconds = 0.0;
  double inferenceSeconds = 0.0;
  double detectionSeconds = 0.0;

  double total() const {
    return graphBuildSeconds + inferenceSeconds + detectionSeconds;
  }
};

/// Extraction output: scored candidates + accepted constraints + the run
/// report (per-phase wall-clock and the metrics delta for this call).
struct ExtractionResult {
  DetectionResult detection;
  RunReport report;
  /// Trained per-device embeddings (row = FlatDeviceId) — input for
  /// downstream analyses such as array-group detection (core/arrays.h).
  nn::Matrix embeddings;

  /// Classic three-phase breakdown, derived from `report`.
  ExtractTiming timing() const {
    return ExtractTiming{report.phaseSeconds("extract.graph_build"),
                         report.phaseSeconds("extract.inference"),
                         report.phaseSeconds("extract.detection")};
  }
};

/// Training output: per-epoch losses plus the run report. TrainStats is
/// the legacy view, derivable via stats().
struct TrainReport {
  RunReport report;
  std::vector<double> epochLoss;  ///< mean loss per epoch, in order

  double finalLoss() const {
    return epochLoss.empty() ? 0.0 : epochLoss.back();
  }

  TrainStats stats() const {
    return TrainStats{epochLoss, report.phaseSeconds("train.loop")};
  }
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {});

  /// Trains the GNN on the given circuits (unsupervised; no labels).
  TrainReport train(const std::vector<const Library*>& corpus);

  /// True once train() or loadModel() has run.
  bool isTrained() const { return model_ != nullptr; }

  /// Extracts symmetry constraints from one circuit.
  ExtractionResult extract(const Library& lib) const;

  /// Fail-soft extraction (docs/robustness.md). With a collect-mode sink,
  /// invalid constructs degrade instead of aborting the run: unresolvable
  /// subcircuit instances are skipped during elaboration
  /// ([pipeline.subckt_skipped]) and a failure of any later phase
  /// degrades to an empty result ([pipeline.extract_degraded]) rather
  /// than throwing. All diagnostics produced during the call are copied
  /// into result.report.diagnostics. With a strict sink this is exactly
  /// extract(lib). Calling before train()/loadModel() still throws — that
  /// is a caller bug, not corrupt input.
  ExtractionResult extract(const Library& lib,
                           diag::DiagnosticSink& sink) const;

  const GnnModel& model() const;
  const PipelineConfig& config() const { return config_; }

  void saveModel(const std::filesystem::path& path) const;
  void loadModel(const std::filesystem::path& path);

 private:
  PreparedGraph prepare(const Library& lib, const FlatDesign& design) const;
  void runExtractPhases(const Library& lib, const FlatDesign& design,
                        ExtractionResult& result) const;

  PipelineConfig config_;
  std::unique_ptr<GnnModel> model_;
};

}  // namespace ancstr
