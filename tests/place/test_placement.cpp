#include "place/placement.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"

namespace ancstr::place {
namespace {

FlatDesign diffPairDesign() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.res("r1", "op", "vdd", 1e3);
  b.res("r2", "on", "vdd", 1e3);
  b.cap("c1", "op", "vss", 2e-14);
  b.cap("c2", "on", "vss", 2e-14);
  b.endSubckt();
  return FlatDesign::elaborate(b.build("cell"));
}

TEST(PlacementProblem, CellsHavePositiveFootprints) {
  const FlatDesign design = diffPairDesign();
  const PlacementProblem problem = buildPlacementProblem(design, 0);
  ASSERT_EQ(problem.cells.size(), 7u);
  for (const Cell& cell : problem.cells) {
    EXPECT_GT(cell.w, 0.0) << cell.name;
    EXPECT_GT(cell.h, 0.0) << cell.name;
  }
}

TEST(PlacementProblem, MatchedDevicesGetEqualFootprints) {
  const FlatDesign design = diffPairDesign();
  const PlacementProblem problem = buildPlacementProblem(design, 0);
  auto footprint = [&](const std::string& name) {
    for (const Cell& cell : problem.cells) {
      if (cell.name == name) return std::pair{cell.w, cell.h};
    }
    return std::pair{-1.0, -1.0};
  };
  EXPECT_EQ(footprint("m1"), footprint("m2"));
  EXPECT_EQ(footprint("r1"), footprint("r2"));
  EXPECT_EQ(footprint("c1"), footprint("c2"));
}

TEST(PlacementProblem, NetsDedupedAndMultiPin) {
  const FlatDesign design = diffPairDesign();
  const PlacementProblem problem = buildPlacementProblem(design, 0);
  EXPECT_GT(problem.nets.size(), 0u);
  for (const auto& net : problem.nets) {
    EXPECT_GE(net.size(), 2u);
    for (std::size_t i = 1; i < net.size(); ++i) {
      EXPECT_LT(net[i - 1], net[i]);  // sorted unique
    }
  }
}

TEST(PlacementProblem, RailNetsSkipped) {
  const FlatDesign design = diffPairDesign();
  const PlacementProblem loose = buildPlacementProblem(design, 0, 16);
  const PlacementProblem tight = buildPlacementProblem(design, 0, 2);
  EXPECT_GE(loose.nets.size(), tight.nets.size());
}

TEST(Metrics, WirelengthOfKnownLayout) {
  PlacementProblem problem;
  problem.cells = {{"a", 0, 1, 1}, {"b", 1, 1, 1}};
  problem.nets = {{0, 1}};
  PlacementSolution solution;
  solution.rects = {{0, 0, 1, 1}, {3, 4, 1, 1}};
  EXPECT_DOUBLE_EQ(wirelength(problem, solution), 7.0);
  EXPECT_DOUBLE_EQ(totalOverlap(solution), 0.0);
}

TEST(Metrics, SymmetryViolationZeroForMirroredPair) {
  PlacementProblem problem;
  problem.cells = {{"l", 0, 2, 2}, {"r", 1, 2, 2}};
  problem.symmetricPairs = {{0, 1}};
  PlacementSolution solution;
  solution.symmetryAxis = 0.0;
  solution.rects = {{-5, 1, 2, 2}, {3, 1, 2, 2}};  // centres -4 and 4
  EXPECT_DOUBLE_EQ(symmetryViolation(problem, solution), 0.0);
}

TEST(Metrics, SymmetryViolationGrowsWithOffset) {
  PlacementProblem problem;
  problem.cells = {{"l", 0, 2, 2}, {"r", 1, 2, 2}};
  problem.symmetricPairs = {{0, 1}};
  PlacementSolution solution;
  solution.symmetryAxis = 0.0;
  solution.rects = {{-5, 1, 2, 2}, {3, 3, 2, 2}};  // y offset by 2
  const double small = symmetryViolation(problem, solution);
  solution.rects[1].y = 9.0;
  const double large = symmetryViolation(problem, solution);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

TEST(Metrics, SelfSymmetricCentering) {
  PlacementProblem problem;
  problem.cells = {{"t", 0, 2, 2}};
  problem.selfSymmetric = {0};
  PlacementSolution solution;
  solution.symmetryAxis = 0.0;
  solution.rects = {{-1, 0, 2, 2}};  // centred
  EXPECT_DOUBLE_EQ(symmetryViolation(problem, solution), 0.0);
  solution.rects[0].x = 4.0;
  EXPECT_GT(symmetryViolation(problem, solution), 0.0);
}

TEST(Metrics, NoConstraintsGiveZeroViolation) {
  PlacementProblem problem;
  problem.cells = {{"a", 0, 1, 1}};
  PlacementSolution solution;
  solution.rects = {{0, 0, 1, 1}};
  EXPECT_DOUBLE_EQ(symmetryViolation(problem, solution), 0.0);
}

}  // namespace
}  // namespace ancstr::place
