#include "util/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/parallel.h"

namespace ancstr::trace {
namespace {

/// The collector is process-wide; each test starts from a clean, disabled
/// state and leaves it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::instance().setEnabled(false);
    TraceCollector::instance().clear();
  }
  void TearDown() override {
    TraceCollector::instance().setEnabled(false);
    TraceCollector::instance().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  { const TraceSpan span("test.disabled"); }
  EXPECT_TRUE(TraceCollector::instance().events().empty());
}

TEST_F(TraceTest, SpanSecondsWorksWhileDisabled) {
  const TraceSpan span("test.stopwatch");
  EXPECT_GE(span.seconds(), 0.0);
}

TEST_F(TraceTest, EnabledSpansAreCollected) {
  TraceCollector::instance().setEnabled(true);
  {
    const TraceSpan outer("test.outer");
    const TraceSpan inner("test.inner");
  }
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer starts first.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[1].name, "test.inner");
  EXPECT_LE(events[0].startUs, events[1].startUs);
  EXPECT_GE(events[0].durationUs, 0.0);
}

TEST_F(TraceTest, ArmedAtConstructionNotDestruction) {
  // A span decides to record when it is constructed; flipping the switch
  // mid-flight must not tear half-initialised state.
  TraceSpan* span = nullptr;
  {
    TraceCollector::instance().setEnabled(true);
    span = new TraceSpan("test.armed");
    TraceCollector::instance().setEnabled(false);
    delete span;
  }
  EXPECT_EQ(TraceCollector::instance().events().size(), 1u);
}

TEST_F(TraceTest, ClearDropsEvents) {
  TraceCollector::instance().setEnabled(true);
  { const TraceSpan span("test.cleared"); }
  TraceCollector::instance().clear();
  EXPECT_TRUE(TraceCollector::instance().events().empty());
}

TEST_F(TraceTest, WorkerThreadsGetDistinctThreadIds) {
  TraceCollector::instance().setEnabled(true);
  util::ThreadPool pool(4);
  pool.forEach(64, [](std::size_t) {
    const TraceSpan span("test.worker");
  });
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 64u);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  // Static partition: chunk 0 on the caller, chunks 1..3 on workers.
  EXPECT_GT(tids.size(), 1u);
}

TEST_F(TraceTest, EventsSurviveThreadExit) {
  TraceCollector::instance().setEnabled(true);
  std::thread worker([] { const TraceSpan span("test.exited"); });
  worker.join();
  const std::vector<TraceEvent> events = TraceCollector::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.exited");
}

// Golden-schema test: the export must stay loadable by Perfetto /
// chrome://tracing, which means exactly these fields with these types.
TEST_F(TraceTest, ChromeJsonMatchesTraceEventSchema) {
  TraceCollector::instance().setEnabled(true);
  { const TraceSpan span("test.schema"); }

  std::string error;
  const auto parsed =
      Json::parse(TraceCollector::instance().toChromeJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const Json& root = *parsed;

  ASSERT_TRUE(root.isObject());
  EXPECT_EQ(root.get("displayTimeUnit").asString(), "ms");
  const Json& events = root.get("traceEvents");
  ASSERT_TRUE(events.isArray());
  ASSERT_EQ(events.size(), 1u);

  const Json& e = events.at(0);
  EXPECT_EQ(e.get("name").asString(), "test.schema");
  EXPECT_EQ(e.get("cat").asString(), "ancstr");
  EXPECT_EQ(e.get("ph").asString(), "X");  // complete event
  EXPECT_TRUE(e.get("ts").isNumber());
  EXPECT_TRUE(e.get("dur").isNumber());
  EXPECT_GE(e.get("dur").asNumber(), 0.0);
  EXPECT_EQ(e.get("pid").asNumber(), 1.0);
  EXPECT_TRUE(e.get("tid").isNumber());
}

TEST_F(TraceTest, EmptyCollectorStillExportsValidJson) {
  std::string error;
  const auto parsed =
      Json::parse(TraceCollector::instance().toChromeJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->get("traceEvents").size(), 0u);
}

TEST_F(TraceTest, WriteFileRoundTrips) {
  TraceCollector::instance().setEnabled(true);
  { const TraceSpan span("test.file"); }
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "ancstr_test_trace.json";
  TraceCollector::instance().writeFile(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  EXPECT_TRUE(Json::parse(buf.str(), &error).has_value()) << error;
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ancstr::trace
