// Property-style invariants of the whole flow:
//   * message passing is permutation-equivariant: device declaration order
//     must not change any similarity;
//   * SPICE serialisation round-trips must preserve extraction results;
//   * detection must be invariant under net renaming.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "circuits/synthetic.h"
#include "core/pipeline.h"
#include "netlist/builder.h"
#include "netlist/spice_parser.h"
#include "netlist/spice_writer.h"
#include "util/parallel.h"

namespace ancstr {
namespace {

/// Differential stage built with a configurable device declaration order
/// and configurable net names.
Library diffStage(const std::vector<int>& order, const std::string& prefix) {
  struct Decl {
    const char* kind;
    const char* name;
    const char* n1;
    const char* n2;
    const char* n3;
  };
  const std::vector<Decl> devices{
      {"nmos", "m1", "op", "inp", "tail"},
      {"nmos", "m2", "on", "inn", "tail"},
      {"nmos", "mt", "tail", "vb", "vss"},
      {"res", "r1", "op", "vdd", nullptr},
      {"res", "r2", "on", "vdd", nullptr},
      {"cap", "c1", "op", "vss", nullptr},
      {"cap", "c2", "on", "vss", nullptr},
  };
  NetlistBuilder b;
  b.beginSubckt("stage", {prefix + "inp", prefix + "inn", prefix + "op",
                          prefix + "on", prefix + "vb", prefix + "vdd",
                          prefix + "vss"});
  auto net = [&](const char* n) { return prefix + n; };
  for (const int i : order) {
    const Decl& d = devices[static_cast<std::size_t>(i)];
    if (std::string(d.kind) == "nmos") {
      b.nmos(d.name, net(d.n1), net(d.n2), net(d.n3), net("vss"), 2e-6,
             0.2e-6);
    } else if (std::string(d.kind) == "res") {
      b.res(d.name, net(d.n1), net(d.n2), 1e3);
    } else {
      b.cap(d.name, net(d.n1), net(d.n2), 1e-14);
    }
  }
  b.endSubckt();
  return b.build("stage");
}

/// Similarities keyed by sorted pair names, for order-independent compare.
std::map<std::pair<std::string, std::string>, double> similarityMap(
    const Pipeline& pipeline, const Library& lib) {
  std::map<std::pair<std::string, std::string>, double> out;
  for (const ScoredCandidate& c : pipeline.extract(lib).detection.scored) {
    auto key = std::minmax(c.pair.nameA, c.pair.nameB);
    out[{key.first, key.second}] = c.similarity;
  }
  return out;
}

TEST(Properties, PermutationEquivariantDetection) {
  const Library original = diffStage({0, 1, 2, 3, 4, 5, 6}, "");
  const Library shuffled = diffStage({6, 2, 4, 0, 5, 1, 3}, "");

  // Same weights for both (training uses only the original).
  PipelineConfig config;
  config.train.epochs = 10;
  Pipeline pipeline(config);
  pipeline.train({&original});

  const auto a = similarityMap(pipeline, original);
  const auto b = similarityMap(pipeline, shuffled);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, sim] : a) {
    const auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key.first << "/" << key.second;
    EXPECT_NEAR(sim, it->second, 1e-9) << key.first << "/" << key.second;
  }
}

TEST(Properties, NetRenamingInvariance) {
  const Library original = diffStage({0, 1, 2, 3, 4, 5, 6}, "");
  const Library renamed = diffStage({0, 1, 2, 3, 4, 5, 6}, "zz_");
  PipelineConfig config;
  config.train.epochs = 10;
  Pipeline pipeline(config);
  pipeline.train({&original});
  EXPECT_EQ(similarityMap(pipeline, original),
            similarityMap(pipeline, renamed));
}

TEST(Properties, SpiceRoundTripPreservesDetection) {
  const Library original = diffStage({0, 1, 2, 3, 4, 5, 6}, "");
  const Library reparsed = parseSpice(writeSpice(original));
  PipelineConfig config;
  config.train.epochs = 10;
  Pipeline pipeline(config);
  pipeline.train({&original});
  const auto a = similarityMap(pipeline, original);
  const auto b = similarityMap(pipeline, reparsed);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, sim] : a) {
    EXPECT_NEAR(sim, b.at(key), 1e-9);
  }
}

TEST(Properties, DetectorSimilarityIsSymmetric) {
  // score(a, b) == score(b, a): recompute every scored pair's similarity
  // with the modules swapped, through the same primitives the detector
  // uses (cosine over embeddings, sizing factor), and demand bitwise
  // equality. Covers both device pairs (vertex embeddings) and block
  // pairs (Algorithm-2 subcircuit embeddings).
  const circuits::CircuitBenchmark array = circuits::makeBlockArray(4);
  PipelineConfig config;
  config.train.epochs = 6;
  Pipeline pipeline(config);
  pipeline.train({&array.lib});
  const ExtractionResult extraction = pipeline.extract(array.lib);
  const FlatDesign design = FlatDesign::elaborate(array.lib);

  // Block endpoints, embedded once through the public batch API.
  std::vector<HierNodeId> blockNodes;
  std::map<HierNodeId, std::size_t> blockIndex;
  for (const ScoredCandidate& c : extraction.detection.scored) {
    if (c.pair.a.kind != ModuleKind::kBlock) continue;
    for (const HierNodeId node : {c.pair.a.id, c.pair.b.id}) {
      if (blockIndex.emplace(node, blockNodes.size()).second) {
        blockNodes.push_back(node);
      }
    }
  }
  util::ThreadPool pool(1);
  const BlockEmbeddingContext context{pipeline.model(),
                                      pipeline.config().features};
  GraphBuildOptions graphOptions = pipeline.config().graph;
  const std::vector<SubcircuitEmbedding> blocks =
      embedSubcircuits(design, blockNodes, extraction.embeddings,
                       pipeline.config().detector.embedding, graphOptions,
                       &context, pool);

  ASSERT_FALSE(extraction.detection.scored.empty());
  bool sawBlockPair = false, sawDevicePair = false;
  for (const ScoredCandidate& c : extraction.detection.scored) {
    if (c.pair.a.kind == ModuleKind::kBlock) {
      sawBlockPair = true;
      const SubcircuitEmbedding& ea = blocks[blockIndex.at(c.pair.a.id)];
      const SubcircuitEmbedding& eb = blocks[blockIndex.at(c.pair.b.id)];
      EXPECT_EQ(embeddingCosine(ea.structural, eb.structural),
                embeddingCosine(eb.structural, ea.structural))
          << c.pair.nameA << "/" << c.pair.nameB;
    } else {
      sawDevicePair = true;
      const nn::Matrix za = extraction.embeddings.rowCopy(c.pair.a.id);
      const nn::Matrix zb = extraction.embeddings.rowCopy(c.pair.b.id);
      EXPECT_EQ(nn::Matrix::cosineSimilarity(za, zb),
                nn::Matrix::cosineSimilarity(zb, za))
          << c.pair.nameA << "/" << c.pair.nameB;
      EXPECT_EQ(deviceSizeSimilarity(design.device(c.pair.a.id),
                                     design.device(c.pair.b.id)),
                deviceSizeSimilarity(design.device(c.pair.b.id),
                                     design.device(c.pair.a.id)));
    }
  }
  EXPECT_TRUE(sawBlockPair);
  EXPECT_TRUE(sawDevicePair);
}

TEST(Properties, CandidateOrderDoesNotChangeAcceptedSet) {
  // Per-pair scoring is independent, so permuting the candidate
  // enumeration order (via the device declaration order, which drives it)
  // must leave the accepted constraint set untouched.
  const Library original = diffStage({0, 1, 2, 3, 4, 5, 6}, "");
  PipelineConfig config;
  config.train.epochs = 10;
  Pipeline pipeline(config);
  pipeline.train({&original});

  auto acceptedSet = [&](const Library& lib) {
    std::set<std::pair<std::string, std::string>> out;
    const ConstraintSet set = pipeline.extract(lib).detection.set;
    for (const Constraint* c : set.ofType(ConstraintType::kSymmetryPair)) {
      auto key = std::minmax(c->members[0].name, c->members[1].name);
      out.insert({key.first, key.second});
    }
    return out;
  };

  const auto baseline = acceptedSet(original);
  EXPECT_FALSE(baseline.empty());
  for (const std::vector<int>& order :
       {std::vector<int>{6, 2, 4, 0, 5, 1, 3},
        std::vector<int>{3, 5, 1, 6, 0, 2, 4},
        std::vector<int>{1, 0, 2, 4, 3, 6, 5}}) {
    EXPECT_EQ(baseline, acceptedSet(diffStage(order, "")));
  }
}

class EpochSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(EpochSweepTest, SymmetricPairAlwaysTopScored) {
  // Whatever the training length, the exactly-symmetric pair (m1, m2)
  // must score at least as high as every other MOS pair.
  const Library lib = diffStage({0, 1, 2, 3, 4, 5, 6}, "");
  PipelineConfig config;
  config.train.epochs = GetParam();
  Pipeline pipeline(config);
  pipeline.train({&lib});
  const auto sims = similarityMap(pipeline, lib);
  const double matched = sims.at({"m1", "m2"});
  EXPECT_GE(matched, sims.at({"m1", "mt"}) - 1e-12);
  EXPECT_GE(matched, sims.at({"m2", "mt"}) - 1e-12);
  EXPECT_GT(matched, 0.999);
}

INSTANTIATE_TEST_SUITE_P(TrainingLengths, EpochSweepTest,
                         ::testing::Values(0, 1, 5, 20, 60));

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, SymmetryHoldsForAnySeed) {
  const Library lib = diffStage({0, 1, 2, 3, 4, 5, 6}, "");
  PipelineConfig config;
  config.train.epochs = 8;
  config.seed = GetParam();
  Pipeline pipeline(config);
  pipeline.train({&lib});
  const auto sims = similarityMap(pipeline, lib);
  EXPECT_GT(sims.at({"m1", "m2"}), 0.999);
  EXPECT_GT(sims.at({"r1", "r2"}), 0.999);
  EXPECT_GT(sims.at({"c1", "c2"}), 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace ancstr
