#include "util/structural_hash.h"

#include <bit>

namespace ancstr::util {

std::string StructuralHash::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint64_t lane : {hi, lo}) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(lane >> shift) & 0xF]);
    }
  }
  return out;
}

void StructuralHasher::addDouble(double v) noexcept {
  add(std::bit_cast<std::uint64_t>(v));
}

void StructuralHasher::addBytes(std::string_view bytes) noexcept {
  addSize(bytes.size());
  // Pack 8 bytes per word; the final partial word is zero-padded, which is
  // unambiguous because the length is hashed first.
  std::uint64_t word = 0;
  int filled = 0;
  for (const char c : bytes) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << (8 * filled);
    if (++filled == 8) {
      add(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) add(word);
}

}  // namespace ancstr::util
