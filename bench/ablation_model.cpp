// Ablations over the design choices DESIGN.md calls out:
//   A1a  sizing features on/off (Table II geometry rows; Fig. 2 scenario)
//   A1b  edge-type-aware weights vs. a single shared W (|W| = 4 vs 1)*
//   A1c  number of propagation layers K in {1, 2, 3}
//   A1d  top-M embedding size M in {1, 2, 5, 10, 20}
//   A1e  adaptive Eq. 4 threshold vs. fixed thresholds
// (*) approximated by collapsing all pin functions onto the passive edge
//     type during graph construction, which removes type awareness.
//
// Each ablation reports merged-dataset F1 at both levels.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "harness.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

struct AblationResult {
  Metrics system;
  Metrics device;
  double systemAuc = 0.0;
  double deviceAuc = 0.0;
};

AblationResult evaluate(BenchContext& ctx,
                        const std::vector<circuits::CircuitBenchmark>& corpus,
                        const PipelineConfig& config) {
  RunReport trainReport;
  Pipeline pipeline = trainPipeline(corpus, config, &trainReport);
  ctx.accumulateReport(trainReport);
  ConfusionCounts system, device;
  std::vector<double> sysScores, devScores;
  std::vector<bool> sysLabels, devLabels;
  for (const auto& bench : corpus) {
    const ConstraintLevel level = bench.category == "ADC"
                                      ? ConstraintLevel::kSystem
                                      : ConstraintLevel::kDevice;
    const Evaluated us = evalOurs(pipeline, bench, level);
    if (level == ConstraintLevel::kSystem) {
      system += us.counts;
      sysScores.insert(sysScores.end(), us.scores.begin(), us.scores.end());
      sysLabels.insert(sysLabels.end(), us.labels.begin(), us.labels.end());
    } else {
      device += us.counts;
      devScores.insert(devScores.end(), us.scores.begin(), us.scores.end());
      devLabels.insert(devLabels.end(), us.labels.begin(), us.labels.end());
    }
  }
  AblationResult result;
  result.system = computeMetrics(system);
  result.device = computeMetrics(device);
  result.systemAuc = computeRoc(sysScores, sysLabels).auc;
  result.deviceAuc = computeRoc(devScores, devLabels).auc;
  return result;
}

void addRow(TextTable& table, const std::string& name,
            const AblationResult& r) {
  table.addRow({name, metricCell(r.system.f1), metricCell(r.system.fpr),
                metricCell(r.systemAuc), metricCell(r.device.f1),
                metricCell(r.device.fpr), metricCell(r.deviceAuc)});
}

void run(BenchContext& ctx) {
  const auto corpus = fullCorpus();
  const int epochs = 40;  // ablations trade a little quality for turnaround

  TextTable table;
  table.setHeader({"Variant", "sys.F1", "sys.FPR", "sys.AUC", "dev.F1",
                   "dev.FPR", "dev.AUC"});

  const AblationResult paper = evaluate(ctx, corpus, paperConfig(epochs));
  addRow(table, "paper config (K=2, M=10, geom on)", paper);

  {
    PipelineConfig config = paperConfig(epochs);
    config.features.useGeometry = false;
    config.features.useLayers = false;
    config.model.featureDim = config.features.dims();
    addRow(table, "no sizing features", evaluate(ctx, corpus, config));
  }
  {
    PipelineConfig config = paperConfig(epochs);
    config.model.sharedWeights = false;
    addRow(table, "per-layer weights", evaluate(ctx, corpus, config));
  }
  {
    PipelineConfig config = paperConfig(epochs);
    config.graph.collapseEdgeTypes = true;
    addRow(table, "no edge types (|W|=1)", evaluate(ctx, corpus, config));
  }
  {
    PipelineConfig config = paperConfig(epochs);
    config.detector.sizingAwareSimilarity = false;
    addRow(table, "pure Eq.5 cosine", evaluate(ctx, corpus, config));
  }
  {
    PipelineConfig config = paperConfig(epochs);
    config.model.meanAggregation = true;
    addRow(table, "mean aggregation", evaluate(ctx, corpus, config));
  }
  {
    PipelineConfig config = paperConfig(epochs);
    config.detector.localBlockEmbeddings = false;
    addRow(table, "context-sensitive block emb.", evaluate(ctx, corpus, config));
  }
  {
    PipelineConfig config = paperConfig(epochs);
    config.graph.maxNetDegree = 0;  // paper-literal full supply cliques
    addRow(table, "full rail cliques", evaluate(ctx, corpus, config));
  }
  for (const int k : {1, 3}) {
    PipelineConfig config = paperConfig(epochs);
    config.model.numLayers = k;
    addRow(table, "K = " + std::to_string(k), evaluate(ctx, corpus, config));
  }
  for (const std::size_t m : {1u, 2u, 5u, 20u}) {
    PipelineConfig config = paperConfig(epochs);
    config.detector.embedding.topM = m;
    addRow(table, "M = " + std::to_string(m), evaluate(ctx, corpus, config));
  }
  {
    PipelineConfig config = paperConfig(epochs);
    // Fixed loose threshold instead of Eq. 4 (alpha' = th - beta/(1+n)
    // approximated by zeroing beta).
    config.detector.alpha = 0.90;
    config.detector.beta = 0.0;
    addRow(table, "fixed sys th = 0.90", evaluate(ctx, corpus, config));
  }
  {
    PipelineConfig config = paperConfig(epochs);
    config.detector.alpha = 0.999;
    config.detector.beta = 0.0;
    addRow(table, "fixed sys th = 0.999", evaluate(ctx, corpus, config));
  }

  std::printf("\n=== Ablation study (merged datasets) ===\n");
  table.print(std::cout);
  ctx.setCounter("paper.sys_f1", paper.system.f1);
  ctx.setCounter("paper.dev_f1", paper.device.f1);
}

[[maybe_unused]] const bool kRegistered =
    registerBench("ablation.model", run);

}  // namespace

ANCSTR_BENCH_MAIN("ablation_model")
