// Positive / negative pair sampling for the unsupervised loss (Eq. 2).
// Positives are all (v, u) with u a 1-hop in-neighbour of v; negatives are
// B uniform draws per vertex from the non-neighbours.
#pragma once

#include <vector>

#include "core/model.h"
#include "util/rng.h"

namespace ancstr {

/// Index pairs feeding the contrastive loss. posV[i] pairs with posU[i];
/// negV[i] pairs with negU[i].
struct ContrastiveBatch {
  std::vector<std::size_t> posV, posU;
  std::vector<std::size_t> negV, negU;

  std::size_t size() const { return posV.size() + negV.size(); }
};

/// Draws a fresh batch: every in-neighbour edge as a positive, plus
/// `numNegatives` (the paper's B = 5) negatives per vertex.
ContrastiveBatch sampleContrastiveBatch(const PreparedGraph& g,
                                        int numNegatives, Rng& rng);

/// Eq. 2 over a whole embedding matrix:
///   L = -sum log sigmoid(z_u . z_v) - sum log sigmoid(-z_n . z_v)
/// With meanReduction, divides by the number of terms (stabilises Adam
/// across graphs of very different sizes; the paper's L_tot is the sum).
nn::Tensor contrastiveLoss(const nn::Tensor& z, const ContrastiveBatch& batch,
                           bool meanReduction);

}  // namespace ancstr
