#include "core/model.h"

#include <gtest/gtest.h>

#include "core/features.h"
#include "nn/init.h"
#include "util/error.h"
#include "netlist/builder.h"

namespace ancstr {
namespace {

PreparedGraph preparedDiffPair() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.res("r1", "op", "vdd", 1e3);
  b.res("r2", "on", "vdd", 1e3);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("cell"));
  const CircuitGraph g = buildHeteroGraph(design);
  return prepareGraph(g, buildFeatureMatrix(design));
}

TEST(GnnModel, ForwardShape) {
  Rng rng(1);
  GnnModel model(GnnConfig{}, rng);
  const PreparedGraph g = preparedDiffPair();
  const nn::Tensor z = model.forward(g);
  EXPECT_EQ(z.rows(), g.numVertices());
  EXPECT_EQ(z.cols(), 18u);
}

TEST(GnnModel, EmbedMatchesForwardValue) {
  Rng rng(2);
  GnnModel model(GnnConfig{}, rng);
  const PreparedGraph g = preparedDiffPair();
  EXPECT_EQ(model.embed(g), model.forward(g).value());
}

TEST(GnnModel, SymmetricVerticesGetIdenticalEmbeddings) {
  // m1/m2 and r1/r2 have isomorphic rooted neighbourhoods with identical
  // features, so a deterministic GNN must embed them identically.
  Rng rng(3);
  GnnModel model(GnnConfig{}, rng);
  const PreparedGraph g = preparedDiffPair();
  const nn::Matrix z = model.embed(g);
  for (std::size_t c = 0; c < z.cols(); ++c) {
    EXPECT_NEAR(z(0, c), z(1, c), 1e-12);  // m1 vs m2
    EXPECT_NEAR(z(3, c), z(4, c), 1e-12);  // r1 vs r2
  }
}

TEST(GnnModel, AsymmetricVerticesDiffer) {
  Rng rng(4);
  GnnModel model(GnnConfig{}, rng);
  const PreparedGraph g = preparedDiffPair();
  const nn::Matrix z = model.embed(g);
  double diff = 0.0;
  for (std::size_t c = 0; c < z.cols(); ++c) {
    diff += std::abs(z(0, c) - z(2, c));  // m1 vs tail
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(GnnModel, SharedWeightsParameterCount) {
  Rng rng(5);
  GnnModel shared(GnnConfig{}, rng);
  // 4 edge weights + 9 GRU params, one set.
  EXPECT_EQ(shared.parameters().size(), 13u);
  GnnConfig perLayer;
  perLayer.sharedWeights = false;
  GnnModel unshared(perLayer, rng);
  EXPECT_EQ(unshared.parameters().size(), 26u);
}

TEST(GnnModel, InputProjectionWhenDimsDiffer) {
  Rng rng(6);
  GnnConfig config;
  config.featureDim = 18;
  config.hiddenDim = 8;
  GnnModel model(config, rng);
  EXPECT_EQ(model.parameters().size(), 14u);  // 13 + projection
  const PreparedGraph g = preparedDiffPair();
  EXPECT_EQ(model.embed(g).cols(), 8u);
}

TEST(GnnModel, MoreLayersChangeEmbedding) {
  Rng rngA(7), rngB(7);
  GnnConfig k1;
  k1.numLayers = 1;
  GnnConfig k3;
  k3.numLayers = 3;
  GnnModel a(k1, rngA), b(k3, rngB);
  const PreparedGraph g = preparedDiffPair();
  EXPECT_NE(a.embed(g), b.embed(g));
}

TEST(GnnModel, FeatureDimMismatchThrows) {
  Rng rng(8);
  GnnConfig config;
  config.featureDim = 10;
  config.hiddenDim = 10;
  GnnModel model(config, rng);
  const PreparedGraph g = preparedDiffPair();  // 18-dim features
  EXPECT_THROW(model.forward(g), ShapeError);
}

TEST(GnnModel, MeanAggregationChangesOutputKeepsSymmetry) {
  Rng rngA(9), rngB(9);
  GnnConfig sum;
  GnnConfig mean;
  mean.meanAggregation = true;
  GnnModel a(sum, rngA), b(mean, rngB);
  const PreparedGraph g = preparedDiffPair();
  const nn::Matrix za = a.embed(g);
  const nn::Matrix zb = b.embed(g);
  EXPECT_NE(za, zb);
  // Symmetric vertices stay identical under either aggregator.
  for (std::size_t c = 0; c < zb.cols(); ++c) {
    EXPECT_NEAR(zb(0, c), zb(1, c), 1e-12);
  }
}

TEST(PrepareGraph, InverseInDegreeConsistent) {
  const PreparedGraph g = preparedDiffPair();
  for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
    std::size_t degree = 0;
    for (const auto& adj : g.inAdjacency) {
      const nn::Matrix dense = adj.toDense();
      for (std::size_t u = 0; u < dense.cols(); ++u) {
        degree += static_cast<std::size_t>(dense(v, u));
      }
    }
    if (degree == 0) {
      EXPECT_DOUBLE_EQ(g.inverseInDegree[v], 0.0);
    } else {
      EXPECT_NEAR(g.inverseInDegree[v], 1.0 / static_cast<double>(degree),
                  1e-12);
    }
  }
}

TEST(PrepareGraph, FillsAdjacencyAndNeighbors) {
  const PreparedGraph g = preparedDiffPair();
  std::size_t nnz = 0;
  for (const auto& adj : g.inAdjacency) nnz += adj.nonZeros();
  EXPECT_GT(nnz, 0u);
  EXPECT_EQ(g.inNeighbors.size(), g.numVertices());
  // m1's in-neighbours include m2 (via tail) and r1 (via op).
  const auto& n0 = g.inNeighbors[0];
  EXPECT_TRUE(std::find(n0.begin(), n0.end(), 1u) != n0.end());
  EXPECT_TRUE(std::find(n0.begin(), n0.end(), 3u) != n0.end());
}

TEST(PrepareGraph, RowCountMismatchThrows) {
  NetlistBuilder b;
  b.beginSubckt("c", {"a"});
  b.res("r1", "a", "b", 1.0);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("c"));
  const CircuitGraph g = buildHeteroGraph(design);
  EXPECT_THROW(prepareGraph(g, nn::Matrix(5, 18)), ShapeError);
}

}  // namespace
}  // namespace ancstr
