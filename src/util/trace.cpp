#include "util/trace.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>

#include "util/error.h"
#include "util/json.h"

namespace ancstr::trace {

std::uint32_t currentThreadId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Per-thread event buffer, owned by the collector so it survives thread
// exit (ThreadPool workers die at the end of each top-level operation,
// typically before the trace is exported).
struct TraceCollector::Impl {
  struct Buffer {
    std::mutex mutex;  ///< record vs snapshot; uncontended on the hot path
    std::vector<TraceEvent> events;
    bool orphaned = false;  ///< owning thread exited; reaped by clear()
  };

  mutable std::mutex mutex;  ///< guards the buffer list
  std::vector<std::unique_ptr<Buffer>> buffers;
  Stopwatch epoch;

  Buffer* registerBuffer() {
    const std::lock_guard<std::mutex> lock(mutex);
    buffers.push_back(std::make_unique<Buffer>());
    return buffers.back().get();
  }

  void release(Buffer* buffer) {
    // The list mutex serialises the orphaned flag against clear(); the
    // buffer's own mutex guards only `events`.
    const std::lock_guard<std::mutex> lock(mutex);
    buffer->orphaned = true;
  }
};

namespace {

/// Thread-local handle into the collector; the destructor marks the buffer
/// orphaned so clear() can reap it after the thread is gone.
struct TlsSlot {
  TraceCollector::Impl::Buffer* buffer = nullptr;
  TraceCollector::Impl* owner = nullptr;

  ~TlsSlot() {
    if (owner != nullptr && buffer != nullptr) owner->release(buffer);
  }
};

thread_local TlsSlot tlsSlot;

}  // namespace

TraceCollector::TraceCollector() : impl_(new Impl) {}

TraceCollector& TraceCollector::instance() {
  // Leaked on purpose: worker-thread TLS destructors may run after static
  // destruction would have torn a normal singleton down.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

double TraceCollector::nowUs() const { return impl_->epoch.seconds() * 1e6; }

void TraceCollector::record(const char* name, double startUs,
                            double durationUs, std::uint64_t requestId) {
  // No enabled() gate here: spans arm themselves at construction, and an
  // armed span must complete even if tracing was switched off mid-flight
  // (otherwise a snapshot taken right after disabling loses the tail).
  if (tlsSlot.buffer == nullptr) {
    tlsSlot.buffer = impl_->registerBuffer();
    tlsSlot.owner = impl_;
  }
  Impl::Buffer& buffer = *tlsSlot.buffer;
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      TraceEvent{name, startUs, durationUs, currentThreadId(), requestId});
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& buffer : impl_->buffers) {
      const std::lock_guard<std::mutex> bufferLock(buffer->mutex);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.startUs != b.startUs) return a.startUs < b.startUs;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.name < b.name;
                   });
  return out;
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& buffers = impl_->buffers;
  for (auto it = buffers.begin(); it != buffers.end();) {
    if ((*it)->orphaned) {
      // The owning thread is gone (release() synchronises through the
      // list mutex held here), so the buffer can be destroyed without —
      // and must be destroyed without — holding its own mutex.
      it = buffers.erase(it);
    } else {
      const std::lock_guard<std::mutex> bufferLock((*it)->mutex);
      (*it)->events.clear();
      ++it;
    }
  }
}

std::string TraceCollector::toChromeJson() const {
  Json root = Json::object();
  Json traceEvents = Json::array();
  for (const TraceEvent& event : events()) {
    Json entry = Json::object();
    entry.set("name", event.name);
    entry.set("cat", "ancstr");
    entry.set("ph", "X");
    entry.set("ts", event.startUs);
    entry.set("dur", event.durationUs);
    entry.set("pid", 1);
    entry.set("tid", static_cast<std::size_t>(event.tid));
    if (event.requestId != 0) {
      Json args = Json::object();
      args.set("request_id", static_cast<std::size_t>(event.requestId));
      entry.set("args", std::move(args));
    }
    traceEvents.push(std::move(entry));
  }
  root.set("traceEvents", std::move(traceEvents));
  root.set("displayTimeUnit", "ms");
  return root.dump(2);
}

void TraceCollector::writeFile(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) {
    throw Error("trace: cannot open '" + path.string() + "' for writing");
  }
  out << toChromeJson() << '\n';
  if (!out) throw Error("trace: write failure on '" + path.string() + "'");
}

namespace {

/// Tolerance for "child fits inside parent" in microseconds. A child's
/// recorded end can exceed its parent's by clock-read rounding only, so
/// this just has to absorb double noise, not scheduling jitter.
constexpr double kNestEpsUs = 0.05;

void computeSelfTimes(SpanNode& node) {
  double childUs = 0.0;
  for (SpanNode& child : node.children) {
    computeSelfTimes(child);
    childUs += child.durationUs;
  }
  node.selfUs = std::max(0.0, node.durationUs - childUs);
}

Json spanToJson(const SpanNode& node) {
  Json entry = Json::object();
  entry.set("name", node.name);
  entry.set("startUs", node.startUs);
  entry.set("durUs", node.durationUs);
  entry.set("selfUs", node.selfUs);
  if (node.requestId != 0) {
    entry.set("requestId", static_cast<std::size_t>(node.requestId));
  }
  Json children = Json::array();
  for (const SpanNode& child : node.children) {
    children.push(spanToJson(child));
  }
  entry.set("children", std::move(children));
  return entry;
}

}  // namespace

std::vector<SpanNode> TraceCollector::spanForest() const {
  std::vector<TraceEvent> sorted = events();
  // Nesting needs same-start parents before their children: within a
  // thread, order by start ascending then end descending (the enclosing
  // span first).
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.startUs != b.startUs) return a.startUs < b.startUs;
                     return a.startUs + a.durationUs > b.startUs + b.durationUs;
                   });

  std::vector<SpanNode> roots;
  // Stack of currently open ancestors, addressed through the roots vector
  // (indices into the child chain, re-resolved on each push because
  // vectors reallocate).
  std::vector<SpanNode*> open;
  std::uint32_t openTid = 0;
  for (const TraceEvent& event : sorted) {
    if (!open.empty() && openTid != event.tid) open.clear();
    const double end = event.startUs + event.durationUs;
    while (!open.empty()) {
      const SpanNode& top = *open.back();
      const bool fits = event.startUs >= top.startUs - kNestEpsUs &&
                        end <= top.startUs + top.durationUs + kNestEpsUs;
      if (fits) break;
      open.pop_back();
    }
    SpanNode node;
    node.name = event.name;
    node.startUs = event.startUs;
    node.durationUs = event.durationUs;
    node.tid = event.tid;
    node.requestId = event.requestId;
    std::vector<SpanNode>& siblings =
        open.empty() ? roots : open.back()->children;
    siblings.push_back(std::move(node));
    open.push_back(&siblings.back());
    openTid = event.tid;
  }
  for (SpanNode& root : roots) computeSelfTimes(root);
  return roots;
}

std::string TraceCollector::toSpanTreeJson() const {
  const std::vector<SpanNode> forest = spanForest();
  Json root = Json::object();
  root.set("kind", "ancstr-span-tree");
  root.set("schemaVersion", 1);
  Json threads = Json::array();
  // Forest is grouped by tid (events() sorts tids contiguously per start
  // ordering above); emit one entry per distinct tid, in tid order.
  std::vector<std::uint32_t> tids;
  for (const SpanNode& node : forest) {
    if (tids.empty() || tids.back() != node.tid) tids.push_back(node.tid);
  }
  for (const std::uint32_t tid : tids) {
    Json entry = Json::object();
    entry.set("tid", static_cast<std::size_t>(tid));
    Json spans = Json::array();
    for (const SpanNode& node : forest) {
      if (node.tid == tid) spans.push(spanToJson(node));
    }
    entry.set("spans", std::move(spans));
    threads.push(std::move(entry));
  }
  root.set("threads", std::move(threads));
  return root.dump(2);
}

void TraceCollector::writeSpanTreeFile(
    const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) {
    throw Error("trace: cannot open '" + path.string() + "' for writing");
  }
  out << toSpanTreeJson() << '\n';
  if (!out) throw Error("trace: write failure on '" + path.string() + "'");
}

}  // namespace ancstr::trace
