// Reproduces Fig. 6: ROC curves on the merged five-ADC dataset for
// system-level constraint detection — S3DET vs. this work. The paper's
// shape: our curve encloses S3DET's (strictly larger AUC).
#include <cstdio>

#include "common.h"
#include "harness.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

void run(BenchContext& ctx) {
  const auto corpus = fullCorpus();
  RunReport trainReport;
  Pipeline pipeline = trainPipeline(corpus, paperConfig(), &trainReport);
  ctx.accumulateReport(trainReport);

  std::vector<double> ourScores, s3Scores, gedScores;
  std::vector<bool> ourLabels, s3Labels, gedLabels;
  for (const auto& bench : corpus) {
    if (bench.category != "ADC") continue;
    const Evaluated us = evalOurs(pipeline, bench, ConstraintLevel::kSystem);
    ourScores.insert(ourScores.end(), us.scores.begin(), us.scores.end());
    ourLabels.insert(ourLabels.end(), us.labels.begin(), us.labels.end());
    const Evaluated s3 = evalS3Det(bench);
    s3Scores.insert(s3Scores.end(), s3.scores.begin(), s3.scores.end());
    s3Labels.insert(s3Labels.end(), s3.labels.begin(), s3.labels.end());
    const Evaluated g = evalGed(bench);
    gedScores.insert(gedScores.end(), g.scores.begin(), g.scores.end());
    gedLabels.insert(gedLabels.end(), g.labels.begin(), g.labels.end());
  }

  std::printf("\n=== Fig. 6: ROC on merged ADC dataset (system-level) ===\n");
  const RocCurve ours = computeRoc(ourScores, ourLabels);
  const RocCurve s3det = computeRoc(s3Scores, s3Labels);
  const RocCurve gedApprox = computeRoc(gedScores, gedLabels);
  printRoc("This work", ours);
  printRoc("S3DET", s3det);
  printRoc("GED-approx (ICCAD'20-style, extra baseline)", gedApprox);
  std::printf("\nShape check (paper: our AUC larger, curve encloses "
              "S3DET's): AUC %.4f vs %.4f (S3DET) vs %.4f (GED) -> %s\n",
              ours.auc, s3det.auc, gedApprox.auc,
              ours.auc > s3det.auc && ours.auc > gedApprox.auc
                  ? "ours wins"
                  : "MISMATCH");
  ctx.setCounter("ours.auc", ours.auc);
  ctx.setCounter("s3det.auc", s3det.auc);
  ctx.setCounter("ged.auc", gedApprox.auc);
}

[[maybe_unused]] const bool kRegistered =
    registerBench("fig6.roc_system", run);

}  // namespace

ANCSTR_BENCH_MAIN("fig6_roc_system")
