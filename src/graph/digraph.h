// Plain directed graph without parallel edges: the domain of PageRank
// (Algorithm 2) and the substrate for connectivity queries.
#pragma once

#include <cstdint>
#include <vector>

namespace ancstr {

/// Directed graph with at-most-one edge per ordered vertex pair.
class SimpleDigraph {
 public:
  explicit SimpleDigraph(std::size_t numVertices);

  std::size_t numVertices() const { return out_.size(); }
  std::size_t numEdges() const { return numEdges_; }

  /// Adds u->v once; duplicate insertions are ignored. Self loops allowed.
  void addEdge(std::uint32_t u, std::uint32_t v);

  bool hasEdge(std::uint32_t u, std::uint32_t v) const;

  const std::vector<std::uint32_t>& outNeighbors(std::uint32_t v) const {
    return out_.at(v);
  }
  const std::vector<std::uint32_t>& inNeighbors(std::uint32_t v) const {
    return in_.at(v);
  }
  std::size_t outDegree(std::uint32_t v) const { return out_.at(v).size(); }
  std::size_t inDegree(std::uint32_t v) const { return in_.at(v).size(); }

  /// Weakly connected component id per vertex (0-based, dense).
  std::vector<std::uint32_t> weakComponents() const;

  /// BFS hop distance from `source` (-1 for unreachable), following out
  /// edges only.
  std::vector<int> bfsDistances(std::uint32_t source) const;

 private:
  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::vector<std::uint32_t>> in_;
  std::size_t numEdges_ = 0;
};

}  // namespace ancstr
