#include "netlist/spectre_parser.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "netlist/expr.h"
#include "netlist/spice_parser.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/trace.h"

namespace ancstr {
namespace {

struct LogicalLine {
  std::string text;
  std::size_t line = 0;
};

/// Thrown to abandon the current card in fail-soft mode; the line loop
/// resynchronizes to the next card. Never escapes the parser.
struct CardSkip {};

/// Strips //-comments, *-comment lines, and joins '\' continuations.
std::vector<LogicalLine> toLogicalLines(std::string_view text) {
  std::vector<LogicalLine> out;
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t lineNo = 0;
  bool continuing = false;
  while (std::getline(in, raw)) {
    ++lineNo;
    std::string_view sv = raw;
    if (const auto slashes = sv.find("//"); slashes != std::string_view::npos) {
      sv = sv.substr(0, slashes);
    }
    sv = str::trim(sv);
    if (!continuing && !sv.empty() && sv.front() == '*') continue;
    bool continues = false;
    if (!sv.empty() && sv.back() == '\\') {
      continues = true;
      sv = str::trim(sv.substr(0, sv.size() - 1));
    }
    if (continuing && !out.empty()) {
      if (!sv.empty()) {
        out.back().text += ' ';
        out.back().text += sv;
      }
    } else if (!sv.empty()) {
      out.push_back({std::string(sv), lineNo});
    }
    continuing = continues && (!out.empty());
  }
  return out;
}

/// Splits "name (n1 n2) master k=v" into name, nodes, master, params.
/// Parentheses around the node list are optional: without them, every
/// token before the first k=v except the last is a node, the last is the
/// master.
struct Card {
  std::string name;
  std::vector<std::string> nodes;
  std::string master;
  std::vector<std::pair<std::string, std::string>> params;
};

DeviceType spectrePrimitiveType(const std::string& master) {
  const std::string m = str::toLower(master);
  if (m == "resistor") return DeviceType::kResPoly;
  if (m == "capacitor") return DeviceType::kCapMom;
  if (m == "inductor") return DeviceType::kInd;
  if (m == "diode") return DeviceType::kDio;
  return deviceTypeFromModelName(m);
}

/// Stable key identifying a file for include-cycle detection.
std::string includeKey(const std::filesystem::path& path) {
  std::error_code ec;
  const std::filesystem::path canon = std::filesystem::weakly_canonical(
      path, ec);
  return ec ? path.lexically_normal().string() : canon.string();
}

class SpectreParser {
 public:
  SpectreParser(std::string_view fileName, diag::DiagnosticSink& sink)
      : file_(fileName), sink_(sink) {}

  void pushRootFile(std::string key) { includeStack_.push_back(std::move(key)); }

  Library run(std::string_view text, const std::string& dir) {
    parseText(text, dir);
    if (inSubckt_) {
      sink_.error(diag::codes::kUnterminatedSubckt, file_, subcktLine_,
                  "missing 'ends'");
      inSubckt_ = false;
    }
    try {
      lib_.validate();
    } catch (const NetlistError& e) {
      if (sink_.strict()) throw;
      sink_.error(diag::codes::kInvalidNetlist, file_, 0, e.what());
    }
    return std::move(lib_);
  }

 private:
  void parseText(std::string_view text, const std::string& dir) {
    for (const LogicalLine& ll : toLogicalLines(text)) {
      try {
        parseLine(ll, dir);
      } catch (const CardSkip&) {
        // Resynchronize: drop this card, continue with the next one.
      } catch (const NetlistError& e) {
        if (sink_.strict()) throw;
        sink_.error(diag::codes::kBadCard, file_, ll.line, e.what());
      }
    }
  }

  [[noreturn]] void fail(std::string_view code, std::size_t line,
                         std::string message) {
    sink_.error(code, file_, line, std::move(message));
    throw CardSkip{};
  }

  void parseLine(const LogicalLine& ll, const std::string& dir) {
    const auto tokens = str::splitTokens(ll.text);
    ANCSTR_ASSERT(!tokens.empty());
    const std::string head = str::toLower(tokens[0]);

    if (skipUntilEnds_ && head != "ends") return;

    if (head == "simulator" || head == "global" || head == "save" ||
        head == "option" || head == "options") {
      return;  // environment directives carry no structure we need
    }
    if (head == "include") {
      parseInclude(tokens, ll, dir);
      return;
    }
    if (head == "subckt") {
      if (inSubckt_) {
        sink_.error(diag::codes::kNestedSubckt, file_, ll.line,
                    "nested subckt not supported");
        skipUntilEnds_ = true;
        throw CardSkip{};
      }
      if (tokens.size() < 2) {
        sink_.error(diag::codes::kBadDirective, file_, ll.line,
                    "subckt requires a name");
        skipUntilEnds_ = true;
        throw CardSkip{};
      }
      if (!sink_.strict() && lib_.findSubckt(tokens[1])) {
        sink_.error(diag::codes::kBadDirective, file_, ll.line,
                    "duplicate subckt '" + tokens[1] + "'");
        skipUntilEnds_ = true;
        throw CardSkip{};
      }
      // Ports: remaining tokens with parentheses stripped (but balanced).
      std::string rest;
      for (std::size_t i = 2; i < tokens.size(); ++i) rest += tokens[i] + " ";
      const auto opens = std::count(rest.begin(), rest.end(), '(');
      const auto closes = std::count(rest.begin(), rest.end(), ')');
      if (opens != closes) {
        sink_.error(diag::codes::kBadDirective, file_, ll.line,
                    "unbalanced parentheses in subckt");
        skipUntilEnds_ = true;
        throw CardSkip{};
      }
      cur_ = lib_.addSubckt(tokens[1]);
      inSubckt_ = true;
      subcktLine_ = ll.line;
      params_.clear();
      for (char& c : rest) {
        if (c == '(' || c == ')') c = ' ';
      }
      for (const std::string& port : str::splitTokens(rest)) {
        lib_.mutableSubckt(cur_).addNet(port, /*isPort=*/true);
      }
      return;
    }
    if (head == "ends") {
      if (skipUntilEnds_) {
        skipUntilEnds_ = false;
        return;
      }
      if (!inSubckt_) {
        fail(diag::codes::kStrayEnds, ll.line, "ends without subckt");
      }
      inSubckt_ = false;
      return;
    }
    if (head == "parameters") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = str::splitFirst(tokens[i], '=');
        if (value.empty()) {
          fail(diag::codes::kBadParameter, ll.line,
               "parameter '" + tokens[i] + "' lacks a value");
        }
        const auto v = evalParamValue(value, params_);
        if (!v) {
          fail(diag::codes::kBadParameter, ll.line,
               "cannot evaluate parameter '" + tokens[i] + "'");
        }
        params_[str::toLower(key)] = *v;
      }
      return;
    }
    parseDeviceOrInstance(ll);
  }

  void parseInclude(const std::vector<std::string>& tokens,
                    const LogicalLine& ll, const std::string& dir) {
    if (tokens.size() < 2) {
      fail(diag::codes::kBadDirective, ll.line, "include requires a path");
    }
    std::string path = tokens[1];
    if (path.size() >= 2 && (path.front() == '"' || path.front() == '\'')) {
      path = path.substr(1, path.size() - 2);
    }
    const std::filesystem::path full = std::filesystem::path(dir) / path;
    const std::string key = includeKey(full);
    if (std::find(includeStack_.begin(), includeStack_.end(), key) !=
        includeStack_.end()) {
      fail(diag::codes::kIncludeCycle, ll.line,
           "cyclic include of '" + full.string() + "'");
    }
    if (includeStack_.size() >= kMaxIncludeDepth) {
      fail(diag::codes::kIncludeDepth, ll.line,
           "include depth exceeds " + std::to_string(kMaxIncludeDepth));
    }
    std::ifstream in(full);
    if (fault::shouldFail("spectre.open") || !in) {
      fail(diag::codes::kIncludeMissing, ll.line,
           "cannot open include file '" + full.string() + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    includeStack_.push_back(key);
    const std::string outerFile = std::exchange(file_, full.string());
    try {
      parseText(buf.str(), full.parent_path().string());
    } catch (...) {
      file_ = outerFile;
      includeStack_.pop_back();
      throw;
    }
    file_ = outerFile;
    includeStack_.pop_back();
  }

  Card parseCard(const std::string& text, std::size_t line) {
    Card card;
    const auto open = text.find('(');
    const auto close = text.find(')');
    std::vector<std::string> tail;
    if (open != std::string::npos) {
      if (close == std::string::npos || close < open) {
        fail(diag::codes::kBadCard, line, "unbalanced parentheses");
      }
      const auto head = str::splitTokens(text.substr(0, open));
      if (head.size() != 1) {
        fail(diag::codes::kBadCard, line,
             "expected 'name (nodes...) master ...'");
      }
      card.name = head[0];
      card.nodes = str::splitTokens(text.substr(open + 1, close - open - 1));
      tail = str::splitTokens(text.substr(close + 1));
    } else {
      tail = str::splitTokens(text);
      if (tail.size() < 2) fail(diag::codes::kBadCard, line, "malformed card");
      card.name = tail.front();
      tail.erase(tail.begin());
    }

    // tail: [nodes...] master [k=v...] — k=v tokens terminate the
    // positional part.
    std::vector<std::string> positional;
    for (const std::string& token : tail) {
      const auto [key, value] = str::splitFirst(token, '=');
      if (!value.empty()) {
        card.params.emplace_back(str::toLower(key), std::string(value));
      } else {
        positional.push_back(token);
      }
    }
    if (card.nodes.empty()) {
      if (positional.empty()) {
        fail(diag::codes::kBadCard, line, "card without a master");
      }
      card.master = positional.back();
      positional.pop_back();
      card.nodes = std::move(positional);
    } else {
      if (positional.size() != 1) {
        fail(diag::codes::kBadCard, line,
             "expected exactly one master after ()");
      }
      card.master = positional[0];
    }
    return card;
  }

  SubcktDef& scope(const LogicalLine& ll) {
    if (inSubckt_) return lib_.mutableSubckt(cur_);
    if (topId_ == kInvalidId) {
      topId_ = lib_.addSubckt("top");
      lib_.setTop(topId_);
    }
    (void)ll;
    return lib_.mutableSubckt(topId_);
  }

  double evalOrFail(const std::string& text, const LogicalLine& ll) {
    const auto v = evalParamValue(text, params_);
    if (!v) {
      fail(diag::codes::kBadParameter, ll.line,
           "cannot evaluate '" + text + "'");
    }
    return *v;
  }

  void parseDeviceOrInstance(const LogicalLine& ll) {
    const Card card = parseCard(ll.text, ll.line);

    if (const auto master = lib_.findSubckt(card.master)) {
      if (!sink_.strict() &&
          card.nodes.size() != lib_.subckt(*master).ports().size()) {
        fail(diag::codes::kPortArity, ll.line,
             "instance '" + card.name + "' connects " +
                 std::to_string(card.nodes.size()) + " nets but '" +
                 card.master + "' has " +
                 std::to_string(lib_.subckt(*master).ports().size()) +
                 " ports");
      }
      SubcktDef& def = scope(ll);
      Instance instance;
      instance.name = card.name;
      instance.master = *master;
      for (const std::string& node : card.nodes) {
        instance.connections.push_back(def.addNet(node));
      }
      if (!card.params.empty()) {
        log::debug() << file_ << ":" << ll.line
                     << ": ignoring instance parameters on '" << card.name
                     << "'";
      }
      def.addInstance(std::move(instance));
      return;
    }

    Device dev;
    dev.name = card.name;
    dev.model = card.master;
    dev.type = spectrePrimitiveType(card.master);
    if (dev.type == DeviceType::kUnknown) {
      fail(diag::codes::kUnknownMaster, ll.line,
           "unknown master '" + card.master +
               "' (subckts must be defined before use)");
    }
    const std::size_t needed = pinCount(dev.type);
    if (card.nodes.size() < (isMos(dev.type) ? 4u : 2u)) {
      fail(diag::codes::kBadCard, ll.line, "too few nodes for '" + card.name +
                                               "' (" + card.master + ")");
    }
    for (const auto& [key, value] : card.params) {
      if (key == "w") {
        dev.params.w = evalOrFail(value, ll);
      } else if (key == "l" && !isCapacitor(dev.type) &&
                 dev.type != DeviceType::kInd) {
        dev.params.l = evalOrFail(value, ll);
      } else if (key == "l" && dev.type == DeviceType::kInd) {
        dev.params.value = evalOrFail(value, ll);
      } else if (key == "nf" || key == "fingers") {
        dev.params.nf = static_cast<int>(evalOrFail(value, ll));
      } else if (key == "m" || key == "mult") {
        dev.params.m = static_cast<int>(evalOrFail(value, ll));
      } else if (key == "r" || key == "c" || key == "val") {
        dev.params.value = evalOrFail(value, ll);
      } else if (key == "layers" || key == "lay") {
        dev.params.layers = static_cast<int>(evalOrFail(value, ll));
      } else {
        log::debug() << file_ << ":" << ll.line << ": ignoring parameter '"
                     << key << "'";
      }
    }
    SubcktDef& def = scope(ll);
    const auto funcs = pinFunctions(dev.type);
    for (std::size_t i = 0; i < needed && i < card.nodes.size(); ++i) {
      dev.pins.push_back({funcs[i], def.addNet(card.nodes[i])});
    }
    def.addDevice(std::move(dev));
  }

  std::string file_;
  diag::DiagnosticSink& sink_;
  Library lib_;
  ParamEnv params_;
  bool inSubckt_ = false;
  bool skipUntilEnds_ = false;
  std::size_t subcktLine_ = 0;
  SubcktId cur_ = kInvalidId;
  SubcktId topId_ = kInvalidId;
  std::vector<std::string> includeStack_;
};

Library parseSpectreText(std::string_view text, std::string_view fileName,
                         diag::DiagnosticSink& sink) {
  const trace::TraceSpan span("parse.spectre");
  return SpectreParser(fileName, sink).run(text, ".");
}

Library parseSpectreFromFile(const std::filesystem::path& path,
                             diag::DiagnosticSink& sink) {
  const trace::TraceSpan span("parse.spectre");
  std::ifstream in(path);
  if (fault::shouldFail("spectre.open") || !in) {
    sink.error(diag::codes::kIoFailure, path.string(), 0, "cannot open file");
    return Library{};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  SpectreParser parser(path.string(), sink);
  parser.pushRootFile(includeKey(path));
  return parser.run(buf.str(), path.parent_path().string());
}

/// True when `path` should be parsed as Spectre (extension or header
/// sniff). Reports an open failure into `sink` via the return flag.
bool sniffSpectre(const std::filesystem::path& path, bool& openFailed) {
  openFailed = false;
  if (str::toLower(path.extension().string()) == ".scs") return true;
  std::ifstream in(path);
  if (!in) {
    openFailed = true;
    return false;
  }
  std::string firstLines;
  std::string line;
  for (int i = 0; i < 10 && std::getline(in, line); ++i) {
    firstLines += str::toLower(line) + "\n";
  }
  return firstLines.find("simulator lang=spectre") != std::string::npos;
}

}  // namespace

Library parseSpectre(std::string_view text, std::string_view fileName) {
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kStrict);
  return parseSpectreText(text, fileName, sink);
}

Library parseSpectreFile(const std::filesystem::path& path) {
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kStrict);
  return parseSpectreFromFile(path, sink);
}

diag::Parsed<Library> parseSpectreRecovering(std::string_view text,
                                             std::string_view fileName) {
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  diag::Parsed<Library> out;
  out.value = parseSpectreText(text, fileName, sink);
  out.diagnostics = sink.take();
  return out;
}

diag::Parsed<Library> parseSpectreFileRecovering(
    const std::filesystem::path& path) {
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  diag::Parsed<Library> out;
  out.value = parseSpectreFromFile(path, sink);
  out.diagnostics = sink.take();
  return out;
}

Library parseNetlistFile(const std::filesystem::path& path) {
  bool openFailed = false;
  if (sniffSpectre(path, openFailed)) return parseSpectreFile(path);
  if (openFailed) throw ParseError(path.string(), 0, "cannot open file");
  return parseSpiceFile(path);
}

diag::Parsed<Library> parseNetlistFileRecovering(
    const std::filesystem::path& path) {
  bool openFailed = false;
  if (sniffSpectre(path, openFailed)) return parseSpectreFileRecovering(path);
  if (openFailed) {
    diag::Parsed<Library> out;
    out.diagnostics.push_back(
        diag::Diagnostic{diag::Severity::kError,
                         std::string(diag::codes::kIoFailure), path.string(),
                         0, "cannot open file"});
    return out;
  }
  return parseSpiceFileRecovering(path);
}

}  // namespace ancstr
