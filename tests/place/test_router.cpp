#include "place/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ancstr::place {
namespace {

bool contains(const std::vector<GridPoint>& cells, const GridPoint& p) {
  return std::find(cells.begin(), cells.end(), p) != cells.end();
}

/// Cells of a routed net form a connected set covering the terminals.
void expectConnectedCovering(const RoutedNet& net,
                             const std::vector<GridPoint>& terminals) {
  for (const GridPoint& t : terminals) {
    EXPECT_TRUE(contains(net.cells, t)) << net.name;
  }
  // Flood fill over the net's own cells.
  ASSERT_FALSE(net.cells.empty());
  std::set<std::pair<int, int>> remaining;
  for (const GridPoint& p : net.cells) remaining.insert({p.x, p.y});
  std::vector<GridPoint> stack{net.cells.front()};
  remaining.erase({net.cells.front().x, net.cells.front().y});
  while (!stack.empty()) {
    const GridPoint cur = stack.back();
    stack.pop_back();
    const GridPoint neighbors[4] = {{cur.x + 1, cur.y},
                                    {cur.x - 1, cur.y},
                                    {cur.x, cur.y + 1},
                                    {cur.x, cur.y - 1}};
    for (const GridPoint& n : neighbors) {
      const auto it = remaining.find({n.x, n.y});
      if (it != remaining.end()) {
        remaining.erase(it);
        stack.push_back(n);
      }
    }
  }
  EXPECT_TRUE(remaining.empty()) << net.name << " path is disconnected";
}

TEST(Router, TwoTerminalManhattanPath) {
  std::vector<RouteNet> nets{{"n1", {{1, 1}, {6, 4}}}};
  const RoutingResult result = routeNets(10, 10, nets, {});
  ASSERT_TRUE(result.success());
  expectConnectedCovering(result.nets[0], nets[0].terminals);
  // Shortest Manhattan tree: |dx| + |dy| + 1 cells.
  EXPECT_EQ(result.nets[0].cells.size(), 9u);
  EXPECT_EQ(result.wirelength, 9u);
}

TEST(Router, MultiTerminalTree) {
  std::vector<RouteNet> nets{{"n1", {{0, 0}, {8, 0}, {4, 6}}}};
  const RoutingResult result = routeNets(12, 12, nets, {});
  ASSERT_TRUE(result.success());
  expectConnectedCovering(result.nets[0], nets[0].terminals);
  // A tree reuses trunk cells: strictly fewer than 3 separate 2-pin paths.
  EXPECT_LT(result.nets[0].cells.size(), 9u + 7u);
}

TEST(Router, CongestionForcesDetours) {
  // Two nets with identical terminals: the shared terminal cells are
  // unavoidable, but a heavy congestion cost makes the second net detour
  // around the first everywhere else.
  std::vector<RouteNet> nets{{"n0", {{0, 4}, {9, 4}}},
                             {"n1", {{0, 4}, {9, 4}}}};
  RouterOptions options;
  options.capacity = 1;
  options.congestionCost = 100.0;
  const RoutingResult result = routeNets(10, 10, nets, {}, options);
  ASSERT_TRUE(result.success());
  std::set<std::pair<int, int>> first;
  for (const GridPoint& p : result.nets[0].cells) first.insert({p.x, p.y});
  std::size_t shared = 0;
  for (const GridPoint& p : result.nets[1].cells) {
    shared += first.count({p.x, p.y});
  }
  EXPECT_EQ(shared, 2u) << "only the common terminals may be shared";
  EXPECT_EQ(result.overflows, 2u);
}

TEST(Router, CapacityTwoAbsorbsSharedCells) {
  std::vector<RouteNet> nets{{"n0", {{0, 4}, {9, 4}}},
                             {"n1", {{0, 4}, {9, 4}}}};
  RouterOptions options;
  options.capacity = 2;
  const RoutingResult result = routeNets(10, 10, nets, {}, options);
  ASSERT_TRUE(result.success());
  EXPECT_EQ(result.overflows, 0u);
}

TEST(Router, SymmetricPairIsMirrored) {
  RouterOptions options;
  options.axisX = 5;
  std::vector<RouteNet> nets{
      {"left", {{1, 1}, {3, 6}}},
      {"right", {{9, 1}, {7, 6}}},  // exact mirrors about x = 5
  };
  const RoutingResult result = routeNets(11, 8, nets, {{0, 1}}, options);
  ASSERT_TRUE(result.success());
  EXPECT_FALSE(result.nets[0].mirrored);
  EXPECT_TRUE(result.nets[1].mirrored);
  ASSERT_EQ(result.nets[0].cells.size(), result.nets[1].cells.size());
  for (const GridPoint& p : result.nets[0].cells) {
    EXPECT_TRUE(contains(result.nets[1].cells, mirrorPoint(p, 5)));
  }
}

TEST(Router, NonMirrorTerminalsFallBackToIndependentRouting) {
  RouterOptions options;
  options.axisX = 5;
  std::vector<RouteNet> nets{
      {"left", {{1, 1}, {3, 6}}},
      {"right", {{9, 2}, {7, 6}}},  // y mismatch: not a mirror
  };
  const RoutingResult result = routeNets(11, 8, nets, {{0, 1}}, options);
  ASSERT_TRUE(result.success());
  EXPECT_FALSE(result.nets[1].mirrored);
  expectConnectedCovering(result.nets[1], nets[1].terminals);
}

TEST(Router, OutOfBoundsTerminalFails) {
  std::vector<RouteNet> nets{{"n1", {{0, 0}, {50, 50}}}};
  const RoutingResult result = routeNets(10, 10, nets, {});
  EXPECT_EQ(result.failedNets, 1u);
  EXPECT_FALSE(result.success());
}

TEST(Router, SingleTerminalNetIsTrivial) {
  std::vector<RouteNet> nets{{"n1", {{2, 2}}}};
  const RoutingResult result = routeNets(5, 5, nets, {});
  EXPECT_TRUE(result.success());
  EXPECT_TRUE(result.nets[0].cells.empty());
}

TEST(Router, MirrorPointMath) {
  EXPECT_EQ(mirrorPoint({3, 7}, 5), (GridPoint{7, 7}));
  EXPECT_EQ(mirrorPoint({5, 0}, 5), (GridPoint{5, 0}));
  EXPECT_EQ(mirrorPoint({0, 2}, 2), (GridPoint{4, 2}));
}

TEST(Router, DeterministicResults) {
  std::vector<RouteNet> nets{{"a", {{0, 0}, {7, 7}}},
                             {"b", {{7, 0}, {0, 7}}}};
  const RoutingResult r1 = routeNets(8, 8, nets, {});
  const RoutingResult r2 = routeNets(8, 8, nets, {});
  ASSERT_EQ(r1.nets.size(), r2.nets.size());
  for (std::size_t i = 0; i < r1.nets.size(); ++i) {
    EXPECT_EQ(r1.nets[i].cells, r2.nets[i].cells);
  }
}

}  // namespace
}  // namespace ancstr::place
