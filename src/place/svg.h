// SVG rendering of placement solutions — the visual counterpart of the
// paper's Fig. 1 layout comparison. Matched pairs share a colour; the
// symmetry axis is drawn as a dashed line.
#pragma once

#include <string>

#include "place/placement.h"

namespace ancstr::place {

struct SvgOptions {
  double scale = 12.0;   ///< pixels per micron
  double margin = 20.0;  ///< canvas margin in pixels
  bool labels = true;    ///< draw cell names
};

/// Renders the placement as a standalone SVG document.
std::string renderSvg(const PlacementProblem& problem,
                      const PlacementSolution& solution,
                      const SvgOptions& options = {});

/// Renders to a file. Throws Error on I/O failure.
void writeSvgFile(const PlacementProblem& problem,
                  const PlacementSolution& solution, const std::string& path,
                  const SvgOptions& options = {});

}  // namespace ancstr::place
