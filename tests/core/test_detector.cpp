#include "core/detector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

#include "core/features.h"
#include "core/trainer.h"
#include "netlist/builder.h"

namespace ancstr {
namespace {

TEST(SystemThreshold, Eq4Behaviour) {
  // Small designs: threshold saturates at 0.999.
  EXPECT_DOUBLE_EQ(systemThreshold(0.95, 0.95, 0), 0.999);
  // Large designs: approaches alpha.
  EXPECT_NEAR(systemThreshold(0.95, 0.95, 1000), 0.95 + 0.95 / 1001.0, 1e-12);
  // Monotone non-increasing in subcircuit size.
  double prev = 1.0;
  for (std::size_t n : {0u, 1u, 5u, 20u, 100u, 1000u}) {
    const double th = systemThreshold(0.95, 0.95, n);
    EXPECT_LE(th, prev);
    prev = th;
  }
}

struct DetectorSetup {
  Library lib;
  FlatDesign design;
  nn::Matrix z;
};

/// Two identical blocks + one different block + matched device pair.
DetectorSetup makeSetup() {
  NetlistBuilder b;
  b.beginSubckt("dac_a", {"in", "out", "vss"});
  b.res("r1", "in", "out", 1e3);
  b.cap("c1", "out", "vss", 1e-15);
  b.endSubckt();
  b.beginSubckt("dac_b", {"in", "out", "vss"});
  b.res("r1", "in", "out", 9e3);
  b.cap("c1", "out", "vss", 9e-15);
  b.endSubckt();
  b.beginSubckt("top", {"i1", "i2", "o", "vss"});
  b.inst("xp", "dac_a", {"i1", "o", "vss"});
  b.inst("xn", "dac_a", {"i2", "o", "vss"});
  b.inst("xq", "dac_b", {"o", "o2", "vss"});
  b.nmos("m1", "o", "i1", "vss", "vss", 1e-6, 0.1e-6);
  b.nmos("m2", "o", "i2", "vss", "vss", 1e-6, 0.1e-6);
  b.nmos("m3", "o2", "o", "vss", "vss", 8e-6, 0.3e-6);
  b.endSubckt();
  Library lib = b.build("top");
  FlatDesign design = FlatDesign::elaborate(lib);
  DetectorSetup s{std::move(lib), std::move(design), {}};
  // Hand-crafted embeddings: matched devices identical; differently sized
  // devices point in measurably different directions (log-compressed value
  // so cosine actually separates them).
  s.z = nn::Matrix(s.design.devices().size(), 4);
  for (std::size_t r = 0; r < s.z.rows(); ++r) {
    const FlatDevice& dev = s.design.device(r);
    double typeCode = 1.0;
    double sizing = dev.params.w * 1e6;
    if (dev.type == DeviceType::kResPoly) {
      typeCode = 2.0;
      sizing = std::log10(1.0 + dev.params.value);
    } else if (dev.type == DeviceType::kCapMom) {
      typeCode = 3.0;
      sizing = std::log10(1.0 + dev.params.value * 1e15);
    }
    s.z(r, 0) = typeCode;
    s.z(r, 1) = sizing;
    s.z(r, 2) = 0.1;
    // Perturb m3 so it cannot match m1/m2 (it differs in sizing anyway).
    if (dev.path == "m3") s.z(r, 3) = 10.0;
  }
  return s;
}

TEST(Detector, AcceptsIdenticalBlockPairOnly) {
  DetectorSetup s = makeSetup();
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{});
  bool xpxn = false;
  for (const ScoredCandidate& c : result.scored) {
    if (c.pair.a.kind != ModuleKind::kBlock) continue;
    const bool isPair = (c.pair.nameA == "xp" && c.pair.nameB == "xn");
    if (isPair) {
      xpxn = true;
      EXPECT_TRUE(c.accepted);
      EXPECT_NEAR(c.similarity, 1.0, 1e-9);
    } else {
      // xp/xq and xn/xq differ in sizing -> must be rejected.
      EXPECT_FALSE(c.accepted) << c.pair.nameA << "/" << c.pair.nameB;
    }
  }
  EXPECT_TRUE(xpxn);
}

TEST(Detector, DeviceThresholdSeparatesPairs) {
  DetectorSetup s = makeSetup();
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{});
  for (const ScoredCandidate& c : result.scored) {
    if (c.pair.a.kind != ModuleKind::kDevice) continue;
    if (c.pair.nameA == "m1" && c.pair.nameB == "m2") {
      EXPECT_TRUE(c.accepted);
    }
    if (c.pair.nameB == "m3" || c.pair.nameA == "m3") {
      EXPECT_FALSE(c.accepted);
    }
  }
}

TEST(Detector, ScoredCoversAllCandidates) {
  DetectorSetup s = makeSetup();
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{});
  const CandidateSet candidates = enumerateCandidates(s.design, s.lib);
  EXPECT_EQ(result.scored.size(), candidates.pairs.size());
}

TEST(Detector, ThresholdsReported) {
  DetectorSetup s = makeSetup();
  DetectorConfig config;
  config.deviceThreshold = 0.5;
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, config);
  EXPECT_DOUBLE_EQ(result.deviceThreshold, 0.5);
  EXPECT_DOUBLE_EQ(
      result.systemThreshold,
      systemThreshold(config.alpha, config.beta, s.design.maxSubcircuitSize()));
}

TEST(Detector, ConstraintsSubsetOfScored) {
  DetectorSetup s = makeSetup();
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{});
  const auto pairs = result.set.ofType(ConstraintType::kSymmetryPair);
  std::size_t accepted = 0;
  for (const ScoredCandidate& c : result.scored) accepted += c.accepted;
  EXPECT_EQ(pairs.size(), accepted);
  // Every registry pair record carries the score of an accepted candidate.
  for (const Constraint* c : pairs) {
    bool found = false;
    for (const ScoredCandidate& s : result.scored) {
      if (s.accepted && s.pair.nameA == c->members[0].name &&
          s.pair.nameB == c->members[1].name &&
          s.similarity == c->score) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Detector, LocalBlockEmbeddingsIgnoreInstanceContext) {
  // Two identical blocks in very different surroundings: the local
  // (Algorithm-2-on-G_t) block embedding must still call them identical,
  // while whole-design embeddings see the context difference.
  NetlistBuilder b;
  b.beginSubckt("rc", {"in", "out", "vss"});
  b.res("r1", "in", "out", 1e3);
  b.cap("c1", "out", "vss", 1e-15);
  b.endSubckt();
  b.beginSubckt("top", {"a", "bnet", "vss"});
  b.inst("x1", "rc", {"a", "o1", "vss"});
  b.inst("x2", "rc", {"bnet", "o2", "vss"});
  // Heavy asymmetric context on x1's output only.
  b.res("rl1", "o1", "l1", 2e3);
  b.res("rl2", "l1", "l2", 2e3);
  b.cap("cl1", "l2", "vss", 5e-15);
  b.cap("cl2", "o1", "l1", 5e-15);
  b.endSubckt();
  const Library lib = b.build("top");
  const FlatDesign design = FlatDesign::elaborate(lib);

  Rng rng(3);
  const GnnModel model(GnnConfig{}, rng);
  const CircuitGraph g = buildHeteroGraph(design);
  const PreparedGraph prepared =
      prepareGraph(g, buildFeatureMatrix(design));
  const nn::Matrix z = model.embed(prepared);

  auto pairSimilarity = [&](bool local) {
    DetectorConfig config;
    config.localBlockEmbeddings = local;
    const BlockEmbeddingContext context{model, FeatureConfig{}};
    const DetectionResult result =
        detectConstraints(design, lib, z, config, context);
    for (const ScoredCandidate& c : result.scored) {
      if (c.pair.a.kind == ModuleKind::kBlock) return c.similarity;
    }
    return -1.0;
  };
  EXPECT_NEAR(pairSimilarity(true), 1.0, 1e-9);
  EXPECT_LT(pairSimilarity(false), 1.0 - 1e-6);
}

TEST(Detector, LocalEmbeddingsStillRejectSizingTraps) {
  NetlistBuilder b;
  b.beginSubckt("rc_a", {"in", "out", "vss"});
  b.res("r1", "in", "out", 1e3);
  b.cap("c1", "out", "vss", 1e-15);
  b.endSubckt();
  b.beginSubckt("rc_b", {"in", "out", "vss"});
  b.res("r1", "in", "out", 8e3);  // same topology, 8x sizing
  b.cap("c1", "out", "vss", 8e-15);
  b.endSubckt();
  b.beginSubckt("top", {"a", "bnet", "vss"});
  b.inst("x1", "rc_a", {"a", "o1", "vss"});
  b.inst("x2", "rc_b", {"bnet", "o2", "vss"});
  b.endSubckt();
  const Library lib = b.build("top");
  const FlatDesign design = FlatDesign::elaborate(lib);
  Rng rng(4);
  const GnnModel model(GnnConfig{}, rng);
  const PreparedGraph prepared = prepareGraph(
      buildHeteroGraph(design), buildFeatureMatrix(design));
  const nn::Matrix z = model.embed(prepared);
  const BlockEmbeddingContext context{model, FeatureConfig{}};
  const DetectionResult result =
      detectConstraints(design, lib, z, DetectorConfig{}, context);
  for (const ScoredCandidate& c : result.scored) {
    if (c.pair.a.kind == ModuleKind::kBlock) {
      EXPECT_FALSE(c.accepted) << "8x sizing mismatch must not match";
      EXPECT_LT(c.similarity, 0.5);
    }
  }
}

TEST(Detector, EmbeddingRowMismatchThrows) {
  DetectorSetup s = makeSetup();
  EXPECT_THROW(
      detectConstraints(s.design, s.lib, nn::Matrix(2, 4), DetectorConfig{}),
      ShapeError);
}

}  // namespace
}  // namespace ancstr
