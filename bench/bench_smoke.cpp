// CI smoke benchmark: small synthetic circuits, seconds per case, meant
// to be run with --reps 3 --warmup 1 at threads 1 and 4 (the bench-smoke
// CI job). Produces the full BENCH.json surface — wall stats, pipeline
// phase breakdown, metrics delta, resource usage — cheaply enough to gate
// every push via scripts/compare_bench.py.
#include "circuits/synthetic.h"
#include "core/constraint_io.h"
#include "core/pipeline.h"
#include "harness.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

PipelineConfig smokeConfig(BenchContext& ctx) {
  PipelineConfig config;
  config.train.epochs = 3;
  config.seed = ctx.caseSeed();
  config.threads = ctx.threads();
  return config;
}

/// Pipeline trained once per (thread count) run and reused by the
/// extraction cases, so they measure extraction rather than training.
Pipeline& trainedPipeline(BenchContext& ctx) {
  static circuits::CircuitBenchmark bench = circuits::makeDiffChain(8);
  static Pipeline pipeline = [&] {
    PipelineConfig config;
    config.train.epochs = 3;
    config.threads = ctx.threads();
    Pipeline p(config);
    p.train({&bench.lib});
    return p;
  }();
  return pipeline;
}

void trainCase(BenchContext& ctx) {
  const circuits::CircuitBenchmark bench = circuits::makeDiffChain(8);
  Pipeline pipeline(smokeConfig(ctx));
  const TrainReport report = pipeline.train({&bench.lib});
  ctx.setReport(report.report);
  ctx.setCounter("epochs", 3);
  ctx.setCounter("final_loss", report.finalLoss());
}

void extractChainCase(BenchContext& ctx) {
  static const circuits::CircuitBenchmark bench = circuits::makeDiffChain(8);
  const ExtractionResult result = trainedPipeline(ctx).extract(bench.lib);
  ctx.setReport(result.report);
  ctx.setCounter("candidates",
                 static_cast<double>(result.detection.scored.size()));
}

void extractArrayCase(BenchContext& ctx) {
  static const circuits::CircuitBenchmark bench = circuits::makeBlockArray(4);
  const ExtractionResult result = trainedPipeline(ctx).extract(bench.lib);
  ctx.setReport(result.report);
  ctx.setCounter("candidates",
                 static_cast<double>(result.detection.scored.size()));
}

void extractMirrorBankCase(BenchContext& ctx) {
  // Current-mirror detection + ALIGN export on the synthetic mirror banks.
  // The candidate count is topology-driven (3 per bank), independent of
  // model weights, so CI gates the detector.mirror.* counters hard.
  static const circuits::CircuitBenchmark bench = circuits::makeMirrorBank(4);
  const ExtractionResult result = trainedPipeline(ctx).extract(bench.lib);
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const std::string align =
      constraintSetToAlignJson(design, result.detection.set);
  ctx.setReport(result.report);
  ctx.setCounter("detector.mirror.candidates",
                 static_cast<double>(result.detection.mirrorScored.size()));
  ctx.setCounter(
      "detector.mirror.accepted",
      static_cast<double>(
          result.detection.set.count(ConstraintType::kCurrentMirror)));
  ctx.setCounter("constraints.exported",
                 static_cast<double>(result.detection.set.size()));
  ctx.setCounter("align_bytes", static_cast<double>(align.size()));
}

[[maybe_unused]] const bool kRegistered = [] {
  registerBench("smoke.train.diff_chain8", trainCase);
  registerBench("smoke.extract.diff_chain8", extractChainCase);
  registerBench("smoke.extract.block_array4", extractArrayCase);
  registerBench("smoke.extract.mirror_bank4", extractMirrorBankCase);
  return true;
}();

}  // namespace

ANCSTR_BENCH_MAIN("bench_smoke")
