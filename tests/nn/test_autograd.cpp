// Gradient checks for every autograd op: analytic gradients from the tape
// are compared against central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/init.h"
#include "nn/tensor.h"
#include "util/error.h"
#include "util/rng.h"

namespace ancstr::nn {
namespace {

/// Central-difference gradient of f(params) wrt params[which](r, c).
double numericalGrad(const std::vector<Tensor>& params, std::size_t which,
                     std::size_t r, std::size_t c,
                     const std::function<Tensor()>& f, double eps = 1e-6) {
  Matrix base = params[which].value();
  Matrix plus = base;
  plus(r, c) += eps;
  const_cast<Tensor&>(params[which]).setValue(plus);
  const double up = f().value()(0, 0);
  Matrix minus = base;
  minus(r, c) -= eps;
  const_cast<Tensor&>(params[which]).setValue(minus);
  const double down = f().value()(0, 0);
  const_cast<Tensor&>(params[which]).setValue(base);
  return (up - down) / (2.0 * eps);
}

/// Checks every entry of every parameter against finite differences.
void checkGradients(const std::vector<Tensor>& params,
                    const std::function<Tensor()>& f, double tol = 1e-5) {
  for (const Tensor& p : params) const_cast<Tensor&>(p).zeroGrad();
  Tensor loss = f();
  loss.backward();
  for (std::size_t k = 0; k < params.size(); ++k) {
    const Matrix& grad = params[k].grad();
    ASSERT_FALSE(grad.empty()) << "param " << k << " got no gradient";
    for (std::size_t r = 0; r < grad.rows(); ++r) {
      for (std::size_t c = 0; c < grad.cols(); ++c) {
        const double expected = numericalGrad(params, k, r, c, f);
        EXPECT_NEAR(grad(r, c), expected, tol)
            << "param " << k << " entry (" << r << "," << c << ")";
      }
    }
  }
}

Tensor randomParam(std::size_t rows, std::size_t cols, Rng& rng) {
  return Tensor::param(uniform(rows, cols, -1.0, 1.0, rng));
}

TEST(Autograd, MatmulGradient) {
  Rng rng(1);
  Tensor a = randomParam(3, 4, rng);
  Tensor b = randomParam(4, 2, rng);
  checkGradients({a, b}, [&] { return sumAll(matmul(a, b)); });
}

TEST(Autograd, AddSubGradient) {
  Rng rng(2);
  Tensor a = randomParam(3, 3, rng);
  Tensor b = randomParam(3, 3, rng);
  checkGradients({a, b}, [&] {
    return sumAll(sub(add(a, b), hadamard(a, b)));
  });
}

TEST(Autograd, HadamardGradient) {
  Rng rng(3);
  Tensor a = randomParam(2, 5, rng);
  Tensor b = randomParam(2, 5, rng);
  checkGradients({a, b}, [&] { return sumAll(hadamard(a, b)); });
}

TEST(Autograd, ScaleGradient) {
  Rng rng(4);
  Tensor a = randomParam(2, 3, rng);
  checkGradients({a}, [&] { return sumAll(scale(a, -2.5)); });
}

TEST(Autograd, SigmoidGradient) {
  Rng rng(5);
  Tensor a = randomParam(3, 3, rng);
  checkGradients({a}, [&] { return sumAll(sigmoid(a)); });
}

TEST(Autograd, TanhGradient) {
  Rng rng(6);
  Tensor a = randomParam(3, 3, rng);
  checkGradients({a}, [&] { return sumAll(tanh(a)); });
}

TEST(Autograd, LogSigmoidGradient) {
  Rng rng(7);
  Tensor a = randomParam(3, 3, rng);
  checkGradients({a}, [&] { return sumAll(logSigmoid(a)); });
}

TEST(Autograd, LogSigmoidStableForLargeNegatives) {
  Tensor a = Tensor::param(Matrix(1, 2, std::vector<double>{-500.0, 500.0}));
  Tensor out = logSigmoid(a);
  EXPECT_NEAR(out.value()(0, 0), -500.0, 1e-9);
  EXPECT_NEAR(out.value()(0, 1), 0.0, 1e-9);
  Tensor loss = sumAll(out);
  loss.backward();
  EXPECT_TRUE(std::isfinite(a.grad()(0, 0)));
  EXPECT_NEAR(a.grad()(0, 0), 1.0, 1e-9);   // d/dx ~ 1 - sigmoid(-500)
  EXPECT_NEAR(a.grad()(0, 1), 0.0, 1e-9);
}

TEST(Autograd, OneMinusGradient) {
  Rng rng(8);
  Tensor a = randomParam(2, 2, rng);
  checkGradients({a}, [&] { return sumAll(hadamard(oneMinus(a), a)); });
}

TEST(Autograd, AddRowGradient) {
  Rng rng(9);
  Tensor a = randomParam(4, 3, rng);
  Tensor bias = randomParam(1, 3, rng);
  checkGradients({a, bias}, [&] { return sumAll(sigmoid(addRow(a, bias))); });
}

TEST(Autograd, GatherRowsGradient) {
  Rng rng(10);
  Tensor a = randomParam(4, 3, rng);
  // Repeated rows must accumulate.
  checkGradients({a}, [&] {
    return sumAll(hadamard(gatherRows(a, {0, 2, 0, 3}),
                           gatherRows(a, {1, 1, 2, 0})));
  });
}

TEST(Autograd, RowScaleGradient) {
  Rng rng(21);
  Tensor a = randomParam(3, 4, rng);
  checkGradients({a}, [&] {
    return sumAll(sigmoid(rowScale(a, {0.5, -2.0, 3.0})));
  });
}

TEST(Autograd, RowScaleShapeChecked) {
  Tensor a = Tensor::param(Matrix(3, 2));
  EXPECT_THROW(rowScale(a, {1.0, 2.0}), ShapeError);
}

TEST(Autograd, RowSumGradient) {
  Rng rng(11);
  Tensor a = randomParam(3, 4, rng);
  checkGradients({a}, [&] { return sumAll(sigmoid(rowSum(a))); });
}

TEST(Autograd, SpmmGradient) {
  Rng rng(12);
  SparseMatrix adj(3, 3,
                   {{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 1.0}, {0, 2, 1.0}});
  Tensor h = randomParam(3, 4, rng);
  checkGradients({h}, [&] { return sumAll(tanh(spmm(adj, h))); });
}

TEST(Autograd, CompositeExpressionGradient) {
  Rng rng(13);
  Tensor w1 = randomParam(3, 3, rng);
  Tensor w2 = randomParam(3, 3, rng);
  Tensor x = randomParam(2, 3, rng);
  checkGradients({w1, w2, x}, [&] {
    Tensor h = tanh(matmul(x, w1));
    Tensor g = sigmoid(matmul(h, w2));
    return sumAll(hadamard(g, h));
  });
}

TEST(Autograd, ReusedNodeAccumulatesOnce) {
  // f(a) = sum(a*a + a) -> grad = 2a + 1
  Tensor a = Tensor::param(Matrix(1, 1, std::vector<double>{3.0}));
  Tensor loss = sumAll(add(hadamard(a, a), a));
  loss.backward();
  EXPECT_NEAR(a.grad()(0, 0), 7.0, 1e-12);
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor a = Tensor::param(Matrix(2, 2));
  EXPECT_THROW(a.backward(), ShapeError);
}

TEST(Autograd, ConstantsGetNoGradient) {
  Tensor c = Tensor::constant(Matrix(2, 2, 1.0));
  Tensor p = Tensor::param(Matrix(2, 2, 2.0));
  Tensor loss = sumAll(hadamard(c, p));
  loss.backward();
  EXPECT_TRUE(c.grad().empty());
  EXPECT_FALSE(p.grad().empty());
}

}  // namespace
}  // namespace ancstr::nn
