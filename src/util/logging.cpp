#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <utility>

#include "util/metrics.h"

namespace ancstr::log {
namespace {

// The level gate lives outside the Logger mutex so a filtered-out log()
// costs one relaxed load. configure()/setLevel() keep it in sync with
// LoggerConfig::minLevel.
std::atomic<Level> g_level{Level::kWarn};

const char* levelTag(Level lvl) {
  switch (lvl) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}

void appendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendFieldValue(std::string& out, const Field& field) {
  if (field.isNumber) {
    char buf[64];
    if (field.isInteger) {
      std::snprintf(buf, sizeof(buf), "%.0f", field.number);
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", field.number);
    }
    out += buf;
  } else {
    out += '"';
    appendJsonEscaped(out, field.text);
    out += '"';
  }
}

std::string renderJson(Level lvl, std::string_view code,
                       std::string_view message,
                       const std::vector<Field>& fields) {
  std::string out = "{\"level\":\"";
  out += levelName(lvl);
  out += "\",\"code\":\"";
  appendJsonEscaped(out, code);
  out += "\",\"msg\":\"";
  appendJsonEscaped(out, message);
  out += '"';
  for (const Field& field : fields) {
    out += ",\"";
    appendJsonEscaped(out, field.key);
    out += "\":";
    appendFieldValue(out, field);
  }
  out += '}';
  return out;
}

std::string renderText(Level lvl, std::string_view code,
                       std::string_view message,
                       const std::vector<Field>& fields) {
  std::string out = "[ancstr ";
  out += levelTag(lvl);
  out += "] ";
  if (!code.empty()) {
    out += code;
    out += ": ";
  }
  out += message;
  if (!fields.empty()) {
    out += " (";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out += ", ";
      out += fields[i].key;
      out += '=';
      if (fields[i].isNumber) {
        char buf[64];
        if (fields[i].isInteger) {
          std::snprintf(buf, sizeof(buf), "%.0f", fields[i].number);
        } else {
          std::snprintf(buf, sizeof(buf), "%g", fields[i].number);
        }
        out += buf;
      } else {
        out += fields[i].text;
      }
    }
    out += ')';
  }
  return out;
}

}  // namespace

std::string_view levelName(Level lvl) noexcept {
  switch (lvl) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "unknown";
}

std::optional<Level> parseLevel(std::string_view name) noexcept {
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return std::nullopt;
}

struct Logger::Impl {
  /// Per-code rate-limit window (guarded by mutex).
  struct CodeWindow {
    double windowStart = 0.0;
    std::uint64_t emitted = 0;
    std::uint64_t suppressed = 0;
    Level lastLevel = Level::kWarn;
  };

  mutable std::mutex mutex;
  LoggerConfig config;
  std::ofstream file;
  LoggerStats stats;
  std::map<std::string, CodeWindow, std::less<>> windows;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  double nowSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }

  void openFileLocked() {
    file = std::ofstream();
    if (!config.filePath.empty()) {
      file.open(config.filePath, std::ios::app);
      if (!file.is_open()) ++stats.fileWriteFailures;
    }
  }

  /// Writes one rendered line to the configured sinks. Caller holds mutex.
  void writeLocked(Level lvl, std::string_view code, std::string_view message,
                   const std::vector<Field>& fields) {
    if (config.toStderr) {
      const std::string line =
          config.format == Format::kJson
              ? renderJson(lvl, code, message, fields)
              : renderText(lvl, code, message, fields);
      std::fprintf(stderr, "%s\n", line.c_str());
    }
    if (file.is_open()) {
      const std::string line = renderJson(lvl, code, message, fields);
      file << line << '\n';
      file.flush();
      if (!file) {
        ++stats.fileWriteFailures;
        file.clear();
      }
    }
    ++stats.emitted;
    metrics::Registry::instance().counter("log.emitted").add();
  }
};

Logger::Logger() : impl_(new Impl) {}

Logger& Logger::instance() {
  // Leaked: see header.
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::configure(LoggerConfig config) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const bool reopen = config.filePath != impl_->config.filePath;
  impl_->config = std::move(config);
  g_level.store(impl_->config.minLevel, std::memory_order_relaxed);
  if (reopen) impl_->openFileLocked();
}

LoggerConfig Logger::config() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->config;
}

void Logger::log(Level lvl, std::string_view code, std::string_view message,
                 std::vector<Field> fields) {
  if (lvl == Level::kOff) return;
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;

  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!code.empty() && impl_->config.maxPerCodeWindow > 0) {
    const double now = impl_->nowSeconds();
    auto it = impl_->windows.find(code);
    if (it == impl_->windows.end()) {
      it = impl_->windows.emplace(std::string(code), Impl::CodeWindow{})
               .first;
      it->second.windowStart = now;
    }
    Impl::CodeWindow& window = it->second;
    if (now - window.windowStart >= impl_->config.rateWindowSeconds) {
      // Window rollover: summarize what the previous window swallowed so
      // a storm leaves a trace of its true size, then start fresh.
      if (window.suppressed > 0) {
        impl_->writeLocked(
            window.lastLevel, code, "suppressed repeated messages",
            {Field("suppressed_count", window.suppressed),
             Field("window_seconds", impl_->config.rateWindowSeconds)});
      }
      window.windowStart = now;
      window.emitted = 0;
      window.suppressed = 0;
    }
    window.lastLevel = lvl;
    if (window.emitted >= impl_->config.maxPerCodeWindow) {
      ++window.suppressed;
      ++impl_->stats.suppressed;
      metrics::Registry::instance().counter("log.suppressed").add();
      return;
    }
    ++window.emitted;
  }
  impl_->writeLocked(lvl, code, message, fields);
}

LoggerStats Logger::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

void Logger::resetRateLimits() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->windows.clear();
}

void log(Level lvl, std::string_view code, std::string_view message,
         std::vector<Field> fields) {
  Logger::instance().log(lvl, code, message, std::move(fields));
}

std::uint64_t nextRequestId() noexcept {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

void setLevel(Level lvl) noexcept {
  g_level.store(lvl, std::memory_order_relaxed);
}

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, const std::string& message) {
  Logger::instance().log(lvl, "", message);
}

}  // namespace ancstr::log
