// SPICE netlist emission: serialises a Library back to .subckt decks so
// generated benchmarks can be round-tripped through the parser and shipped
// as plain-text artefacts.
#pragma once

#include <filesystem>
#include <string>

#include "netlist/netlist.h"

namespace ancstr {

/// Renders the whole library, masters before users, ending with `.end`.
/// Device types are emitted as canonical model names (deviceTypeName).
std::string writeSpice(const Library& lib);

/// Writes writeSpice(lib) to `path`. Throws Error on I/O failure.
void writeSpiceFile(const Library& lib, const std::filesystem::path& path);

}  // namespace ancstr
