// Typed constraint registry (core/constraint.h), current-mirror
// detection, and the detector-config cache salting (core/circuit_hash.h).
#include "core/constraint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/circuit_hash.h"
#include "core/constraint_io.h"
#include "core/detector.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "netlist/builder.h"

namespace ancstr {
namespace {

// ------------------------------------------------------------- registry

TEST(Constraint, TypeNamesRoundTrip) {
  for (const ConstraintType type :
       {ConstraintType::kSymmetryPair, ConstraintType::kSelfSymmetric,
        ConstraintType::kCurrentMirror, ConstraintType::kSymmetryGroup}) {
    const auto back = constraintTypeFromName(constraintTypeName(type));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(constraintTypeFromName("wormhole").has_value());
  EXPECT_FALSE(constraintTypeFromName("").has_value());
}

Constraint makeRecord(ConstraintType type, HierNodeId hier,
                      const std::string& a, const std::string& b,
                      double score = 0.5) {
  Constraint c;
  c.type = type;
  c.hierarchy = hier;
  c.members.push_back({ModuleKind::kDevice, 0, a});
  if (!b.empty()) c.members.push_back({ModuleKind::kDevice, 1, b});
  c.score = score;
  return c;
}

TEST(Constraint, CanonicalOrderIsInsertionIndependent) {
  std::vector<Constraint> records{
      makeRecord(ConstraintType::kCurrentMirror, 1, "mref", "mo1"),
      makeRecord(ConstraintType::kSymmetryPair, 0, "m1", "m2"),
      makeRecord(ConstraintType::kSelfSymmetric, 0, "mt", ""),
      makeRecord(ConstraintType::kSymmetryPair, 1, "r1", "r2"),
  };
  ConstraintSet forward;
  for (const Constraint& c : records) forward.add(c);
  forward.canonicalize();

  std::reverse(records.begin(), records.end());
  ConstraintSet backward;
  for (const Constraint& c : records) backward.add(c);
  backward.canonicalize();

  EXPECT_TRUE(forward == backward);
  // Hierarchy is the primary sort key, then type.
  ASSERT_EQ(forward.size(), 4u);
  EXPECT_EQ(forward.all()[0].hierarchy, 0u);
  EXPECT_EQ(forward.all()[0].type, ConstraintType::kSymmetryPair);
  EXPECT_EQ(forward.all()[1].type, ConstraintType::kSelfSymmetric);
  EXPECT_EQ(forward.all()[2].hierarchy, 1u);
}

TEST(Constraint, OfTypeAndCountAgree) {
  ConstraintSet set;
  set.add(makeRecord(ConstraintType::kSymmetryPair, 0, "a", "b"));
  set.add(makeRecord(ConstraintType::kSymmetryPair, 0, "c", "d"));
  set.add(makeRecord(ConstraintType::kCurrentMirror, 0, "r", "m"));
  set.canonicalize();
  EXPECT_EQ(set.count(ConstraintType::kSymmetryPair), 2u);
  EXPECT_EQ(set.ofType(ConstraintType::kSymmetryPair).size(), 2u);
  EXPECT_EQ(set.count(ConstraintType::kCurrentMirror), 1u);
  EXPECT_EQ(set.count(ConstraintType::kSymmetryGroup), 0u);
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set.size(), 3u);
}

// ----------------------------------------------------- mirror detection

struct MirrorSetup {
  Library lib;
  FlatDesign design;
  nn::Matrix z;
};

/// Diode-connected reference `mref` fanning out to 2x and 4x branches,
/// plus `mx` on an unrelated gate net (not a candidate).
MirrorSetup makeMirrorSetup(double branchLength = 0.4e-6) {
  NetlistBuilder b;
  b.beginSubckt("bank", {"vdd", "vss", "en"});
  b.nmos("mref", "bias", "bias", "vss", "vss", 2e-6, 0.4e-6);
  b.res("rb", "bias", "vdd", 50e3);
  b.nmos("mo1", "o1", "bias", "vss", "vss", 4e-6, branchLength);
  b.nmos("mo2", "o2", "bias", "vss", "vss", 8e-6, branchLength);
  b.nmos("mx", "o3", "en", "vss", "vss", 2e-6, 0.4e-6);
  b.res("r1", "o1", "vdd", 10e3);
  b.res("r2", "o2", "vdd", 10e3);
  b.res("r3", "o3", "vdd", 10e3);
  b.endSubckt();
  Library lib = b.build("bank");
  FlatDesign design = FlatDesign::elaborate(lib);
  MirrorSetup s{std::move(lib), std::move(design), {}};
  // Identical embedding rows: cosine 1 for every device pair. (3, 4, 0)
  // has norm exactly 5, so the self-cosine is exactly 1.0 and the
  // similarity assertions below can demand bitwise values.
  s.z = nn::Matrix(s.design.devices().size(), 3);
  for (std::size_t r = 0; r < s.z.rows(); ++r) {
    s.z(r, 0) = 3.0;
    s.z(r, 1) = 4.0;
    s.z(r, 2) = 0.0;
  }
  return s;
}

FlatDeviceId deviceByName(const FlatDesign& design, const std::string& name) {
  for (FlatDeviceId i = 0; i < design.devices().size(); ++i) {
    if (design.device(i).path == name) return i;
  }
  ADD_FAILURE() << "no device named " << name;
  return 0;
}

TEST(MirrorDetection, DiodeReferenceFansOutWithRatios) {
  const MirrorSetup s = makeMirrorSetup();
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{});
  // Candidates: (mref, mo1) and (mref, mo2) — mx shares neither gate.
  ASSERT_EQ(result.mirrorScored.size(), 2u);
  for (const ScoredCandidate& c : result.mirrorScored) {
    EXPECT_EQ(c.pair.nameA, "mref");
    EXPECT_TRUE(c.accepted) << c.pair.nameB;
    EXPECT_DOUBLE_EQ(c.similarity, 1.0);
  }
  const auto mirrors = result.set.ofType(ConstraintType::kCurrentMirror);
  ASSERT_EQ(mirrors.size(), 2u);
  EXPECT_EQ(mirrors[0]->members[0].name, "mref");
  EXPECT_EQ(mirrors[0]->members[1].name, "mo1");
  EXPECT_DOUBLE_EQ(mirrors[0]->ratio, 2.0);
  EXPECT_EQ(mirrors[1]->members[1].name, "mo2");
  EXPECT_DOUBLE_EQ(mirrors[1]->ratio, 4.0);
}

TEST(MirrorDetection, DissimilarEmbeddingRejectedButStillScored) {
  MirrorSetup s = makeMirrorSetup();
  // Make mo1's embedding orthogonal to mref's (3, 4, 0).
  const FlatDeviceId mo1 = deviceByName(s.design, "mo1");
  s.z(mo1, 0) = 4.0;
  s.z(mo1, 1) = -3.0;
  s.z(mo1, 2) = 0.0;
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{});
  ASSERT_EQ(result.mirrorScored.size(), 2u);  // FPR denominator intact
  EXPECT_EQ(result.set.count(ConstraintType::kCurrentMirror), 1u);
  for (const ScoredCandidate& c : result.mirrorScored) {
    if (c.pair.nameB == "mo1") EXPECT_FALSE(c.accepted);
  }
}

TEST(MirrorDetection, LengthMismatchPenalized) {
  // Branch L = 2x reference L: similarity = 0.5 even with identical
  // embeddings, which does not clear the default 0.5 threshold.
  const MirrorSetup s = makeMirrorSetup(/*branchLength=*/0.8e-6);
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{});
  ASSERT_EQ(result.mirrorScored.size(), 2u);
  for (const ScoredCandidate& c : result.mirrorScored) {
    EXPECT_DOUBLE_EQ(c.similarity, 0.5);
    EXPECT_FALSE(c.accepted);
  }
  EXPECT_EQ(result.set.count(ConstraintType::kCurrentMirror), 0u);
}

TEST(MirrorDetection, DisabledConfigYieldsNoCandidates) {
  const MirrorSetup s = makeMirrorSetup();
  DetectorConfig config;
  config.mirror.enabled = false;
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, config);
  EXPECT_TRUE(result.mirrorScored.empty());
  EXPECT_EQ(result.set.count(ConstraintType::kCurrentMirror), 0u);
}

TEST(MirrorDetection, GateNetDegreeCapSkipsWideNets) {
  const MirrorSetup s = makeMirrorSetup();
  DetectorConfig config;
  config.mirror.maxGateNetDegree = 2;  // bias net has 4+ terminals
  const DetectionResult result =
      detectConstraints(s.design, s.lib, s.z, config);
  EXPECT_TRUE(result.mirrorScored.empty());
}

TEST(MirrorDetection, SerialAndFourThreadsBitwiseIdentical) {
  const MirrorSetup s = makeMirrorSetup();
  const DetectionResult serial =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{}, 1);
  const DetectionResult parallel =
      detectConstraints(s.design, s.lib, s.z, DetectorConfig{}, 4);
  ASSERT_EQ(serial.mirrorScored.size(), parallel.mirrorScored.size());
  for (std::size_t i = 0; i < serial.mirrorScored.size(); ++i) {
    // EXPECT_EQ on double is exact comparison — bitwise, not near.
    EXPECT_EQ(serial.mirrorScored[i].similarity,
              parallel.mirrorScored[i].similarity);
    EXPECT_EQ(serial.mirrorScored[i].accepted,
              parallel.mirrorScored[i].accepted);
    EXPECT_EQ(serial.mirrorScored[i].pair.a, parallel.mirrorScored[i].pair.a);
    EXPECT_EQ(serial.mirrorScored[i].pair.b, parallel.mirrorScored[i].pair.b);
  }
  EXPECT_TRUE(serial.set == parallel.set);
}

// ------------------------------------------------- config cache salting

TEST(DetectorConfigSignature, SensitiveToEveryDetectionKnob) {
  const std::uint64_t base = detectorConfigSignature(DetectorConfig{});
  const auto mutated = [](auto&& mutate) {
    DetectorConfig config;
    mutate(config);
    return detectorConfigSignature(config);
  };
  EXPECT_NE(base, mutated([](DetectorConfig& c) { c.alpha += 0.01; }));
  EXPECT_NE(base, mutated([](DetectorConfig& c) { c.beta += 0.01; }));
  EXPECT_NE(base,
            mutated([](DetectorConfig& c) { c.deviceThreshold += 0.01; }));
  EXPECT_NE(base, mutated([](DetectorConfig& c) { c.embedding.topM += 1; }));
  EXPECT_NE(base,
            mutated([](DetectorConfig& c) { c.embedding.damping += 0.1; }));
  EXPECT_NE(base, mutated([](DetectorConfig& c) {
              c.sizingAwareSimilarity = !c.sizingAwareSimilarity;
            }));
  EXPECT_NE(base, mutated([](DetectorConfig& c) {
              c.localBlockEmbeddings = !c.localBlockEmbeddings;
            }));
  EXPECT_NE(base, mutated([](DetectorConfig& c) {
              c.mirror.enabled = !c.mirror.enabled;
            }));
  EXPECT_NE(base,
            mutated([](DetectorConfig& c) { c.mirror.threshold += 0.1; }));
  EXPECT_NE(base, mutated([](DetectorConfig& c) {
              c.mirror.maxGateNetDegree += 1;
            }));
  // And it is a pure function: same config, same signature.
  EXPECT_EQ(base, detectorConfigSignature(DetectorConfig{}));
}

TEST(DetectorConfigSignature, SaltedKeysAreDisjointAcrossConfigs) {
  const util::StructuralHash h{0x0123456789abcdefull, 0xfedcba9876543210ull};
  DetectorConfig other;
  other.mirror.threshold = 0.9;
  const std::uint64_t saltA = detectorConfigSignature(DetectorConfig{});
  const std::uint64_t saltB = detectorConfigSignature(other);
  ASSERT_NE(saltA, saltB);
  EXPECT_FALSE(withConfigSalt(h, saltA) == withConfigSalt(h, saltB));
  EXPECT_TRUE(withConfigSalt(h, saltA) == withConfigSalt(h, saltA));
  // Salting actually changes the key — raw hashes never collide with
  // salted ones by identity.
  EXPECT_FALSE(withConfigSalt(h, saltA) == h);
}

TEST(Engine, DetectorSaltTracksPipelineConfig) {
  PipelineConfig configA;
  PipelineConfig configB;
  configB.detector.mirror.enabled = false;
  PipelineConfig configC;  // same as A
  Pipeline pipelineA(configA);
  Pipeline pipelineB(configB);
  Pipeline pipelineC(configC);
  const ExtractionEngine engineA(pipelineA);
  const ExtractionEngine engineB(pipelineB);
  const ExtractionEngine engineC(pipelineC);
  EXPECT_NE(engineA.detectorSalt(), engineB.detectorSalt());
  EXPECT_EQ(engineA.detectorSalt(), engineC.detectorSalt());
}

TEST(Engine, CachedExtractionRespectsMirrorConfig) {
  // Same design through two engines whose pipelines differ only in the
  // constraint-type (mirror) configuration: the warm second extract on
  // each engine must keep reporting that engine's own config's results —
  // cached entries never leak across detector configurations.
  const MirrorSetup s = makeMirrorSetup();
  PipelineConfig on;
  on.train.epochs = 4;
  PipelineConfig off = on;
  off.detector.mirror.enabled = false;

  Pipeline withMirrors(on);
  withMirrors.train({&s.lib});
  Pipeline withoutMirrors(off);
  withoutMirrors.train({&s.lib});

  const ExtractionEngine engineOn(withMirrors);
  const ExtractionEngine engineOff(withoutMirrors);
  const ExtractionResult coldOn = engineOn.extract(s.lib);
  const ExtractionResult coldOff = engineOff.extract(s.lib);
  EXPECT_EQ(coldOn.detection.mirrorScored.size(), 2u);
  EXPECT_TRUE(coldOff.detection.mirrorScored.empty());

  const ExtractionResult warmOn = engineOn.extract(s.lib);
  const ExtractionResult warmOff = engineOff.extract(s.lib);
  EXPECT_TRUE(warmOn.detection.set == coldOn.detection.set);
  EXPECT_TRUE(warmOff.detection.set == coldOff.detection.set);
  EXPECT_EQ(engineOn.cacheStats().design.hits, 1u);
  EXPECT_EQ(engineOff.cacheStats().design.hits, 1u);
}

// ------------------------------------------------------- ALIGN export

TEST(AlignExport, GroupsPairsAndMirrors) {
  const MirrorSetup s = makeMirrorSetup();
  DetectionResult detection;
  const CandidateSet candidates = enumerateCandidates(s.design, s.lib);
  for (const CandidatePair& pair : candidates.pairs) {
    ScoredCandidate c;
    c.pair = pair;
    c.similarity = 0.9;
    c.accepted = pair.nameA == "r1" && pair.nameB == "r2";
    detection.scored.push_back(c);
  }
  detection.set = buildConstraintSet(s.design, detection);
  ConstraintSet set = detection.set;
  Constraint mirror = makeRecord(ConstraintType::kCurrentMirror, 0, "mref",
                                 "mo1", /*score=*/1.0);
  mirror.ratio = 2.0;
  set.add(mirror);
  mirror.members[1].name = "mo2";
  mirror.ratio = 4.0;
  set.add(mirror);
  set.canonicalize();
  const std::string align = constraintSetToAlignJson(s.design, set);

  // Golden payload: one SymmetricBlocks entry for the accepted pair, one
  // CurrentMirror entry with both branches grouped under the reference.
  const std::string golden = R"({
  "format": "align-constraints",
  "version": 1,
  "cells": {
    ".": [
      {
        "constraint": "SymmetricBlocks",
        "direction": "V",
        "pairs": [
          [
            "r1",
            "r2"
          ]
        ]
      },
      {
        "constraint": "CurrentMirror",
        "reference": "mref",
        "mirrors": [
          "mo1",
          "mo2"
        ],
        "ratios": [
          2,
          4
        ]
      }
    ]
  }
}
)";
  EXPECT_EQ(align, golden);
}

}  // namespace
}  // namespace ancstr
