// Deterministic random number generation. All stochastic stages of the
// library (weight init, negative sampling, shuffles) draw from an explicit
// Rng instance so runs are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace ancstr {

/// xoshiro256** generator seeded via splitmix64. Small, fast, and good
/// enough statistically for ML-style sampling; never use for crypto.
///
/// An Rng is thread-affine: its state mutates on every draw and carries no
/// synchronisation, so exactly one thread may draw from an instance.
/// Copying is deleted to make accidental stream duplication (two "random"
/// streams silently emitting identical values) and cross-thread sharing
/// via by-value capture impossible. Parallel code must give each worker
/// its own stream, either with fork() or by constructing a fresh Rng from
/// a per-task seed (the trainer derives one per graph from
/// epochSeed ^ graphIndex).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Deterministically derives an independent child stream, advancing this
  /// generator by one draw. The explicit replacement for copying: hand one
  /// fork per worker instead of sharing (or duplicating) a stream.
  Rng fork();

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Standard normal via Box-Muller (cached spare).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

 private:
  std::uint64_t state_[4];
  double spareNormal_ = 0.0;
  bool hasSpare_ = false;
};

}  // namespace ancstr
