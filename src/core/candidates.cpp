#include "core/candidates.h"

#include <cctype>

#include "util/string_utils.h"

namespace ancstr {

std::size_t CandidateSet::count(ConstraintLevel level) const {
  std::size_t n = 0;
  for (const CandidatePair& p : pairs) {
    if (p.level == level) ++n;
  }
  return n;
}

std::string blockCategory(std::string_view masterName) {
  std::string name = str::toLower(masterName);
  // Strip trailing digits: "dac1" -> "dac".
  while (!name.empty() &&
         std::isdigit(static_cast<unsigned char>(name.back()))) {
    name.pop_back();
  }
  // Strip a short trailing "_x"/"_ab" variant suffix: "comp_a" -> "comp".
  const std::size_t us = name.rfind('_');
  if (us != std::string::npos && us > 0 && name.size() - us - 1 <= 2) {
    name.resize(us);
  }
  // Re-strip digits exposed by the suffix removal ("dac_p1" -> "dac_p").
  while (!name.empty() &&
         std::isdigit(static_cast<unsigned char>(name.back()))) {
    name.pop_back();
  }
  return name;
}

namespace {

std::string localDeviceName(const FlatDevice& dev) {
  const std::size_t slash = dev.path.rfind('/');
  return slash == std::string::npos ? dev.path : dev.path.substr(slash + 1);
}

}  // namespace

CandidateSet enumerateCandidates(const FlatDesign& design,
                                 const Library& lib) {
  CandidateSet out;
  for (const HierNode& node : design.hierarchy()) {
    const bool hasBlocks = !node.children.empty();

    // --- block pairs (system-level) ---------------------------------
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      for (std::size_t j = i + 1; j < node.children.size(); ++j) {
        const HierNode& ca = design.node(node.children[i]);
        const HierNode& cb = design.node(node.children[j]);
        const SubcktDef& ma = lib.subckt(ca.master);
        const SubcktDef& mb = lib.subckt(cb.master);
        const bool sameMaster = ca.master == cb.master;
        const bool sameCategory =
            blockCategory(ma.name()) == blockCategory(mb.name()) &&
            ma.ports().size() == mb.ports().size();
        if (!sameMaster && !sameCategory) continue;
        CandidatePair p;
        p.hierarchy = node.id;
        p.level = ConstraintLevel::kSystem;
        p.a = {ModuleKind::kBlock, ca.id};
        p.b = {ModuleKind::kBlock, cb.id};
        p.nameA = ca.instanceName;
        p.nameB = cb.instanceName;
        out.pairs.push_back(std::move(p));
      }
    }

    // --- leaf device pairs -------------------------------------------
    for (std::size_t i = 0; i < node.leafDevices.size(); ++i) {
      for (std::size_t j = i + 1; j < node.leafDevices.size(); ++j) {
        const FlatDevice& da = design.device(node.leafDevices[i]);
        const FlatDevice& db = design.device(node.leafDevices[j]);
        if (da.type != db.type) continue;
        CandidatePair p;
        p.hierarchy = node.id;
        // Passives sitting beside building blocks participate in
        // system-level matching (Section III-A).
        p.level = (hasBlocks && isPassive(da.type))
                      ? ConstraintLevel::kSystem
                      : ConstraintLevel::kDevice;
        p.a = {ModuleKind::kDevice, node.leafDevices[i]};
        p.b = {ModuleKind::kDevice, node.leafDevices[j]};
        p.nameA = localDeviceName(da);
        p.nameB = localDeviceName(db);
        out.pairs.push_back(std::move(p));
      }
    }
  }
  return out;
}

const char* constraintLevelName(ConstraintLevel level) noexcept {
  return level == ConstraintLevel::kSystem ? "system" : "device";
}

}  // namespace ancstr
