#include "circuits/synthetic.h"

#include <gtest/gtest.h>

#include "core/candidates.h"
#include "netlist/flatten.h"

namespace ancstr::circuits {
namespace {

TEST(DiffChain, DeviceCountScalesLinearly) {
  const auto small = makeDiffChain(2);
  const auto large = makeDiffChain(8);
  const std::size_t smallCount =
      FlatDesign::elaborate(small.lib).devices().size();
  const std::size_t largeCount =
      FlatDesign::elaborate(large.lib).devices().size();
  EXPECT_EQ(smallCount, 18u);  // 9 per stage
  EXPECT_EQ(largeCount, 72u);
}

TEST(DiffChain, TruthScalesWithStages) {
  const auto bench = makeDiffChain(4);
  EXPECT_EQ(bench.truth.size(), 16u);  // 4 pairs per stage
}

TEST(DiffChain, TruthEntriesAreValidCandidates) {
  const auto bench = makeDiffChain(3);
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const CandidateSet candidates = enumerateCandidates(design, bench.lib);
  std::size_t matched = 0;
  for (const CandidatePair& p : candidates.pairs) {
    if (bench.truth.matches(design, p)) ++matched;
  }
  EXPECT_EQ(matched, bench.truth.size());
}

TEST(BlockArray, PairsEvenOddInstances) {
  const auto bench = makeBlockArray(6);
  std::size_t systemPairs = 0;
  for (const auto& entry : bench.truth.entries()) {
    if (entry.level == ConstraintLevel::kSystem) ++systemPairs;
  }
  EXPECT_EQ(systemPairs, 3u);  // (0,1) (2,3) (4,5)
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  EXPECT_EQ(design.root().children.size(), 6u);
}

TEST(BlockArray, AllInstancePairsAreCandidates) {
  const auto bench = makeBlockArray(4);
  const FlatDesign design = FlatDesign::elaborate(bench.lib);
  const CandidateSet candidates = enumerateCandidates(design, bench.lib);
  std::size_t blockPairs = 0;
  for (const CandidatePair& p : candidates.pairs) {
    if (p.a.kind == ModuleKind::kBlock) ++blockPairs;
  }
  EXPECT_EQ(blockPairs, 6u);  // C(4,2)
}

}  // namespace
}  // namespace ancstr::circuits
