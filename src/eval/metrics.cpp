#include "eval/metrics.h"

#include "util/metrics.h"

namespace ancstr {

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& rhs) {
  tp += rhs.tp;
  fp += rhs.fp;
  tn += rhs.tn;
  fn += rhs.fn;
  return *this;
}

Metrics computeMetrics(const ConfusionCounts& c) {
  static metrics::Counter& computedCounter =
      metrics::Registry::instance().counter("eval.metrics_computed");
  computedCounter.add();
  Metrics m;
  const double tp = static_cast<double>(c.tp);
  const double fp = static_cast<double>(c.fp);
  const double tn = static_cast<double>(c.tn);
  const double fn = static_cast<double>(c.fn);
  m.tpr = (tp + fn) > 0.0 ? tp / (tp + fn) : 1.0;
  m.fpr = (fp + tn) > 0.0 ? fp / (fp + tn) : 0.0;
  m.ppv = (tp + fp) > 0.0 ? tp / (tp + fp) : (fn == 0.0 ? 1.0 : 0.0);
  m.acc = c.total() > 0 ? (tp + tn) / static_cast<double>(c.total()) : 1.0;
  m.f1 = (2.0 * tp + fp + fn) > 0.0 ? 2.0 * tp / (2.0 * tp + fp + fn)
                                    : (fn == 0.0 && fp == 0.0 ? 1.0 : 0.0);
  return m;
}

}  // namespace ancstr
