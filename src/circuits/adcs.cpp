// The five ADC benchmark generators (substitute for the paper's Table III
// taped-out designs; see DESIGN.md for the substitution rationale).
//
// Each architecture is assembled from the adc_parts masters with
// per-stage sizing, so the corpus contains both true symmetry (p/n DAC
// pairs, matched passives, unit-cell groups) and sizing traps (identical
// topologies at different scales that must NOT match).
#include "circuits/benchmark.h"

#include "circuits/adc_parts.h"
#include "circuits/truth_composer.h"
#include "netlist/builder.h"

namespace ancstr::circuits {
namespace {

std::string num(const std::string& stem, int i) {
  return stem + std::to_string(i);
}

/// Shared front-end masters for the continuous-time delta-sigma designs:
/// per-stage integrators (scaled OTAs) and per-stage current DACs.
void buildCtdsmMasters(PartsContext ctx, int stages) {
  for (int s = 1; s <= stages; ++s) {
    const double scale = std::max(0.5, 2.0 / s);
    buildOtaFd(ctx, num("ota_s", s), scale);
    buildIntegrator(ctx, num("integ_s", s), num("ota_s", s), 50e3 * s,
                    (400.0 / s) * 1e-15);
    buildCurrentDac(ctx, num("idac_s", s), 3, 2e-6 / s);
  }
  buildDynComparator(ctx, "comp_q");
  buildClockGen(ctx, "ckg");
}

/// Continuous-time delta-sigma modulator with `stages` integrators and a
/// p/n current-DAC pair per feedback tap. When `resDacTap3` is set, the
/// last tap uses the nonidentical resistive DAC variants A/B instead
/// (the ADC3 configuration).
CircuitBenchmark makeCtdsm(const std::string& name, int stages,
                           bool resDacTap3) {
  NetlistBuilder b;
  TruthComposer t;
  PartsContext ctx{b, t};
  buildCtdsmMasters(ctx, stages);
  if (resDacTap3) {
    buildResDacVariantA(ctx, "rdac_a");
    buildResDacVariantB(ctx, "rdac_b");
  } else {
    // Dedicated master for the excess-loop-delay tap: a third instance
    // pair of a stage master would be indistinguishable from the stage
    // DACs for any content-based method.
    buildCurrentDac(ctx, "idac_eld", 3, 0.5e-6);
  }

  b.beginSubckt(name, {"vinp", "vinn", "clk", "doutp", "doutn", "vref",
                       "ibias", "vdd", "vss"});
  // Input network.
  b.res("rinp", "vinp", "x1p", 30e3);
  b.res("rinn", "vinn", "x1n", 30e3);
  // Integrator chain.
  for (int s = 1; s <= stages; ++s) {
    const std::string inP = num("x", s) + "p";
    const std::string inN = num("x", s) + "n";
    const std::string outP = num("x", s + 1) + "p";
    const std::string outN = num("x", s + 1) + "n";
    b.inst(num("xint", s), num("integ_s", s),
           {inP, inN, outP, outN, "ibias", "vdd", "vss"});
    t.child(name, num("xint", s), num("integ_s", s));
  }
  const std::string lastP = num("x", stages + 1) + "p";
  const std::string lastN = num("x", stages + 1) + "n";
  // Quantizer.
  b.inst("xquant", "comp_q",
         {lastP, lastN, "clkq", "clkqb", "doutp", "doutn", "vdd", "vss"});
  t.child(name, "xquant", "comp_q");
  // Feedback DAC pairs into the first two stages. Each instance is a
  // differential current DAC steering between the tap's p and n inputs;
  // the p/n instances of a pair are cross-wired.
  for (int tap = 1; tap <= std::min(stages, 2); ++tap) {
    const std::string master = num("idac_s", tap);
    const std::string xp = num("xdacp", tap);
    const std::string xn = num("xdacn", tap);
    std::vector<std::string> netsP, netsN;
    for (int bit = 0; bit < 3; ++bit) {
      netsP.push_back("doutp");
      netsP.push_back("doutn");
      netsN.push_back("doutn");
      netsN.push_back("doutp");
    }
    const std::string tapP = num("x", tap) + "p";
    const std::string tapN = num("x", tap) + "n";
    netsP.insert(netsP.end(), {tapP, tapN, "vbdac", "vdd", "vss"});
    netsN.insert(netsN.end(), {tapN, tapP, "vbdac", "vdd", "vss"});
    b.inst(xp, master, netsP);
    b.inst(xn, master, netsN);
    t.child(name, xp, master);
    t.child(name, xn, master);
    t.systemPair(name, xp, xn);
  }
  // Excess-loop-delay / last-tap DAC pair.
  if (resDacTap3) {
    b.inst("xdacrp", "rdac_a", {"doutp", "doutn", lastP, "vref", "vss"});
    b.inst("xdacrn", "rdac_b", {"doutn", "doutp", lastN, "vref", "vss"});
    t.child(name, "xdacrp", "rdac_a");
    t.child(name, "xdacrn", "rdac_b");
    // Nonidentical-topology pair that still requires symmetry matching.
    t.systemPair(name, "xdacrp", "xdacrn");
  } else {
    const std::string master = "idac_eld";
    std::vector<std::string> netsP, netsN;
    for (int bit = 0; bit < 3; ++bit) {
      netsP.push_back("doutp");
      netsP.push_back("doutn");
      netsN.push_back("doutn");
      netsN.push_back("doutp");
    }
    netsP.insert(netsP.end(), {lastP, lastN, "vbdac", "vdd", "vss"});
    netsN.insert(netsN.end(), {lastN, lastP, "vbdac", "vdd", "vss"});
    b.inst("xdacep", master, netsP);
    b.inst("xdacen", master, netsN);
    t.child(name, "xdacep", master);
    t.child(name, "xdacen", master);
    t.systemPair(name, "xdacep", "xdacen");
  }
  // Clocking.
  b.inst("xclk", "ckg", {"clk", "clkq", "clkqb", "vdd", "vss"});
  t.child(name, "xclk", "ckg");
  // Reference decoupling (matched pair) and bias.
  b.cap("cdecp", "vref", "vss", 500e-15, DeviceType::kCapMim);
  b.cap("cdecn", "vref", "vss", 500e-15, DeviceType::kCapMim);
  t.systemPair(name, "cdecp", "cdecn");
  b.res("rbias", "ibias", "vdd", 20e3);
  b.res("rbdac", "vbdac", "vss", 15e3);
  t.systemPair(name, "rinp", "rinn");
  b.endSubckt();

  CircuitBenchmark bench;
  bench.name = name;
  bench.category = "ADC";
  bench.lib = b.build(name);
  bench.truth = GroundTruth(t.expand(name));
  return bench;
}

/// SAR ADC: differential bootstrapped sampling, p/n capacitive DAC arrays
/// with thermometer unit-cell groups, dynamic comparator, DFF-based SAR
/// controller, clock tree.
CircuitBenchmark makeSar(const std::string& name, int binaryBits,
                         int thermoCells, int logicBits) {
  NetlistBuilder b;
  TruthComposer t;
  PartsContext ctx{b, t};

  buildCapCell(ctx, "cdac_cell");
  buildCapDacArray(ctx, "cdac", binaryBits, thermoCells, "cdac_cell");
  buildDynComparator(ctx, "comp_sar");
  buildDff(ctx, "dff");
  buildSarLogic(ctx, "sar_ctl", logicBits, "dff");
  buildBootstrapSwitch(ctx, "bsw");
  buildClockGen(ctx, "ckg");

  b.beginSubckt(name, {"vinp", "vinn", "clk", "vref", "dout", "vdd", "vss"});
  b.inst("xclk", "ckg", {"clk", "phi", "phib", "vdd", "vss"});
  t.child(name, "xclk", "ckg");
  b.inst("xswp", "bsw", {"vinp", "vsp", "phi", "phib", "vdd", "vss"});
  b.inst("xswn", "bsw", {"vinn", "vsn", "phi", "phib", "vdd", "vss"});
  t.child(name, "xswp", "bsw");
  t.child(name, "xswn", "bsw");
  t.systemPair(name, "xswp", "xswn");

  auto arrayNets = [&](const std::string& vs, bool invert) {
    std::vector<std::string> nets{invert ? "vtopn" : "vtopp", vs, "vref",
                                  "phi"};
    for (int i = 0; i < binaryBits; ++i) {
      nets.push_back(num(invert ? "bb" : "b", i));
      nets.push_back(num(invert ? "b" : "bb", i));
    }
    for (int i = 0; i < thermoCells; ++i) {
      nets.push_back(num(invert ? "tbb" : "tb_", i));
      nets.push_back(num(invert ? "tb_" : "tbb", i));
    }
    nets.push_back("vss");
    return nets;
  };
  b.inst("xcdacp", "cdac", arrayNets("vsp", false));
  b.inst("xcdacn", "cdac", arrayNets("vsn", true));
  t.child(name, "xcdacp", "cdac");
  t.child(name, "xcdacn", "cdac");
  t.systemPair(name, "xcdacp", "xcdacn");

  b.inst("xcomp", "comp_sar",
         {"vtopp", "vtopn", "phi", "phib", "cmpp", "cmpn", "vdd", "vss"});
  t.child(name, "xcomp", "comp_sar");

  std::vector<std::string> ctlNets{"phi", "phib", "cmpp"};
  for (int i = 0; i < logicBits; ++i) {
    // Low bits drive the binary section, the rest drive thermometer rows.
    if (i < binaryBits) {
      ctlNets.push_back(num("b", i));
      ctlNets.push_back(num("bb", i));
    } else {
      ctlNets.push_back(num("tb_", i - binaryBits));
      ctlNets.push_back(num("tbb", i - binaryBits));
    }
  }
  ctlNets.insert(ctlNets.end(), {"vdd", "vss"});
  b.inst("xctl", "sar_ctl", ctlNets);
  t.child(name, "xctl", "sar_ctl");

  // Output retiming and reference decoupling.
  b.inst("xdffo", "dff", {"cmpp", "phi", "phib", "dout", "doutb", "vdd",
                          "vss"});
  t.child(name, "xdffo", "dff");
  b.cap("crefp", "vref", "vss", 1e-12, DeviceType::kCapMim);
  b.cap("crefn", "vref", "vss", 1e-12, DeviceType::kCapMim);
  t.systemPair(name, "crefp", "crefn");
  b.res("rref", "vref", "vdd", 5e3);
  b.endSubckt();

  CircuitBenchmark bench;
  bench.name = name;
  bench.category = "ADC";
  bench.lib = b.build(name);
  bench.truth = GroundTruth(t.expand(name));
  return bench;
}

/// Hybrid: 2nd-order CT delta-sigma loop whose quantizer is a small SAR.
CircuitBenchmark makeHybrid(const std::string& name) {
  NetlistBuilder b;
  TruthComposer t;
  PartsContext ctx{b, t};

  // Front end masters.
  buildCtdsmMasters(ctx, 2);
  // SAR quantizer masters.
  buildCapCell(ctx, "cdac_cell");
  buildCapDacArray(ctx, "cdac", 5, 10, "cdac_cell");
  buildDff(ctx, "dff");
  buildSarLogic(ctx, "sar_ctl", 15, "dff");
  buildBootstrapSwitch(ctx, "bsw");

  // SAR quantizer wrapper master.
  b.beginSubckt("sarq", {"vinp", "vinn", "clk", "vref", "dout", "vdd",
                         "vss"});
  b.inst("xclk", "ckg", {"clk", "phi", "phib", "vdd", "vss"});
  b.inst("xswp", "bsw", {"vinp", "vsp", "phi", "phib", "vdd", "vss"});
  b.inst("xswn", "bsw", {"vinn", "vsn", "phi", "phib", "vdd", "vss"});
  auto arrayNets = [&](const std::string& vs, bool invert) {
    std::vector<std::string> nets{invert ? "vtopn" : "vtopp", vs, "vref",
                                  "phi"};
    for (int i = 0; i < 5; ++i) {
      nets.push_back(num(invert ? "bb" : "b", i));
      nets.push_back(num(invert ? "b" : "bb", i));
    }
    for (int i = 0; i < 10; ++i) {
      nets.push_back(num(invert ? "tbb" : "tb_", i));
      nets.push_back(num(invert ? "tb_" : "tbb", i));
    }
    nets.push_back("vss");
    return nets;
  };
  b.inst("xcdacp", "cdac", arrayNets("vsp", false));
  b.inst("xcdacn", "cdac", arrayNets("vsn", true));
  b.inst("xcomp", "comp_q",
         {"vtopp", "vtopn", "phi", "phib", "cmpp", "cmpn", "vdd", "vss"});
  std::vector<std::string> ctlNets{"phi", "phib", "cmpp"};
  for (int i = 0; i < 15; ++i) {
    if (i < 5) {
      ctlNets.push_back(num("b", i));
      ctlNets.push_back(num("bb", i));
    } else {
      ctlNets.push_back(num("tb_", i - 5));
      ctlNets.push_back(num("tbb", i - 5));
    }
  }
  ctlNets.insert(ctlNets.end(), {"vdd", "vss"});
  b.inst("xctl", "sar_ctl", ctlNets);
  b.inst("xdffo", "dff",
         {"cmpp", "phi", "phib", "dout", "doutb", "vdd", "vss"});
  b.endSubckt();
  t.child("sarq", "xclk", "ckg");
  t.child("sarq", "xswp", "bsw");
  t.child("sarq", "xswn", "bsw");
  t.child("sarq", "xcdacp", "cdac");
  t.child("sarq", "xcdacn", "cdac");
  t.child("sarq", "xcomp", "comp_q");
  t.child("sarq", "xctl", "sar_ctl");
  t.child("sarq", "xdffo", "dff");
  t.systemPair("sarq", "xswp", "xswn");
  t.systemPair("sarq", "xcdacp", "xcdacn");

  // Top: delta-sigma loop around the SAR quantizer.
  b.beginSubckt(name, {"vinp", "vinn", "clk", "dout", "vref", "ibias",
                       "vdd", "vss"});
  b.res("rinp", "vinp", "x1p", 30e3);
  b.res("rinn", "vinn", "x1n", 30e3);
  for (int s = 1; s <= 2; ++s) {
    b.inst(num("xint", s), num("integ_s", s),
           {num("x", s) + "p", num("x", s) + "n", num("x", s + 1) + "p",
            num("x", s + 1) + "n", "ibias", "vdd", "vss"});
    t.child(name, num("xint", s), num("integ_s", s));
  }
  b.inst("xsar", "sarq", {"x3p", "x3n", "clk", "vref", "dout", "vdd",
                          "vss"});
  t.child(name, "xsar", "sarq");
  // Feedback DAC pairs.
  for (int tap = 1; tap <= 2; ++tap) {
    const std::string master = num("idac_s", tap);
    std::vector<std::string> netsP, netsN;
    for (int bit = 0; bit < 3; ++bit) {
      netsP.push_back("dout");
      netsP.push_back("doutb");
      netsN.push_back("doutb");
      netsN.push_back("dout");
    }
    netsP.insert(netsP.end(), {num("x", tap) + "p", num("x", tap) + "n",
                               "vbdac", "vdd", "vss"});
    netsN.insert(netsN.end(), {num("x", tap) + "n", num("x", tap) + "p",
                               "vbdac", "vdd", "vss"});
    b.inst(num("xdacp", tap), master, netsP);
    b.inst(num("xdacn", tap), master, netsN);
    t.child(name, num("xdacp", tap), master);
    t.child(name, num("xdacn", tap), master);
    t.systemPair(name, num("xdacp", tap), num("xdacn", tap));
  }
  b.res("rfbb", "dout", "doutb", 10e3);
  b.cap("cdecp", "vref", "vss", 500e-15, DeviceType::kCapMim);
  b.cap("cdecn", "vref", "vss", 500e-15, DeviceType::kCapMim);
  t.systemPair(name, "cdecp", "cdecn");
  b.res("rbias", "ibias", "vdd", 20e3);
  b.res("rbdac", "vbdac", "vss", 15e3);
  t.systemPair(name, "rinp", "rinn");
  b.endSubckt();

  CircuitBenchmark bench;
  bench.name = name;
  bench.category = "ADC";
  bench.lib = b.build(name);
  bench.truth = GroundTruth(t.expand(name));
  return bench;
}

}  // namespace

std::vector<CircuitBenchmark> adcBenchmarks() {
  std::vector<CircuitBenchmark> out;
  out.push_back(makeCtdsm("adc1", 2, /*resDacTap3=*/false));
  out.push_back(makeCtdsm("adc2", 3, /*resDacTap3=*/false));
  out.push_back(makeCtdsm("adc3", 3, /*resDacTap3=*/true));
  out.push_back(makeSar("adc4", 6, 12, 18));
  out.push_back(makeHybrid("adc5"));
  return out;
}

}  // namespace ancstr::circuits
