#include "place/annealer.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "place/placement.h"

namespace ancstr::place {
namespace {

PlacementProblem diffStageProblem(bool withConstraints) {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.res("r1", "op", "vdd", 1e3);
  b.res("r2", "on", "vdd", 1e3);
  b.cap("c1", "op", "vss", 2e-14);
  b.cap("c2", "on", "vss", 2e-14);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("cell"));
  PlacementProblem problem = buildPlacementProblem(design, 0);
  if (withConstraints) {
    auto indexOf = [&](const std::string& name) {
      for (std::size_t i = 0; i < problem.cells.size(); ++i) {
        if (problem.cells[i].name == name) return i;
      }
      return std::size_t{0};
    };
    problem.symmetricPairs = {{indexOf("m1"), indexOf("m2")},
                              {indexOf("r1"), indexOf("r2")},
                              {indexOf("c1"), indexOf("c2")}};
    problem.selfSymmetric = {indexOf("mt")};
  }
  return problem;
}

AnnealOptions fastOptions(std::uint64_t seed = 3) {
  AnnealOptions options;
  options.iterations = 8000;
  options.seed = seed;
  return options;
}

TEST(Annealer, ResolvesOverlaps) {
  const PlacementProblem problem = diffStageProblem(true);
  const AnnealResult result = anneal(problem, fastOptions());
  EXPECT_LT(result.overlap, 0.05);
}

TEST(Annealer, ConstraintsHoldExactlyInEveryResult) {
  const PlacementProblem problem = diffStageProblem(true);
  const AnnealResult result = anneal(problem, fastOptions());
  EXPECT_NEAR(symmetryViolation(problem, result.solution), 0.0, 1e-9);
}

TEST(Annealer, ImprovesWirelengthOverInitial) {
  const PlacementProblem problem = diffStageProblem(true);
  AnnealOptions minimal = fastOptions();
  minimal.iterations = 1;
  const AnnealResult initial = anneal(problem, minimal);
  const AnnealResult tuned = anneal(problem, fastOptions());
  EXPECT_LE(tuned.cost, initial.cost);
}

TEST(Annealer, DeterministicPerSeed) {
  const PlacementProblem problem = diffStageProblem(true);
  const AnnealResult a = anneal(problem, fastOptions(9));
  const AnnealResult b = anneal(problem, fastOptions(9));
  EXPECT_EQ(a.solution.rects, b.solution.rects);
  const AnnealResult c = anneal(problem, fastOptions(10));
  EXPECT_NE(a.solution.rects, c.solution.rects);
}

TEST(Annealer, UnconstrainedLayoutBreaksSymmetry) {
  // Without constraints the optimizer has no reason to mirror the pairs:
  // measure the violation of the would-be constraints.
  const PlacementProblem constrained = diffStageProblem(true);
  PlacementProblem free = diffStageProblem(false);
  const AnnealResult result = anneal(free, fastOptions());
  PlacementSolution assessed = result.solution;
  assessed.symmetryAxis = 0.0;
  EXPECT_GT(symmetryViolation(constrained, assessed), 0.1);
}

TEST(Annealer, SelfSymmetricStaysCentered) {
  const PlacementProblem problem = diffStageProblem(true);
  const AnnealResult result = anneal(problem, fastOptions());
  for (const std::size_t c : problem.selfSymmetric) {
    EXPECT_NEAR(result.solution.rects[c].center().x, 0.0, 1e-9);
  }
}

TEST(Annealer, PairsShareYCoordinate) {
  const PlacementProblem problem = diffStageProblem(true);
  const AnnealResult result = anneal(problem, fastOptions());
  for (const auto& [a, b] : problem.symmetricPairs) {
    EXPECT_DOUBLE_EQ(result.solution.rects[a].y, result.solution.rects[b].y);
  }
}

}  // namespace
}  // namespace ancstr::place
