#include "util/structural_hash.h"

#include <gtest/gtest.h>

#include <unordered_map>

namespace ancstr::util {
namespace {

TEST(StructuralHash, DeterministicForEqualStreams) {
  StructuralHasher a;
  StructuralHasher b;
  for (std::uint64_t v : {1ull, 2ull, 3ull}) {
    a.add(v);
    b.add(v);
  }
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(StructuralHash, OrderSensitive) {
  StructuralHasher a;
  a.add(1);
  a.add(2);
  StructuralHasher b;
  b.add(2);
  b.add(1);
  EXPECT_NE(a.finish(), b.finish());
}

TEST(StructuralHash, FinishIsIdempotentAndNonDestructive) {
  StructuralHasher h;
  h.add(7);
  const StructuralHash first = h.finish();
  EXPECT_EQ(h.finish(), first);
  h.add(8);
  EXPECT_NE(h.finish(), first);
}

TEST(StructuralHash, EmptyStreamIsNotNullHash) {
  EXPECT_NE(StructuralHasher().finish(), StructuralHash{});
}

TEST(StructuralHash, SingleBitInputChangesBothLanes) {
  StructuralHasher a;
  a.add(0);
  StructuralHasher b;
  b.add(1);
  const StructuralHash ha = a.finish();
  const StructuralHash hb = b.finish();
  EXPECT_NE(ha.hi, hb.hi);
  EXPECT_NE(ha.lo, hb.lo);
}

TEST(StructuralHash, BytesAreLengthPrefixed) {
  StructuralHasher a;
  a.addBytes("ab");
  a.addBytes("c");
  StructuralHasher b;
  b.addBytes("a");
  b.addBytes("bc");
  EXPECT_NE(a.finish(), b.finish());

  StructuralHasher c;
  c.addBytes("");
  EXPECT_NE(c.finish(), StructuralHasher().finish());
}

TEST(StructuralHash, BytesCrossWordBoundary) {
  StructuralHasher a;
  a.addBytes("exactly8");
  StructuralHasher b;
  b.addBytes("exactly8+");
  EXPECT_NE(a.finish(), b.finish());
}

TEST(StructuralHash, DoubleIsBitExact) {
  StructuralHasher pos;
  pos.addDouble(0.0);
  StructuralHasher neg;
  neg.addDouble(-0.0);
  EXPECT_NE(pos.finish(), neg.finish());
}

TEST(StructuralHash, HexIs32LowercaseChars) {
  const StructuralHash h{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(h.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(StructuralHash{}.hex(),
            "00000000000000000000000000000000");
}

// Golden values: the hash is part of the cache-key contract and must stay
// stable across platforms and releases (a silent change would orphan
// every persisted golden in test_circuit_hash.cpp too).
TEST(StructuralHash, GoldenValues) {
  EXPECT_EQ(StructuralHasher().finish().hex(),
            "efd01f60ba992926b94678ea86d5cb1a");
  StructuralHasher h;
  h.add(1);
  h.add(2);
  h.add(3);
  EXPECT_EQ(h.finish().hex(), "39f185a062c8070b767e84f62b4dcd48");
  StructuralHasher s;
  s.addBytes("ancstr");
  EXPECT_EQ(s.finish().hex(), "5a77cf533bafc11b3796b653ca685eb9");
}

TEST(StructuralHash, UsableAsUnorderedMapKey) {
  std::unordered_map<StructuralHash, int> map;
  StructuralHasher a;
  a.add(42);
  map[a.finish()] = 1;
  StructuralHasher b;
  b.add(42);
  EXPECT_EQ(map.at(b.finish()), 1);
  EXPECT_EQ(map.size(), 1u);
}

}  // namespace
}  // namespace ancstr::util
