#include <gtest/gtest.h>

#include <set>

#include "baselines/s3det.h"
#include "circuits/benchmark.h"
#include "core/candidates.h"
#include "netlist/flatten.h"
#include "util/error.h"
#include "util/stats.h"

namespace ancstr::circuits {
namespace {

class AdcCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { corpus_ = new auto(adcBenchmarks()); }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static std::vector<CircuitBenchmark>* corpus_;
};

std::vector<CircuitBenchmark>* AdcCorpusTest::corpus_ = nullptr;

TEST_F(AdcCorpusTest, FiveArchitectures) {
  ASSERT_EQ(corpus_->size(), 5u);
  for (const auto& bench : *corpus_) EXPECT_EQ(bench.category, "ADC");
}

TEST_F(AdcCorpusTest, SizesGrowLikeTableIII) {
  std::vector<std::size_t> devices;
  for (const auto& bench : *corpus_) {
    devices.push_back(FlatDesign::elaborate(bench.lib).devices().size());
  }
  // ADC1..ADC3 are a few hundred devices; ADC4/ADC5 are the big ones.
  EXPECT_GT(devices[0], 100u);
  EXPECT_GT(devices[3], devices[0]);
  EXPECT_GT(devices[4], devices[3]);
}

TEST_F(AdcCorpusTest, GroundTruthPairsAreValidCandidates) {
  for (const auto& bench : *corpus_) {
    SCOPED_TRACE(bench.name);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const CandidateSet candidates = enumerateCandidates(design, bench.lib);
    std::set<std::string> candidateKeys;
    std::size_t matched = 0;
    for (const CandidatePair& p : candidates.pairs) {
      if (bench.truth.matches(design, p)) ++matched;
    }
    EXPECT_EQ(matched, bench.truth.size());
  }
}

TEST_F(AdcCorpusTest, SystemLevelTruthExists) {
  for (const auto& bench : *corpus_) {
    SCOPED_TRACE(bench.name);
    std::size_t system = 0;
    for (const auto& entry : bench.truth.entries()) {
      if (entry.level == ConstraintLevel::kSystem) ++system;
    }
    EXPECT_GT(system, 0u);
  }
}

TEST_F(AdcCorpusTest, SizingTrapsExist) {
  // ADC1 must contain candidate block pairs of same category with
  // different sizing that are NOT in the truth (the Fig. 2 scenario).
  const auto& adc1 = (*corpus_)[0];
  const FlatDesign design = FlatDesign::elaborate(adc1.lib);
  const CandidateSet candidates = enumerateCandidates(design, adc1.lib);
  std::size_t unmatchedBlockPairs = 0;
  for (const CandidatePair& p : candidates.pairs) {
    if (p.a.kind == ModuleKind::kBlock && !adc1.truth.matches(design, p)) {
      ++unmatchedBlockPairs;
    }
  }
  EXPECT_GT(unmatchedBlockPairs, 0u);
}

TEST_F(AdcCorpusTest, Adc3HasNonidenticalMatchedPair) {
  const auto& adc3 = (*corpus_)[2];
  const FlatDesign design = FlatDesign::elaborate(adc3.lib);
  bool found = false;
  for (const auto& entry : adc3.truth.entries()) {
    if ((entry.nameA == "xdacrp" && entry.nameB == "xdacrn")) found = true;
  }
  EXPECT_TRUE(found);
  // The two masters carry the same device multiset but non-isomorphic
  // wiring: their graph spectra must differ.
  HierNodeId nodeP = 0, nodeN = 0;
  for (const HierNode& node : design.hierarchy()) {
    if (node.instanceName == "xdacrp") nodeP = node.id;
    if (node.instanceName == "xdacrn") nodeN = node.id;
  }
  ASSERT_NE(nodeP, 0u);
  ASSERT_NE(nodeN, 0u);
  s3det::S3DetConfig isolated;
  isolated.includeBoundaryContext = false;
  const auto spectrumP = s3det::subcircuitSpectrum(design, nodeP, isolated);
  const auto spectrumN = s3det::subcircuitSpectrum(design, nodeN, isolated);
  EXPECT_EQ(spectrumP.size(), spectrumN.size());
  EXPECT_GT(ksStatistic(spectrumP, spectrumN), 1e-6);
}

TEST_F(AdcCorpusTest, AdcBenchmarkIndexAccessor) {
  EXPECT_EQ(adcBenchmark(1).name, "adc1");
  EXPECT_EQ(adcBenchmark(5).name, "adc5");
  EXPECT_THROW(adcBenchmark(0), Error);
  EXPECT_THROW(adcBenchmark(6), Error);
}

TEST_F(AdcCorpusTest, ValidPairCountsSubstantial) {
  // The SAR and hybrid designs carry the largest candidate sets
  // (Table III shape: ADC4/ADC5 dominate valid pairs).
  const BenchmarkStats s1 = computeStats((*corpus_)[0]);
  const BenchmarkStats s4 = computeStats((*corpus_)[3]);
  const BenchmarkStats s5 = computeStats((*corpus_)[4]);
  EXPECT_GT(s4.validPairs, s1.validPairs);
  EXPECT_GT(s5.validPairs, s1.validPairs);
  EXPECT_GT(s4.validPairs, 200u);
}

TEST_F(AdcCorpusTest, HierarchyIsDeep) {
  // The hybrid must nest at least 3 levels (top -> sarq -> cdac -> cell).
  const FlatDesign design = FlatDesign::elaborate((*corpus_)[4].lib);
  std::size_t maxDepth = 0;
  for (const HierNode& node : design.hierarchy()) {
    std::size_t depth = 0;
    HierNodeId cur = node.id;
    while (cur != 0) {
      cur = design.node(cur).parent;
      ++depth;
    }
    maxDepth = std::max(maxDepth, depth);
  }
  EXPECT_GE(maxDepth, 3u);
}

}  // namespace
}  // namespace ancstr::circuits
