#include "place/router.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace ancstr::place {

GridPoint mirrorPoint(const GridPoint& p, int axisX) {
  return {2 * axisX - p.x, p.y};
}

namespace {

class Router {
 public:
  Router(int width, int height, const RouterOptions& options)
      : width_(width), height_(height), options_(options),
        usage_(static_cast<std::size_t>(width) *
               static_cast<std::size_t>(height)) {
    ANCSTR_ASSERT(width > 0 && height > 0);
  }

  bool inBounds(const GridPoint& p) const {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }

  std::size_t indexOf(const GridPoint& p) const {
    return static_cast<std::size_t>(p.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(p.x);
  }

  /// Dijkstra (uniform step + congestion) from the tree set to `target`.
  std::optional<std::vector<GridPoint>> findPath(
      const std::set<std::size_t>& tree, const GridPoint& target) {
    const double kInf = 1e30;
    std::vector<double> dist(usage_.size(), kInf);
    std::vector<std::int32_t> parent(usage_.size(), -1);
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> open;
    for (const std::size_t cell : tree) {
      dist[cell] = 0.0;
      open.push({0.0, cell});
    }
    const std::size_t targetIdx = indexOf(target);
    while (!open.empty()) {
      const auto [d, cur] = open.top();
      open.pop();
      if (d > dist[cur]) continue;
      if (cur == targetIdx) break;
      const int cx = static_cast<int>(cur % static_cast<std::size_t>(width_));
      const int cy = static_cast<int>(cur / static_cast<std::size_t>(width_));
      const GridPoint neighbors[4] = {
          {cx + 1, cy}, {cx - 1, cy}, {cx, cy + 1}, {cx, cy - 1}};
      for (const GridPoint& n : neighbors) {
        if (!inBounds(n)) continue;
        const std::size_t ni = indexOf(n);
        const double stepCost =
            1.0 + options_.congestionCost * static_cast<double>(usage_[ni]);
        if (dist[cur] + stepCost < dist[ni]) {
          dist[ni] = dist[cur] + stepCost;
          parent[ni] = static_cast<std::int32_t>(cur);
          open.push({dist[ni], ni});
        }
      }
    }
    if (dist[targetIdx] >= kInf) return std::nullopt;
    std::vector<GridPoint> path;
    std::size_t cur = targetIdx;
    while (true) {
      path.push_back(
          {static_cast<int>(cur % static_cast<std::size_t>(width_)),
           static_cast<int>(cur / static_cast<std::size_t>(width_))});
      if (tree.count(cur) != 0 || parent[cur] < 0) break;
      cur = static_cast<std::size_t>(parent[cur]);
    }
    return path;
  }

  /// Routes one multi-terminal net; returns occupied cells or nullopt.
  std::optional<std::vector<GridPoint>> routeNet(const RouteNet& net) {
    if (net.terminals.size() < 2) return std::vector<GridPoint>{};
    for (const GridPoint& t : net.terminals) {
      if (!inBounds(t)) return std::nullopt;
    }
    std::set<std::size_t> tree{indexOf(net.terminals[0])};
    for (std::size_t t = 1; t < net.terminals.size(); ++t) {
      const auto path = findPath(tree, net.terminals[t]);
      if (!path) return std::nullopt;
      for (const GridPoint& p : *path) tree.insert(indexOf(p));
    }
    std::vector<GridPoint> cells;
    cells.reserve(tree.size());
    for (const std::size_t cell : tree) {
      cells.push_back(
          {static_cast<int>(cell % static_cast<std::size_t>(width_)),
           static_cast<int>(cell / static_cast<std::size_t>(width_))});
    }
    return cells;
  }

  void occupy(const std::vector<GridPoint>& cells) {
    for (const GridPoint& p : cells) ++usage_[indexOf(p)];
  }

  std::size_t overflowCount() const {
    std::size_t count = 0;
    for (const std::uint32_t u : usage_) {
      if (u > static_cast<std::uint32_t>(options_.capacity)) ++count;
    }
    return count;
  }

 private:
  int width_;
  int height_;
  RouterOptions options_;
  std::vector<std::uint32_t> usage_;
};

/// True when b's terminal multiset mirrors a's about the axis.
bool terminalsMirror(const RouteNet& a, const RouteNet& b, int axisX) {
  if (a.terminals.size() != b.terminals.size()) return false;
  auto key = [](const GridPoint& p) { return std::pair{p.x, p.y}; };
  std::multiset<std::pair<int, int>> want;
  for (const GridPoint& t : a.terminals) {
    want.insert(key(mirrorPoint(t, axisX)));
  }
  for (const GridPoint& t : b.terminals) {
    const auto it = want.find(key(t));
    if (it == want.end()) return false;
    want.erase(it);
  }
  return true;
}

}  // namespace

RoutingResult routeNets(
    int width, int height, const std::vector<RouteNet>& nets,
    const std::vector<std::pair<std::size_t, std::size_t>>& symmetricNetPairs,
    const RouterOptions& options) {
  Router router(width, height, options);
  RoutingResult result;
  result.nets.resize(nets.size());

  std::map<std::size_t, std::size_t> mirrorOf;  // right index -> left index
  for (const auto& [left, right] : symmetricNetPairs) {
    ANCSTR_ASSERT(left < nets.size() && right < nets.size());
    if (terminalsMirror(nets[left], nets[right], options.axisX)) {
      mirrorOf[right] = left;
    }
  }

  for (std::size_t i = 0; i < nets.size(); ++i) {
    result.nets[i].name = nets[i].name;
    if (mirrorOf.count(i) != 0) continue;  // produced by its partner
    const auto cells = router.routeNet(nets[i]);
    if (!cells) {
      ++result.failedNets;
      continue;
    }
    result.nets[i].cells = *cells;
    router.occupy(*cells);
  }
  // Mirror the partners after the drivers are fixed. A mirror that lands
  // outside the grid (off-centre axis) falls back to independent routing.
  for (const auto& [right, left] : mirrorOf) {
    std::vector<GridPoint> mirrored;
    mirrored.reserve(result.nets[left].cells.size());
    bool valid = !result.nets[left].cells.empty();
    for (const GridPoint& p : result.nets[left].cells) {
      const GridPoint m = mirrorPoint(p, options.axisX);
      if (!router.inBounds(m)) {
        valid = false;
        break;
      }
      mirrored.push_back(m);
    }
    if (!valid) {
      const auto cells = router.routeNet(nets[right]);
      if (!cells) {
        ++result.failedNets;
        continue;
      }
      result.nets[right].cells = *cells;
      router.occupy(*cells);
      continue;
    }
    result.nets[right].mirrored = true;
    result.nets[right].cells = std::move(mirrored);
    router.occupy(result.nets[right].cells);
  }

  for (const RoutedNet& net : result.nets) {
    result.wirelength += net.cells.size();
  }
  result.overflows = router.overflowCount();
  return result;
}

}  // namespace ancstr::place
