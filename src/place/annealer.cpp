#include "place/annealer.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ancstr::place {
namespace {

/// Constraint roles derived once per problem.
enum class Role { kFree, kPairLeft, kPairRight, kSelf };

struct CellState {
  Role role = Role::kFree;
  std::size_t partner = 0;  ///< the other pair member (pair roles only)
};

class Annealer {
 public:
  Annealer(const PlacementProblem& problem, const AnnealOptions& options)
      : problem_(problem), options_(options), rng_(options.seed) {
    states_.resize(problem.cells.size());
    for (const auto& [a, b] : problem.symmetricPairs) {
      ANCSTR_ASSERT(a < states_.size() && b < states_.size());
      states_[a] = {Role::kPairLeft, b};
      states_[b] = {Role::kPairRight, a};
    }
    for (const std::size_t c : problem.selfSymmetric) {
      ANCSTR_ASSERT(c < states_.size());
      if (states_[c].role == Role::kFree) states_[c] = {Role::kSelf, 0};
    }
    solution_.symmetryAxis = 0.0;
    solution_.rects.resize(problem.cells.size());
    initialPlacement();
  }

  AnnealResult run() {
    double cost = totalCost();
    const int iterations = std::max(1, options_.iterations);
    AnnealResult result;
    for (int iter = 0; iter < iterations; ++iter) {
      const double progress =
          static_cast<double>(iter) / static_cast<double>(iterations);
      const double temperature =
          options_.tStart *
          std::pow(options_.tEnd / options_.tStart, progress);

      const std::vector<Rect> backup = solution_.rects;
      proposeMove(temperature);
      const double next = totalCost();
      const double delta = next - cost;
      if (delta <= 0.0 ||
          rng_.uniform() < std::exp(-delta / std::max(1e-9, temperature))) {
        cost = next;
        ++result.acceptedMoves;
      } else {
        solution_.rects = backup;
      }
    }
    result.solution = solution_;
    result.wirelength = wirelength(problem_, solution_);
    result.overlap = totalOverlap(solution_);
    result.cost = cost;
    return result;
  }

 private:
  /// Row-major grid start, mirrored members placed immediately.
  void initialPlacement() {
    double maxDim = 1.0;
    for (const Cell& cell : problem_.cells) {
      maxDim = std::max({maxDim, cell.w, cell.h});
    }
    const double pitch = maxDim * 1.2;
    const std::size_t columns = static_cast<std::size_t>(std::ceil(
        std::sqrt(static_cast<double>(problem_.cells.size()))));
    std::size_t slot = 0;
    for (std::size_t c = 0; c < problem_.cells.size(); ++c) {
      if (states_[c].role == Role::kPairRight) continue;
      const double x =
          static_cast<double>(slot % columns) * pitch - pitch * 2.0;
      const double y = static_cast<double>(slot / columns) * pitch;
      ++slot;
      place(c, x, y);
    }
  }

  /// Sets cell c's lower-left position, propagating constraint coupling.
  void place(std::size_t c, double x, double y) {
    const Cell& cell = problem_.cells[c];
    Rect& rect = solution_.rects[c];
    rect.w = cell.w;
    rect.h = cell.h;
    switch (states_[c].role) {
      case Role::kSelf:
        rect.x = -cell.w / 2.0;  // centred on the axis; x ignored
        rect.y = y;
        break;
      case Role::kPairRight:
        // Right members are never placed directly.
        place(states_[c].partner, x, y);
        return;
      case Role::kPairLeft: {
        rect.x = x;
        rect.y = y;
        const std::size_t other = states_[c].partner;
        Rect& mirror = solution_.rects[other];
        mirror.w = problem_.cells[other].w;
        mirror.h = problem_.cells[other].h;
        // Mirror about x = 0: centre_x(other) = -centre_x(c).
        mirror.x = -(rect.x + rect.w / 2.0) - mirror.w / 2.0;
        mirror.y = y;
        break;
      }
      case Role::kFree:
        rect.x = x;
        rect.y = y;
        break;
    }
  }

  void proposeMove(double temperature) {
    // Pick a movable (non-derived) cell.
    std::size_t c = 0;
    do {
      c = rng_.index(problem_.cells.size());
    } while (states_[c].role == Role::kPairRight);

    const Rect& cur = solution_.rects[c];
    if (rng_.chance(0.2)) {
      // Swap positions with another movable cell.
      std::size_t other = c;
      for (int tries = 0; tries < 8 && other == c; ++tries) {
        const std::size_t cand = rng_.index(problem_.cells.size());
        if (states_[cand].role != Role::kPairRight) other = cand;
      }
      if (other != c) {
        const Rect a = solution_.rects[c];
        const Rect b = solution_.rects[other];
        place(c, b.x, b.y);
        place(other, a.x, a.y);
        return;
      }
    }
    // Gaussian translate, scale tied to temperature.
    const double scale = 0.5 + temperature * 0.3;
    place(c, cur.x + rng_.normal(0.0, scale), cur.y + rng_.normal(0.0, scale));
  }

  double totalCost() const {
    return options_.wirelengthWeight * wirelength(problem_, solution_) +
           options_.overlapWeight * totalOverlap(solution_);
  }

  const PlacementProblem& problem_;
  AnnealOptions options_;
  Rng rng_;
  std::vector<CellState> states_;
  PlacementSolution solution_;
};

}  // namespace

AnnealResult anneal(const PlacementProblem& problem,
                    const AnnealOptions& options) {
  ANCSTR_ASSERT(!problem.cells.empty());
  return Annealer(problem, options).run();
}

}  // namespace ancstr::place
