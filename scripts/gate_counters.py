#!/usr/bin/env python3
"""Gates case counters in a BENCH.json report.

    gate_counters.py REPORT.json --case NAME --require EXPR [--require ...]

Each --require EXPR is `<counter><op><value>` with op one of >=, <=, >, <,
==, != (e.g. "speedup>=3.0", "bitwise_equal==1"). All requirements apply to
the case named by the preceding --case; --case may repeat to gate several
cases in one run.

Exits 0 when every requirement holds, 1 when any fails (or a named case or
counter is absent), and 2 when the report is missing, unreadable, or does
not match the BENCH.json schema (docs/observability.md) — mirroring
scripts/compare_bench.py.

Example (the bench_delta CI gate, docs/api.md):

    gate_counters.py bench-delta.json \
        --case engine.delta.eco10.speedup \
        --require "speedup>=3.0" --require "bitwise_equal==1"
"""
import argparse
import json
import operator
import re
import sys

SCHEMA_VERSION = 1

OPS = {
    ">=": operator.ge,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
    ">": operator.gt,
    "<": operator.lt,
}

REQUIRE_RE = re.compile(r"^\s*([A-Za-z0-9_.]+)\s*(>=|<=|==|!=|>|<)\s*"
                        r"(-?[0-9.eE+-]+)\s*$")


class SchemaError(Exception):
    pass


def load_cases(path):
    """Returns {case name: counters dict} or raises SchemaError."""
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SchemaError(f"cannot load {path}: {err}")
    if not isinstance(report, dict):
        raise SchemaError(f"{path}: top level is not an object")
    if report.get("schemaVersion") != SCHEMA_VERSION:
        raise SchemaError(
            f"{path}: schemaVersion {report.get('schemaVersion')!r}, "
            f"expected {SCHEMA_VERSION}")
    cases = report.get("cases")
    if not isinstance(cases, list) or not cases:
        raise SchemaError(f"{path}: cases missing or empty")
    by_name = {}
    for i, case in enumerate(cases):
        if not isinstance(case, dict) or not isinstance(case.get("name"), str):
            raise SchemaError(f"{path}: case {i} malformed")
        counters = case.get("counters", {})
        if not isinstance(counters, dict):
            raise SchemaError(f"{path}: case {case['name']!r} counters "
                              f"malformed")
        by_name[case["name"]] = counters
    return by_name


def parse_requirement(expr):
    """Returns (counter, op string, value) or raises ValueError."""
    match = REQUIRE_RE.match(expr)
    if not match:
        raise ValueError(f"malformed requirement {expr!r} "
                         f"(expected <counter><op><number>)")
    counter, op, value = match.groups()
    try:
        return counter, op, float(value)
    except ValueError:
        raise ValueError(f"malformed requirement {expr!r}: bad number "
                         f"{value!r}")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", help="BENCH.json to gate")
    parser.add_argument("--case", dest="cases", action="append", default=[],
                        metavar="NAME",
                        help="case name the following --require apply to "
                             "(repeatable)")
    parser.add_argument("--require", dest="requires", action="append",
                        default=[], metavar="EXPR",
                        help="requirement like 'speedup>=3.0' on the "
                             "preceding --case (repeatable)")
    args, order = parser.parse_args(argv[1:]), []

    # argparse loses --case/--require interleaving, so recover it from argv:
    # each requirement binds to the most recent --case.
    current = None
    it = iter(argv[1:])
    for token in it:
        if token == "--case":
            current = next(it, None)
        elif token.startswith("--case="):
            current = token.split("=", 1)[1]
        elif token == "--require" or token.startswith("--require="):
            expr = (token.split("=", 1)[1] if "=" in token
                    else next(it, None))
            if current is None:
                print("SCHEMA ERROR: --require before any --case",
                      file=sys.stderr)
                return 2
            order.append((current, expr))
    if not order:
        print("SCHEMA ERROR: no requirements given", file=sys.stderr)
        return 2

    try:
        cases = load_cases(args.report)
        checks = [(case, *parse_requirement(expr)) for case, expr in order]
    except (SchemaError, ValueError) as err:
        print(f"SCHEMA ERROR: {err}", file=sys.stderr)
        return 2

    failures = []
    for case, counter, op, wanted in checks:
        if case not in cases:
            failures.append(f"{case}: case not in report")
            continue
        if counter not in cases[case]:
            failures.append(f"{case}: counter {counter!r} missing")
            continue
        actual = float(cases[case][counter])
        ok = OPS[op](actual, wanted)
        verdict = "ok   " if ok else "FAIL "
        print(f"{verdict} {case}: {counter} = {actual:g} "
              f"(require {op} {wanted:g})")
        if not ok:
            failures.append(
                f"{case}: {counter} = {actual:g}, required {op} {wanted:g}")

    if failures:
        print(f"\nFAIL: {len(failures)} requirement(s) not met:",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(checks)} requirement(s) met")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
