// Symmetry groups: the form in which P&R engines consume constraints.
//
// Accepted pairwise constraints under one hierarchy are merged into
// groups (connected components over shared modules), and devices that sit
// electrically *between* the two sides of a matched pair — e.g. the tail
// transistor of a differential pair — are annotated as self-symmetric
// members that must straddle the group's symmetry axis.
#pragma once

#include <string>
#include <vector>

#include "core/detector.h"
#include "netlist/flatten.h"

namespace ancstr {

struct GroupOptions {
  /// Nets with more terminals than this are ignored when looking for
  /// self-symmetric devices (rails connect everything to everything).
  std::size_t maxNetDegree = 16;
  /// Detect self-symmetric devices at all.
  bool detectSelfSymmetric = true;
};

/// One symmetry group under `hierarchy`.
struct SymmetryGroup {
  HierNodeId hierarchy = 0;
  ConstraintLevel level = ConstraintLevel::kDevice;
  /// Matched pairs (local module names) merged into this group.
  std::vector<std::pair<std::string, std::string>> pairs;
  /// Self-symmetric members (local device names) that bridge the pairs.
  std::vector<std::string> selfSymmetric;

  std::size_t moduleCount() const {
    return pairs.size() * 2 + selfSymmetric.size();
  }
};

/// Merges the accepted constraints of `detection` into symmetry groups.
/// Groups are reported in a deterministic order (by hierarchy id, then
/// first pair name).
std::vector<SymmetryGroup> buildSymmetryGroups(
    const FlatDesign& design, const DetectionResult& detection,
    const GroupOptions& options = {});

}  // namespace ancstr
