#include "util/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/bench_report.h"
#include "util/error.h"
#include "util/json.h"

namespace ancstr::metrics {

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  if (bounds_.empty()) {
    throw Error("Histogram: at least one upper bound required");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw Error("Histogram: upper bounds must be strictly ascending");
    }
  }
  // make_unique value-initializes the array, so every bucket starts at 0.
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(numBuckets());
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucketCount(std::size_t bucket) const {
  return bucket < numBuckets()
             ? buckets_[bucket].load(std::memory_order_relaxed)
             : 0;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < numBuckets(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Snapshot Snapshot::since(const Snapshot& before) const {
  Snapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    const auto it = before.counters.find(name);
    if (it != before.counters.end()) {
      value = value >= it->second ? value - it->second : 0;
    }
  }
  for (auto& [name, histogram] : delta.histograms) {
    const auto it = before.histograms.find(name);
    if (it == before.histograms.end()) continue;
    const HistogramSnapshot& prior = it->second;
    if (prior.buckets.size() != histogram.buckets.size()) continue;
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      histogram.buckets[i] = histogram.buckets[i] >= prior.buckets[i]
                                 ? histogram.buckets[i] - prior.buckets[i]
                                 : 0;
    }
    histogram.count =
        histogram.count >= prior.count ? histogram.count - prior.count : 0;
    histogram.sum -= prior.sum;
  }
  return delta;
}

Json Snapshot::toJson() const {
  Json root = Json::object();
  Json counterObj = Json::object();
  for (const auto& [name, value] : counters) {
    counterObj.set(name, static_cast<std::size_t>(value));
  }
  root.set("counters", std::move(counterObj));
  Json gaugeObj = Json::object();
  for (const auto& [name, value] : gauges) gaugeObj.set(name, value);
  root.set("gauges", std::move(gaugeObj));
  Json histObj = Json::object();
  for (const auto& [name, histogram] : histograms) {
    Json entry = Json::object();
    Json le = Json::array();
    for (const double bound : histogram.upperBounds) le.push(bound);
    entry.set("le", std::move(le));
    Json buckets = Json::array();
    for (const std::uint64_t b : histogram.buckets) {
      buckets.push(static_cast<std::size_t>(b));
    }
    entry.set("buckets", std::move(buckets));
    entry.set("count", static_cast<std::size_t>(histogram.count));
    entry.set("sum", histogram.sum);
    histObj.set(name, std::move(entry));
  }
  root.set("histograms", std::move(histObj));
  return root;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the
/// dots of the library taxonomy, mostly) becomes '_'.
std::string prometheusName(std::string_view prefix, std::string_view name) {
  std::string out(prefix);
  if (!out.empty()) out += '_';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheusNumber(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Splits an embedded label block off a registry name: only the part
/// before '{' is sanitised, the label block passes through verbatim.
struct LabeledName {
  std::string base;    ///< sanitised, prefixed metric name
  std::string labels;  ///< "{k=\"v\",...}" or ""
};

LabeledName splitLabels(std::string_view prefix, std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    return {prometheusName(prefix, name), ""};
  }
  return {prometheusName(prefix, name.substr(0, brace)),
          std::string(name.substr(brace))};
}

}  // namespace

std::string Snapshot::toPrometheus(std::string_view prefix) const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const LabeledName p = splitLabels(prefix, name);
    out += "# TYPE " + p.base + " counter\n";
    out += p.base + p.labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const LabeledName p = splitLabels(prefix, name);
    out += "# TYPE " + p.base + " gauge\n";
    out += p.base + p.labels + " " + prometheusNumber(value) + "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    const std::string p = prometheusName(prefix, name);
    out += "# TYPE " + p + " histogram\n";
    // Buckets are stored per-bin; the exposition format wants cumulative
    // counts up to and including each `le` bound.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.upperBounds.size(); ++i) {
      cumulative += i < histogram.buckets.size() ? histogram.buckets[i] : 0;
      out += p + "_bucket{le=\"" + prometheusNumber(histogram.upperBounds[i]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(histogram.count) +
           "\n";
    out += p + "_sum " + prometheusNumber(histogram.sum) + "\n";
    out += p + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

Registry& Registry::instance() {
  // Leaked for the same reason as the trace collector: metric references
  // cached in function-local statics may be touched very late.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upperBounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upperBounds)))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap;
    snap.upperBounds = histogram->upperBounds();
    snap.buckets.reserve(histogram->numBuckets());
    for (std::size_t i = 0; i < histogram->numBuckets(); ++i) {
      snap.buckets.push_back(histogram->bucketCount(i));
    }
    snap.count = histogram->totalCount();
    snap.sum = histogram->sum();
    out.histograms.emplace(name, std::move(snap));
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

namespace {

/// Captured at static initialisation of this module — close enough to
/// process start for an uptime gauge.
const std::chrono::steady_clock::time_point g_processStart =
    std::chrono::steady_clock::now();

/// Registered process-info publishers (registerProcessMetricsPublisher).
std::mutex& publisherMutex() {
  static std::mutex m;
  return m;
}

std::vector<void (*)()>& publishers() {
  static std::vector<void (*)()> v;
  return v;
}

}  // namespace

std::string escapeLabelValue(std::string_view value) {
  std::string out;
  for (const char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

void publishProcessMetrics() {
  auto& registry = Registry::instance();
  static Gauge& uptime = registry.gauge("process.uptime_seconds");
  uptime.set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           g_processStart)
                 .count());
  // The label block is baked into the registry name once: build
  // provenance is constant for the process lifetime.
  static Gauge& buildInfo = registry.gauge(
      "process.build_info{git_sha=\"" +
      escapeLabelValue(benchio::buildGitSha()) + "\",build_type=\"" +
      escapeLabelValue(benchio::buildType()) + "\"}");
  buildInfo.set(1.0);
  std::vector<void (*)()> fns;
  {
    const std::lock_guard<std::mutex> lock(publisherMutex());
    fns = publishers();
  }
  for (void (*fn)() : fns) fn();
}

void registerProcessMetricsPublisher(void (*publisher)()) {
  {
    const std::lock_guard<std::mutex> lock(publisherMutex());
    publishers().push_back(publisher);
  }
  publisher();
}

}  // namespace ancstr::metrics
