// Dense row-major matrix of doubles: the numeric workhorse under the
// autograd tape, the GNN, PageRank, and the spectral baseline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ancstr::nn {

/// Dense rows x cols matrix. Cheap to move, explicit about shape; all
/// binary operations check shapes and throw ShapeError on mismatch.
class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialised rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);
  /// Matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);
  /// From row-major data; data.size() must equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix identity(std::size_t n);
  /// 1x1 matrix holding `v` (scalar results of reductions).
  static Matrix scalar(double v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool sameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  // --- in-place -------------------------------------------------------
  void fill(double v);
  void setZero() { fill(0.0); }
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  /// this += s * rhs (axpy).
  void addScaled(const Matrix& rhs, double s);

  // --- producers ------------------------------------------------------
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(double s) const;
  /// Elementwise product.
  Matrix hadamard(const Matrix& rhs) const;
  /// Dense matmul (this: m x k, rhs: k x n).
  Matrix matmul(const Matrix& rhs) const;
  /// matmul into a caller-owned output (reshaped/zeroed as needed), so hot
  /// loops can reuse the allocation. `out` must not alias an operand.
  void matmulInto(const Matrix& rhs, Matrix& out) const;
  Matrix transposed() const;
  /// Applies `f` elementwise.
  template <typename F>
  Matrix map(F f) const {
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
    return out;
  }

  // --- reductions / metrics --------------------------------------------
  double sum() const;
  double frobeniusNorm() const;
  double maxAbs() const;
  /// Cosine similarity between two equally-shaped matrices viewed as flat
  /// vectors; 0 when either norm is 0.
  static double cosineSimilarity(const Matrix& a, const Matrix& b);

  /// Copy of row r as a 1 x cols matrix.
  Matrix rowCopy(std::size_t r) const;

  /// Human-readable shape like "3x4" for diagnostics.
  std::string shapeString() const;

  bool operator==(const Matrix&) const = default;

 private:
  void requireSameShape(const Matrix& rhs, const char* op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ancstr::nn
