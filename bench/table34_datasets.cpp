// Reproduces Tables III and IV: statistics of the ADC and block-level
// benchmark corpora (device/net/valid-pair counts). Our generated corpus
// replaces the paper's proprietary netlists, so counts are in the same
// ballpark rather than identical; EXPERIMENTS.md records both.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "harness.h"
#include "netlist/flatten.h"

using namespace ancstr;

namespace {

void run(bench::BenchContext& ctx) {
  std::printf("=== Table III: ADC benchmark statistics ===\n");
  {
    TextTable table;
    table.setHeader({"Benchmark", "Architecture", "#Devices", "#Nets",
                     "#Valid Pairs", "#Truth"});
    const char* archs[] = {"2nd-order CT dsm", "3rd-order CT dsm",
                           "3rd-order CT dsm (res DAC)", "SAR",
                           "Hybrid CT dsm + SAR"};
    int idx = 0;
    for (const auto& bench : circuits::adcBenchmarks()) {
      const circuits::BenchmarkStats stats = circuits::computeStats(bench);
      table.addRow({"ADC" + std::to_string(idx + 1), archs[idx],
                    std::to_string(stats.devices), std::to_string(stats.nets),
                    std::to_string(stats.validPairs),
                    std::to_string(stats.truthConstraints)});
      ++idx;
    }
    table.print(std::cout);
  }

  std::printf("\n=== Table IV: block-level benchmark statistics ===\n");
  {
    TextTable table;
    table.setHeader({"Category", "#Circuits", "#Devices", "#Nets",
                     "#Valid Pairs", "#Truth"});
    struct Agg {
      std::size_t circuits = 0, devices = 0, nets = 0, pairs = 0, truth = 0;
    };
    std::vector<std::pair<std::string, Agg>> rows{
        {"OTA", {}}, {"COMP", {}}, {"DAC", {}}, {"LATCH", {}}};
    Agg total;
    for (const auto& bench : circuits::blockBenchmarks()) {
      const circuits::BenchmarkStats stats = circuits::computeStats(bench);
      for (auto& [cat, agg] : rows) {
        if (cat != bench.category) continue;
        ++agg.circuits;
        agg.devices += stats.devices;
        agg.nets += stats.nets;
        agg.pairs += stats.validPairs;
        agg.truth += stats.truthConstraints;
      }
      ++total.circuits;
      total.devices += stats.devices;
      total.nets += stats.nets;
      total.pairs += stats.validPairs;
      total.truth += stats.truthConstraints;
    }
    for (const auto& [cat, agg] : rows) {
      table.addRow({cat, std::to_string(agg.circuits),
                    std::to_string(agg.devices), std::to_string(agg.nets),
                    std::to_string(agg.pairs), std::to_string(agg.truth)});
    }
    table.addSeparator();
    table.addRow({"Total", std::to_string(total.circuits),
                  std::to_string(total.devices), std::to_string(total.nets),
                  std::to_string(total.pairs), std::to_string(total.truth)});
    table.print(std::cout);
    ctx.setCounter("block.circuits", static_cast<double>(total.circuits));
    ctx.setCounter("block.devices", static_cast<double>(total.devices));
    ctx.setCounter("block.valid_pairs", static_cast<double>(total.pairs));
  }
}

[[maybe_unused]] const bool kRegistered =
    bench::registerBench("table34.datasets", run);

}  // namespace

ANCSTR_BENCH_MAIN("table34_datasets")
