#include "circuits/synthetic.h"

#include "circuits/adc_parts.h"
#include "circuits/truth_composer.h"
#include "netlist/builder.h"

namespace ancstr::circuits {
namespace {

std::string num(const std::string& stem, int i) {
  return stem + std::to_string(i);
}

}  // namespace

CircuitBenchmark makeDiffChain(int stages) {
  NetlistBuilder b;
  std::vector<GroundTruthEntry> truth;
  const std::string name = "diffchain" + std::to_string(stages);
  b.beginSubckt(name, {"vinp", "vinn", "voutp", "voutn", "vbn", "vdd",
                       "vss"});
  for (int s = 0; s < stages; ++s) {
    const std::string inP = s == 0 ? "vinp" : num("n", s - 1) + "p";
    const std::string inN = s == 0 ? "vinn" : num("n", s - 1) + "n";
    const std::string outP =
        s == stages - 1 ? "voutp" : num("n", s) + "p";
    const std::string outN =
        s == stages - 1 ? "voutn" : num("n", s) + "n";
    const std::string tail = num("t", s);
    b.nmos(num("m1_", s), outN, inP, tail, "vss", 2e-6, 0.2e-6);
    b.nmos(num("m2_", s), outP, inN, tail, "vss", 2e-6, 0.2e-6);
    b.pmos(num("m3_", s), outN, "vbn", "vdd", "vdd", 4e-6, 0.3e-6);
    b.pmos(num("m4_", s), outP, "vbn", "vdd", "vdd", 4e-6, 0.3e-6);
    b.nmos(num("m5_", s), tail, "vbn", "vss", "vss", 4e-6, 0.4e-6);
    b.cap(num("c1_", s), outP, "vss", 20e-15);
    b.cap(num("c2_", s), outN, "vss", 20e-15);
    b.res(num("r1_", s), outP, "vdd", 10e3);
    b.res(num("r2_", s), outN, "vdd", 10e3);
    truth.push_back({"", num("m1_", s), num("m2_", s),
                     ConstraintLevel::kDevice});
    truth.push_back({"", num("m3_", s), num("m4_", s),
                     ConstraintLevel::kDevice});
    truth.push_back({"", num("c1_", s), num("c2_", s),
                     ConstraintLevel::kDevice});
    truth.push_back({"", num("r1_", s), num("r2_", s),
                     ConstraintLevel::kDevice});
  }
  b.endSubckt();

  CircuitBenchmark bench;
  bench.name = name;
  bench.category = "SYNTH";
  bench.lib = b.build(name);
  bench.truth = GroundTruth(std::move(truth));
  return bench;
}

CircuitBenchmark makeBlockArray(int blocks) {
  NetlistBuilder b;
  TruthComposer t;
  PartsContext ctx{b, t};
  const std::string name = "blockarray" + std::to_string(blocks);
  buildOtaFd(ctx, "ota_cell", 1.0);

  b.beginSubckt(name, {"vin", "ibias", "vdd", "vss"});
  for (int i = 0; i < blocks; ++i) {
    b.inst(num("xota", i), "ota_cell",
           {"vin", num("mid", i) + "a", num("mid", i) + "b",
            num("out", i), "ibias", "vdd", "vss"});
    t.child(name, num("xota", i), "ota_cell");
    if (i % 2 == 1) t.systemPair(name, num("xota", i - 1), num("xota", i));
  }
  b.endSubckt();

  CircuitBenchmark bench;
  bench.name = name;
  bench.category = "SYNTH";
  bench.lib = b.build(name);
  bench.truth = GroundTruth(t.expand(name));
  return bench;
}

CircuitBenchmark makeMirrorBank(int banks) {
  NetlistBuilder b;
  std::vector<GroundTruthEntry> truth;
  const std::string name = "mirrorbank" + std::to_string(banks);
  b.beginSubckt(name, {"vdd", "vss"});
  for (int i = 0; i < banks; ++i) {
    const std::string bias = num("bias", i);
    const std::string ref = num("mref", i);
    // Diode-connected reference, fed from vdd through a bias resistor.
    b.nmos(ref, bias, bias, "vss", "vss", 2e-6, 0.4e-6);
    b.res(num("rb", i), bias, "vdd", 50e3);
    for (int j = 0; j < 3; ++j) {
      const std::string out = num("o", i) + "_" + std::to_string(j);
      const std::string mir = num("mout", i) + "_" + std::to_string(j);
      b.nmos(mir, out, bias, "vss", "vss", 2e-6 * static_cast<double>(1 << j),
             0.4e-6);
      b.res(num("rl", i) + "_" + std::to_string(j), out, "vdd", 10e3);
      truth.push_back({"", ref, mir, ConstraintLevel::kDevice,
                       ConstraintType::kCurrentMirror});
    }
  }
  b.endSubckt();

  CircuitBenchmark bench;
  bench.name = name;
  bench.category = "SYNTH";
  bench.lib = b.build(name);
  bench.truth = GroundTruth(std::move(truth));
  return bench;
}

}  // namespace ancstr::circuits
