// RunReport: the unified result surface for one top-level operation
// (Pipeline::extract / Pipeline::train / a bench run) — ordered per-phase
// wall-clock plus a metrics delta, renderable as JSON or an ASCII table.
//
// Callers consume the report directly (phaseSeconds / totalSeconds /
// toJson / toTable); there are no derived timing views.
#pragma once

#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "util/diagnostics.h"
#include "util/metrics.h"

namespace ancstr {

class Json;

/// One phase of a run, in execution order.
struct PhaseTiming {
  std::string name;
  double seconds = 0.0;
};

struct RunReport {
  std::vector<PhaseTiming> phases;   ///< execution order
  metrics::Snapshot metrics;         ///< delta over the run
  /// Problems collected during a fail-soft run (empty in strict mode,
  /// which throws instead — see docs/robustness.md).
  std::vector<diag::Diagnostic> diagnostics;
  /// Request correlation (docs/observability.md): the serving request id
  /// stamped by the ExtractionEngine (per-engine monotonic) or
  /// Pipeline::extract (process-wide); 0 = unset (training, bench
  /// aggregation). Omitted from toJson when unset, so pre-PR-9 report
  /// JSON is unchanged.
  std::uint64_t requestId = 0;
  /// Caller-supplied correlation id (ExtractOptions::correlationId),
  /// copied verbatim; "" = none (omitted from toJson).
  std::string correlationId;
  /// Active nn kernel backend ("scalar" | "avx2" | "avx512" — see
  /// nn/kernels.h) stamped by extract/train entry points so perf numbers
  /// can be attributed to a dispatch. "" = unset (omitted from toJson).
  /// Results are bitwise identical across backends; this is a
  /// perf-attribution label, never a cache-key input.
  std::string kernel;

  void addPhase(std::string name, double seconds) {
    phases.push_back(PhaseTiming{std::move(name), seconds});
  }

  void addDiagnostics(std::vector<diag::Diagnostic> more) {
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(more.begin()),
                       std::make_move_iterator(more.end()));
  }

  /// Folds another run into this one: same-name phase seconds add (new
  /// phase names append in `other`'s order), diagnostics append, and the
  /// metrics snapshot is replaced by `other`'s (callers that need a
  /// combined delta snapshot the registry around the whole sequence).
  /// Lets the bench harness aggregate per-extraction reports into one
  /// per-case phase breakdown.
  void accumulate(const RunReport& other);

  std::size_t errorCount() const {
    std::size_t n = 0;
    for (const diag::Diagnostic& d : diagnostics) {
      if (d.severity == diag::Severity::kError) ++n;
    }
    return n;
  }

  /// Seconds of the named phase; 0 when absent.
  double phaseSeconds(std::string_view name) const;

  /// Sum over all phases.
  double totalSeconds() const;

  /// {["requestId"], ["correlationId"], ["kernel"],
  /// "phases": [{"name", "seconds"}...], "totalSeconds", "metrics"} —
  /// request/kernel keys only when set.
  Json toJson() const;

  /// Aligned ASCII rendering: a phase table followed by non-zero
  /// counters/gauges and histogram summaries.
  std::string toTable() const;
};

}  // namespace ancstr
