#include "core/detector.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/error.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ancstr {

double systemThreshold(double alpha, double beta,
                       std::size_t maxSubcircuitSize) {
  return std::min(0.999,
                  alpha + beta / (1.0 + static_cast<double>(maxSubcircuitSize)));
}

namespace {

double ratio(double a, double b) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  if (hi <= 0.0) return 1.0;  // neither side carries this parameter
  return lo <= 0.0 ? 0.0 : lo / hi;
}

}  // namespace

double deviceSizeSimilarity(const FlatDevice& a, const FlatDevice& b) {
  const double wa = a.params.w * a.params.nf * a.params.m;
  const double wb = b.params.w * b.params.nf * b.params.m;
  return ratio(wa, wb) * ratio(a.params.l, b.params.l) *
         ratio(a.params.value, b.params.value);
}

namespace {

/// Geometric mean of the per-position sizing agreements of two blocks'
/// representative devices, times a length-mismatch penalty.
double blockSizeSimilarity(const FlatDesign& design,
                           const std::vector<FlatDeviceId>& a,
                           const std::vector<FlatDeviceId>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return a.size() == b.size() ? 1.0 : 0.0;
  double logSum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s =
        deviceSizeSimilarity(design.device(a[i]), design.device(b[i]));
    if (s <= 0.0) return 0.0;
    logSum += std::log(s);
  }
  const double geomMean = std::exp(logSum / static_cast<double>(n));
  const double lengthPenalty =
      static_cast<double>(n) /
      static_cast<double>(std::max(a.size(), b.size()));
  return geomMean * lengthPenalty;
}

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

std::string localDeviceName(const FlatDevice& dev) {
  const std::size_t slash = dev.path.rfind('/');
  return slash == std::string::npos ? dev.path : dev.path.substr(slash + 1);
}

/// First net attached through `function`, or nullopt.
std::optional<FlatNetId> pinNet(const FlatDevice& dev, PinFunction function) {
  for (const auto& [fn, net] : dev.pins) {
    if (fn == function) return net;
  }
  return std::nullopt;
}

/// Diode-connected MOS: gate and drain tied to one net.
bool isDiodeConnected(const FlatDevice& dev) {
  if (!isMos(dev.type)) return false;
  const auto gate = pinNet(dev, PinFunction::kGate);
  const auto drain = pinNet(dev, PinFunction::kDrain);
  return gate && drain && *gate == *drain;
}

double effectiveWidth(const FlatDevice& dev) {
  return dev.params.w * static_cast<double>(dev.params.nf) *
         static_cast<double>(dev.params.m);
}

/// Gate/drain-sharing heuristic: every (diode-connected reference,
/// same-type gate+source-sharing branch) pair under one hierarchy node,
/// in (node id, reference device, branch device) order — deterministic
/// by construction, so the scoring fan-out below is thread-count
/// independent.
std::vector<CandidatePair> enumerateMirrorCandidates(
    const FlatDesign& design, const MirrorConfig& config) {
  std::vector<CandidatePair> out;
  for (const HierNode& node : design.hierarchy()) {
    for (const FlatDeviceId refId : node.leafDevices) {
      const FlatDevice& ref = design.device(refId);
      if (!isDiodeConnected(ref)) continue;
      const FlatNetId gate = *pinNet(ref, PinFunction::kGate);
      if (design.netTerminals()[gate].size() > config.maxGateNetDegree) {
        continue;
      }
      const auto refSource = pinNet(ref, PinFunction::kSource);
      if (!refSource) continue;
      for (const FlatDeviceId mirId : node.leafDevices) {
        if (mirId == refId) continue;
        const FlatDevice& mir = design.device(mirId);
        if (mir.type != ref.type || isDiodeConnected(mir)) continue;
        if (pinNet(mir, PinFunction::kGate) != std::optional(gate)) continue;
        if (pinNet(mir, PinFunction::kSource) != refSource) continue;
        CandidatePair pair;
        pair.hierarchy = node.id;
        pair.level = ConstraintLevel::kDevice;
        pair.a = {ModuleKind::kDevice, refId};
        pair.b = {ModuleKind::kDevice, mirId};
        pair.nameA = localDeviceName(ref);
        pair.nameB = localDeviceName(mir);
        out.push_back(std::move(pair));
      }
    }
  }
  return out;
}

}  // namespace

ConstraintSet buildConstraintSet(const FlatDesign& design,
                                 const DetectionResult& detection) {
  ConstraintSet set;
  set.systemThreshold = detection.systemThreshold;
  set.deviceThreshold = detection.deviceThreshold;
  set.mirrorThreshold = detection.mirrorThreshold;
  for (const ScoredCandidate& c : detection.scored) {
    if (!c.accepted) continue;
    Constraint constraint;
    constraint.type = ConstraintType::kSymmetryPair;
    constraint.hierarchy = c.pair.hierarchy;
    constraint.level = c.pair.level;
    constraint.members = {{c.pair.a.kind, c.pair.a.id, c.pair.nameA},
                          {c.pair.b.kind, c.pair.b.id, c.pair.nameB}};
    constraint.score = c.similarity;
    set.add(std::move(constraint));
  }
  for (const ScoredCandidate& c : detection.mirrorScored) {
    if (!c.accepted) continue;
    Constraint constraint;
    constraint.type = ConstraintType::kCurrentMirror;
    constraint.hierarchy = c.pair.hierarchy;
    constraint.level = c.pair.level;
    constraint.members = {{c.pair.a.kind, c.pair.a.id, c.pair.nameA},
                          {c.pair.b.kind, c.pair.b.id, c.pair.nameB}};
    constraint.score = c.similarity;
    const double refWidth = effectiveWidth(design.device(c.pair.a.id));
    const double mirWidth = effectiveWidth(design.device(c.pair.b.id));
    constraint.ratio = refWidth > 0.0 ? mirWidth / refWidth : 1.0;
    set.add(std::move(constraint));
  }
  set.canonicalize();
  return set;
}

namespace {

DetectionResult detectImpl(const FlatDesign& design, const Library& lib,
                           const nn::Matrix& designEmbeddings,
                           const DetectorConfig& config,
                           const BlockEmbeddingContext* blockContext,
                           PairScoreCache* pairCache, std::size_t threads) {
  const trace::TraceSpan detectSpan("detect.run");
  static metrics::Counter& scoredCounter =
      metrics::Registry::instance().counter("detector.pairs_scored");
  static metrics::Counter& acceptedCounter =
      metrics::Registry::instance().counter("detector.pairs_accepted");
  static metrics::Counter& mirrorCandidatesCounter =
      metrics::Registry::instance().counter("detector.mirror.candidates");
  static metrics::Counter& mirrorAcceptedCounter =
      metrics::Registry::instance().counter("detector.mirror.accepted");

  if (designEmbeddings.rows() != design.devices().size()) {
    throw ShapeError(
        "detectConstraints: embeddings rows must equal device count");
  }
  const bool localBlocks =
      config.localBlockEmbeddings && blockContext != nullptr;
  // Pair-score caching is sound only in local mode, where a block pair's
  // similarity is a pure function of the two subtree hashes.
  const bool usePairCache = localBlocks && pairCache != nullptr;

  DetectionResult result;
  result.systemThreshold =
      systemThreshold(config.alpha, config.beta, design.maxSubcircuitSize());
  result.deviceThreshold = config.deviceThreshold;
  result.mirrorThreshold = config.mirror.threshold;

  const CandidateSet candidates = enumerateCandidates(design, lib);

  util::ThreadPool pool(util::resolveThreadCount(threads));

  // Phase 1: Algorithm-2 embeddings for every distinct block endpoint, in
  // first-appearance order. Each block is independent, so they fan out
  // over the pool; the same representative-device list feeds both the
  // structural concatenation and the sizing factor, so aligned vertices
  // are compared.
  std::unordered_map<HierNodeId, std::size_t> blockIndex;
  std::vector<HierNodeId> blockNodes;
  for (const CandidatePair& pair : candidates.pairs) {
    if (pair.a.kind != ModuleKind::kBlock) continue;
    for (const HierNodeId node : {pair.a.id, pair.b.id}) {
      if (blockIndex.emplace(node, blockNodes.size()).second) {
        blockNodes.push_back(node);
      }
    }
  }
  std::vector<SubcircuitEmbedding> blocks;
  {
    const trace::TraceSpan span("detect.embed_blocks");
    blocks = embedSubcircuits(design, blockNodes, designEmbeddings,
                              config.embedding, config.graphOptions,
                              localBlocks ? blockContext : nullptr, pool,
                              /*computeHashes=*/usePairCache);
  }

  // Phase 2: score every candidate pair. Each similarity is independent
  // and lands in its own slot, so results are bitwise identical to the
  // serial loop for any pool size.
  const trace::TraceSpan scoreSpan("detect.score");
  result.scored.resize(candidates.pairs.size());
  pool.forEach(candidates.pairs.size(), [&](std::size_t i) {
    const CandidatePair& pair = candidates.pairs[i];
    ScoredCandidate& scored = result.scored[i];
    scored.pair = pair;
    if (pair.a.kind == ModuleKind::kBlock) {
      const SubcircuitEmbedding& ea = blocks[blockIndex.at(pair.a.id)];
      const SubcircuitEmbedding& eb = blocks[blockIndex.at(pair.b.id)];
      const bool cacheable = usePairCache && ea.hashValid && eb.hashValid;
      const PairScoreKey key{ea.hash, eb.hash};
      if (cacheable && pairCache->lookup(key, &scored.similarity)) {
        // Hit: the cached value is the bitwise-identical similarity the
        // recompute below would produce. The accept decision still runs —
        // the threshold depends on the surrounding design.
      } else {
        scored.similarity = embeddingCosine(ea.structural, eb.structural);
        if (config.sizingAwareSimilarity) {
          scored.similarity *= clamp01(
              blockSizeSimilarity(design, ea.devices, eb.devices));
        }
        if (cacheable) pairCache->store(key, scored.similarity);
      }
    } else {
      const nn::Matrix za = designEmbeddings.rowCopy(pair.a.id);
      const nn::Matrix zb = designEmbeddings.rowCopy(pair.b.id);
      scored.similarity = nn::Matrix::cosineSimilarity(za, zb);
      if (config.sizingAwareSimilarity) {
        scored.similarity *= clamp01(deviceSizeSimilarity(
            design.device(pair.a.id), design.device(pair.b.id)));
      }
    }
    const double threshold = pair.level == ConstraintLevel::kSystem
                                 ? result.systemThreshold
                                 : result.deviceThreshold;
    scored.accepted = scored.similarity > threshold;
  });

  // Phase 3: current mirrors. Candidates come from the gate/drain-
  // sharing topology heuristic; scores are embedding-row cosines times
  // the gate-length agreement, each landing in its own slot (bitwise
  // thread-count independent like phase 2).
  if (config.mirror.enabled) {
    const trace::TraceSpan mirrorSpan("detect.mirrors");
    const std::vector<CandidatePair> mirrorPairs =
        enumerateMirrorCandidates(design, config.mirror);
    result.mirrorScored.resize(mirrorPairs.size());
    pool.forEach(mirrorPairs.size(), [&](std::size_t i) {
      const CandidatePair& pair = mirrorPairs[i];
      ScoredCandidate& scored = result.mirrorScored[i];
      scored.pair = pair;
      const nn::Matrix za = designEmbeddings.rowCopy(pair.a.id);
      const nn::Matrix zb = designEmbeddings.rowCopy(pair.b.id);
      scored.similarity = nn::Matrix::cosineSimilarity(za, zb);
      const FlatDevice& ref = design.device(pair.a.id);
      const FlatDevice& mir = design.device(pair.b.id);
      // Length must agree for the mirror ratio to be W-defined; the
      // width multiple is intent, not mismatch (reported as ratio).
      scored.similarity *= clamp01(ratio(ref.params.l, mir.params.l));
      scored.accepted = scored.similarity > result.mirrorThreshold;
    });
  }

  result.set = buildConstraintSet(design, result);

  // Publish metrics once, serially, after the fan-out (never per pair
  // inside worker loops — see util/metrics.h).
  std::uint64_t accepted = 0;
  for (const ScoredCandidate& c : result.scored) {
    if (c.accepted) ++accepted;
  }
  scoredCounter.add(result.scored.size());
  acceptedCounter.add(accepted);
  mirrorCandidatesCounter.add(result.mirrorScored.size());
  mirrorAcceptedCounter.add(
      result.set.count(ConstraintType::kCurrentMirror));
  return result;
}

}  // namespace

DetectionResult detectConstraints(const FlatDesign& design, const Library& lib,
                                  const nn::Matrix& designEmbeddings,
                                  const DetectorConfig& config,
                                  std::size_t threads) {
  return detectImpl(design, lib, designEmbeddings, config, nullptr, nullptr,
                    threads);
}

DetectionResult detectConstraints(const FlatDesign& design, const Library& lib,
                                  const nn::Matrix& designEmbeddings,
                                  const DetectorConfig& config,
                                  const BlockEmbeddingContext& blockContext,
                                  std::size_t threads) {
  return detectImpl(design, lib, designEmbeddings, config, &blockContext,
                    nullptr, threads);
}

DetectionResult detectConstraints(const FlatDesign& design, const Library& lib,
                                  const nn::Matrix& designEmbeddings,
                                  const DetectorConfig& config,
                                  const BlockEmbeddingContext& blockContext,
                                  PairScoreCache* pairCache,
                                  std::size_t threads) {
  return detectImpl(design, lib, designEmbeddings, config, &blockContext,
                    pairCache, threads);
}

}  // namespace ancstr
