#include <gtest/gtest.h>

#include "circuits/benchmark.h"
#include "core/candidates.h"
#include "core/detector.h"
#include "netlist/flatten.h"

namespace ancstr::circuits {
namespace {

class BlockCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { corpus_ = new auto(blockBenchmarks()); }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static std::vector<CircuitBenchmark>* corpus_;
};

std::vector<CircuitBenchmark>* BlockCorpusTest::corpus_ = nullptr;

TEST_F(BlockCorpusTest, FifteenCircuitsInFourCategories) {
  ASSERT_EQ(corpus_->size(), 15u);
  std::size_t ota = 0, comp = 0, dac = 0, latch = 0;
  for (const auto& bench : *corpus_) {
    if (bench.category == "OTA") ++ota;
    if (bench.category == "COMP") ++comp;
    if (bench.category == "DAC") ++dac;
    if (bench.category == "LATCH") ++latch;
  }
  EXPECT_EQ(ota, 6u);
  EXPECT_EQ(comp, 6u);
  EXPECT_EQ(dac, 2u);
  EXPECT_EQ(latch, 1u);
}

TEST_F(BlockCorpusTest, AllElaborateAndValidate) {
  for (const auto& bench : *corpus_) {
    SCOPED_TRACE(bench.name);
    EXPECT_NO_THROW({
      const FlatDesign design = FlatDesign::elaborate(bench.lib);
      EXPECT_GT(design.devices().size(), 5u);
    });
  }
}

TEST_F(BlockCorpusTest, GroundTruthPairsAreValidCandidates) {
  // Every annotated symmetry pair must be enumerable as a valid
  // candidate: same hierarchy, same type. (Mirror entries live in the
  // separate mirror enumeration, checked below.)
  for (const auto& bench : *corpus_) {
    SCOPED_TRACE(bench.name);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const CandidateSet candidates = enumerateCandidates(design, bench.lib);
    std::size_t matched = 0;
    for (const CandidatePair& p : candidates.pairs) {
      if (bench.truth.matches(design, p)) ++matched;
    }
    EXPECT_EQ(matched, bench.truth.count(ConstraintType::kSymmetryPair))
        << "some ground-truth pairs are not valid candidates";
  }
}

TEST_F(BlockCorpusTest, GroundTruthMirrorsAreEnumerableCandidates) {
  // Every annotated current mirror must come out of the detector's
  // gate/drain-sharing candidate enumeration (scoring uses placeholder
  // embeddings; only the candidate list matters here).
  for (const auto& bench : *corpus_) {
    SCOPED_TRACE(bench.name);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const nn::Matrix z(design.devices().size(), 2, 1.0);
    const DetectionResult result =
        detectConstraints(design, bench.lib, z, DetectorConfig{});
    std::size_t matched = 0;
    for (const ScoredCandidate& c : result.mirrorScored) {
      if (bench.truth.matchesMirror(design, c.pair)) ++matched;
    }
    EXPECT_EQ(matched, bench.truth.count(ConstraintType::kCurrentMirror))
        << "some ground-truth mirrors are not enumerable candidates";
  }
}

TEST_F(BlockCorpusTest, EveryCircuitHasTrueNegatives) {
  // Realistic corpora contain same-type pairs that are NOT matched.
  for (const auto& bench : *corpus_) {
    SCOPED_TRACE(bench.name);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const CandidateSet candidates = enumerateCandidates(design, bench.lib);
    EXPECT_GT(candidates.pairs.size(), bench.truth.size());
  }
}

TEST_F(BlockCorpusTest, MatchedPairsShareTypeAndSizing) {
  for (const auto& bench : *corpus_) {
    SCOPED_TRACE(bench.name);
    const FlatDesign design = FlatDesign::elaborate(bench.lib);
    const CandidateSet candidates = enumerateCandidates(design, bench.lib);
    for (const CandidatePair& p : candidates.pairs) {
      if (!bench.truth.matches(design, p)) continue;
      const FlatDevice& a = design.device(p.a.id);
      const FlatDevice& b = design.device(p.b.id);
      EXPECT_EQ(a.type, b.type) << p.nameA << "/" << p.nameB;
      EXPECT_DOUBLE_EQ(a.params.w, b.params.w) << p.nameA << "/" << p.nameB;
      EXPECT_DOUBLE_EQ(a.params.value, b.params.value)
          << p.nameA << "/" << p.nameB;
    }
  }
}

TEST_F(BlockCorpusTest, StatsAreReasonable) {
  std::size_t totalDevices = 0, totalPairs = 0;
  for (const auto& bench : *corpus_) {
    const BenchmarkStats stats = computeStats(bench);
    totalDevices += stats.devices;
    totalPairs += stats.validPairs;
    EXPECT_GT(stats.nets, 0u);
  }
  // Table IV ballpark: ~324 devices, ~2005 valid pairs across the corpus.
  EXPECT_GT(totalDevices, 200u);
  EXPECT_LT(totalDevices, 600u);
  EXPECT_GT(totalPairs, 100u);
}

TEST_F(BlockCorpusTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& bench : *corpus_) {
    EXPECT_TRUE(names.insert(bench.name).second) << bench.name;
  }
}

}  // namespace
}  // namespace ancstr::circuits
