// The only TU compiled with -mavx512f (plus -ffp-contract=off; see
// src/nn/CMakeLists.txt). When the toolchain cannot target AVX-512F the
// table accessor returns null and dispatch falls back.
#include "nn/kernels_avx512.h"

namespace ancstr::nn::kdetail {

const KernelOps* avx512Ops() {
#if defined(__AVX512F__)
  static const KernelOps ops{avx512::gemmAcc, avx512::gemmBatchAcc,
                             avx512::gemv, avx512::axpy};
  return &ops;
#else
  return nullptr;
#endif
}

}  // namespace ancstr::nn::kdetail
