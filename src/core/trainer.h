// Unsupervised inductive training loop (paper Section IV-C): minimise the
// graph-context loss (Eq. 2) with Adam over all circuits of the corpus.
// Training is inductive — the resulting weights apply to unseen circuits.
#pragma once

#include <vector>

#include "core/model.h"
#include "core/sampler.h"
#include "util/rng.h"

namespace ancstr {

struct TrainConfig {
  int epochs = 80;
  double learningRate = 5e-3;
  int negativeSamples = 5;     ///< B in Eq. 2
  double clipNorm = 5.0;       ///< global gradient-norm clip; <=0 disables
  bool meanReduction = true;   ///< see contrastiveLoss
  bool verbose = false;        ///< log per-epoch loss
};

struct TrainStats {
  std::vector<double> epochLoss;  ///< mean loss per epoch
  double seconds = 0.0;

  double finalLoss() const {
    return epochLoss.empty() ? 0.0 : epochLoss.back();
  }
};

/// Trains `model` in place over the prepared corpus. Deterministic for a
/// given rng state. Throws ShapeError when graph features disagree with
/// the model's configured featureDim.
TrainStats trainUnsupervised(GnnModel& model,
                             const std::vector<PreparedGraph>& corpus,
                             const TrainConfig& config, Rng& rng);

}  // namespace ancstr
