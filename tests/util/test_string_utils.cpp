#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace ancstr::str {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a"), "a");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(toLower("AbC_12"), "abc_12");
  EXPECT_EQ(toLower(""), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(startsWith("subckt foo", "subckt"));
  EXPECT_FALSE(startsWith("sub", "subckt"));
  EXPECT_TRUE(startsWith("x", ""));
}

TEST(SplitTokens, DropsEmpty) {
  const auto tokens = splitTokens("  a\tb   c\n");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
  EXPECT_TRUE(splitTokens("   ").empty());
}

TEST(SplitFirst, SplitsOnce) {
  auto [k, v] = splitFirst("w=2u", '=');
  EXPECT_EQ(k, "w");
  EXPECT_EQ(v, "2u");
  auto [k2, v2] = splitFirst("noequals", '=');
  EXPECT_EQ(k2, "noequals");
  EXPECT_TRUE(v2.empty());
  auto [k3, v3] = splitFirst("a=b=c", '=');
  EXPECT_EQ(v3, "b=c");
}

struct SpiceNumberCase {
  const char* text;
  double expected;
};

class SpiceNumberTest : public ::testing::TestWithParam<SpiceNumberCase> {};

TEST_P(SpiceNumberTest, ParsesEngineeringSuffix) {
  const auto& param = GetParam();
  const auto v = parseSpiceNumber(param.text);
  ASSERT_TRUE(v.has_value()) << param.text;
  EXPECT_NEAR(*v, param.expected, std::abs(param.expected) * 1e-12 + 1e-30)
      << param.text;
}

INSTANTIATE_TEST_SUITE_P(
    Suffixes, SpiceNumberTest,
    ::testing::Values(
        SpiceNumberCase{"1", 1.0}, SpiceNumberCase{"-2.5", -2.5},
        SpiceNumberCase{"1.5k", 1500.0}, SpiceNumberCase{"10u", 1e-5},
        SpiceNumberCase{"3n", 3e-9}, SpiceNumberCase{"2p", 2e-12},
        SpiceNumberCase{"5f", 5e-15}, SpiceNumberCase{"4meg", 4e6},
        SpiceNumberCase{"7x", 7e6}, SpiceNumberCase{"2m", 2e-3},
        SpiceNumberCase{"1g", 1e9}, SpiceNumberCase{"1t", 1e12},
        SpiceNumberCase{"2a", 2e-18}, SpiceNumberCase{"1e-9", 1e-9},
        SpiceNumberCase{"1.5E3", 1500.0}, SpiceNumberCase{"10uF", 1e-5},
        SpiceNumberCase{"100 ", 100.0}, SpiceNumberCase{"3.3v", 3.3}));

TEST(ParseSpiceNumber, RejectsNonNumeric) {
  EXPECT_FALSE(parseSpiceNumber("abc").has_value());
  EXPECT_FALSE(parseSpiceNumber("").has_value());
  EXPECT_FALSE(parseSpiceNumber("  ").has_value());
}

TEST(FormatCompact, TrimsZeros) {
  EXPECT_EQ(formatCompact(1500.0), "1500");
  EXPECT_EQ(formatCompact(1e-05), "1e-05");
  EXPECT_EQ(formatCompact(2.5), "2.5");
}

}  // namespace
}  // namespace ancstr::str
