// Graph Laplacian builders over the undirected view of a SimpleDigraph.
// The S3DET baseline compares subcircuits through the spectra of these
// operators.
#pragma once

#include "graph/digraph.h"
#include "nn/matrix.h"

namespace ancstr {

/// Undirected 0/1 adjacency: A[u][v] = A[v][u] = 1 iff u->v or v->u.
nn::Matrix undirectedAdjacency(const SimpleDigraph& g);

/// Combinatorial Laplacian L = D - A over the undirected view.
nn::Matrix combinatorialLaplacian(const SimpleDigraph& g);

/// Symmetric normalised Laplacian I - D^(-1/2) A D^(-1/2); isolated
/// vertices contribute zero rows/cols.
nn::Matrix normalizedLaplacian(const SimpleDigraph& g);

}  // namespace ancstr
