// AVX2 kernel backend (4-wide double vectors). Only meaningful when the
// including TU is compiled with -mavx2 (kernels_avx2.cpp is the only such
// TU); without __AVX2__ the header is empty so it stays safe to include —
// and to syntax-check standalone — from baseline TUs.
//
// Numeric contract: identical per-element operation sequence to the
// reference implementations in kernels_detail.h — multiply and add are
// separate rounds (-mavx2 does not enable FMA, and the TU is compiled with
// -ffp-contract=off), k is folded in ascending order, vectorisation is
// across independent output columns only, and the gemv lanes follow the
// fixed 8-lane decomposition. See docs/api.md "Numeric contract".
#pragma once

#include "nn/kernels_detail.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ancstr::nn::kdetail::avx2 {

/// One row's j-loop of gemmAcc: cRow += av * bRow over n columns.
static inline void rowUpdate(double* cRow, const double* bRow, double av,
                             std::size_t n) {
  const __m256d va = _mm256_set1_pd(av);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vb = _mm256_loadu_pd(bRow + j);
    const __m256d vc = _mm256_loadu_pd(cRow + j);
    _mm256_storeu_pd(cRow + j, _mm256_add_pd(vc, _mm256_mul_pd(va, vb)));
  }
  for (; j < n; ++j) cRow[j] += av * bRow[j];
}

/// Mask whose low `rem` (1..4) 64-bit lanes have the sign bit set, as
/// _mm256_maskload_pd/_mm256_maskstore_pd expect.
static inline __m256i laneMask(std::size_t rem) {
  return _mm256_set_epi64x(rem > 3 ? -1 : 0, rem > 2 ? -1 : 0,
                           rem > 1 ? -1 : 0, rem > 0 ? -1 : 0);
}

/// Narrow-output gemmAcc (n <= 4 * NV): each C row fits NV vectors, so the
/// accumulators live in registers across the whole k loop — loaded from C
/// once, stored once. Per output element this performs the exact same
/// ascending-k add sequence as the load/add/store form (the adds fold into
/// the same running value), so bitwise identity is preserved while the
/// per-k C traffic disappears. The zero-skip stays per (i, k). Rows go in
/// blocks of 2: with NV <= 6 that is 12 accumulators plus broadcasts and a
/// B vector inside the 16 ymm registers.
template <int NV>
static inline void gemmAccNarrow(const double* a, const double* b, double* c,
                                 std::size_t m, std::size_t k, std::size_t n) {
  __m256i masks[NV];
  for (int v = 0; v < NV; ++v) {
    const std::size_t lanes = n - static_cast<std::size_t>(4 * v);
    masks[v] = laneMask(lanes >= 4 ? 4 : lanes);
  }
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* aRow0 = a + i * k;
    const double* aRow1 = aRow0 + k;
    double* cRow0 = c + i * n;
    double* cRow1 = cRow0 + n;
    __m256d acc0[NV], acc1[NV];
    for (int v = 0; v < NV; ++v) {
      acc0[v] = _mm256_maskload_pd(cRow0 + 4 * v, masks[v]);
      acc1[v] = _mm256_maskload_pd(cRow1 + 4 * v, masks[v]);
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double a0 = aRow0[p], a1 = aRow1[p];
      const double* bRow = b + p * n;
      if (a0 == 0.0 && a1 == 0.0) continue;
      const __m256d va0 = _mm256_set1_pd(a0);
      const __m256d va1 = _mm256_set1_pd(a1);
      for (int v = 0; v < NV; ++v) {
        const __m256d vb = _mm256_maskload_pd(bRow + 4 * v, masks[v]);
        if (a0 != 0.0) acc0[v] = _mm256_add_pd(acc0[v], _mm256_mul_pd(va0, vb));
        if (a1 != 0.0) acc1[v] = _mm256_add_pd(acc1[v], _mm256_mul_pd(va1, vb));
      }
    }
    for (int v = 0; v < NV; ++v) {
      _mm256_maskstore_pd(cRow0 + 4 * v, masks[v], acc0[v]);
      _mm256_maskstore_pd(cRow1 + 4 * v, masks[v], acc1[v]);
    }
  }
  for (; i < m; ++i) {
    const double* aRow = a + i * k;
    double* cRow = c + i * n;
    __m256d acc[NV];
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm256_maskload_pd(cRow + 4 * v, masks[v]);
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      const __m256d va = _mm256_set1_pd(av);
      const double* bRow = b + p * n;
      for (int v = 0; v < NV; ++v) {
        acc[v] = _mm256_add_pd(
            acc[v], _mm256_mul_pd(va, _mm256_maskload_pd(bRow + 4 * v,
                                                         masks[v])));
      }
    }
    for (int v = 0; v < NV; ++v) {
      _mm256_maskstore_pd(cRow + 4 * v, masks[v], acc[v]);
    }
  }
}

static inline void gemmAcc(const double* a, const double* b, double* c,
                           std::size_t m, std::size_t k, std::size_t n) {
  if (n > 0 && n <= 24) {
    switch ((n + 3) / 4) {
      case 1: gemmAccNarrow<1>(a, b, c, m, k, n); return;
      case 2: gemmAccNarrow<2>(a, b, c, m, k, n); return;
      case 3: gemmAccNarrow<3>(a, b, c, m, k, n); return;
      case 4: gemmAccNarrow<4>(a, b, c, m, k, n); return;
      case 5: gemmAccNarrow<5>(a, b, c, m, k, n); return;
      default: gemmAccNarrow<6>(a, b, c, m, k, n); return;
    }
  }
  std::size_t i = 0;
  // 4-row blocks share each B row load; the zero-skip stays per (i, k).
  for (; i + 4 <= m; i += 4) {
    const double* aRow0 = a + i * k;
    const double* aRow1 = aRow0 + k;
    const double* aRow2 = aRow1 + k;
    const double* aRow3 = aRow2 + k;
    double* cRow0 = c + i * n;
    double* cRow1 = cRow0 + n;
    double* cRow2 = cRow1 + n;
    double* cRow3 = cRow2 + n;
    for (std::size_t p = 0; p < k; ++p) {
      const double a0 = aRow0[p], a1 = aRow1[p];
      const double a2 = aRow2[p], a3 = aRow3[p];
      const double* bRow = b + p * n;
      if (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
        const __m256d v0 = _mm256_set1_pd(a0);
        const __m256d v1 = _mm256_set1_pd(a1);
        const __m256d v2 = _mm256_set1_pd(a2);
        const __m256d v3 = _mm256_set1_pd(a3);
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
          const __m256d vb = _mm256_loadu_pd(bRow + j);
          _mm256_storeu_pd(cRow0 + j, _mm256_add_pd(_mm256_loadu_pd(cRow0 + j),
                                                    _mm256_mul_pd(v0, vb)));
          _mm256_storeu_pd(cRow1 + j, _mm256_add_pd(_mm256_loadu_pd(cRow1 + j),
                                                    _mm256_mul_pd(v1, vb)));
          _mm256_storeu_pd(cRow2 + j, _mm256_add_pd(_mm256_loadu_pd(cRow2 + j),
                                                    _mm256_mul_pd(v2, vb)));
          _mm256_storeu_pd(cRow3 + j, _mm256_add_pd(_mm256_loadu_pd(cRow3 + j),
                                                    _mm256_mul_pd(v3, vb)));
        }
        for (; j < n; ++j) {
          cRow0[j] += a0 * bRow[j];
          cRow1[j] += a1 * bRow[j];
          cRow2[j] += a2 * bRow[j];
          cRow3[j] += a3 * bRow[j];
        }
      } else {
        if (a0 != 0.0) rowUpdate(cRow0, bRow, a0, n);
        if (a1 != 0.0) rowUpdate(cRow1, bRow, a1, n);
        if (a2 != 0.0) rowUpdate(cRow2, bRow, a2, n);
        if (a3 != 0.0) rowUpdate(cRow3, bRow, a3, n);
      }
    }
  }
  for (; i < m; ++i) {
    const double* aRow = a + i * k;
    double* cRow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      rowUpdate(cRow, b + p * n, av, n);
    }
  }
}

static inline void gemmBatchAcc(const double* a, const double* const* bs,
                                double* const* cs, std::size_t count,
                                std::size_t m, std::size_t k, std::size_t n) {
  // Each (t, i, j) output element folds k ascending independently of every
  // other t, so running the whole narrow register-accumulating gemm per
  // target is bitwise identical to the interleaved loop below — and far
  // cheaper, because the per-(i, k, t) C row round-trips disappear.
  if (n > 0 && n <= 24) {
    for (std::size_t t = 0; t < count; ++t) gemmAcc(a, bs[t], cs[t], m, k, n);
    return;
  }
  for (std::size_t i = 0; i < m; ++i) {
    const double* aRow = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = aRow[p];
      if (av == 0.0) continue;
      for (std::size_t t = 0; t < count; ++t) {
        rowUpdate(cs[t] + i * n, bs[t] + p * n, av, n);
      }
    }
  }
}

static inline void gemv(const double* a, const double* x, double* y,
                        std::size_t m, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* aRow = a + i * n;
    // accLo holds contract lanes 0-3, accHi lanes 4-7.
    __m256d accLo = _mm256_setzero_pd();
    __m256d accHi = _mm256_setzero_pd();
    std::size_t p = 0;
    for (; p + 8 <= n; p += 8) {
      accLo = _mm256_add_pd(accLo, _mm256_mul_pd(_mm256_loadu_pd(aRow + p),
                                                 _mm256_loadu_pd(x + p)));
      accHi = _mm256_add_pd(
          accHi, _mm256_mul_pd(_mm256_loadu_pd(aRow + p + 4),
                               _mm256_loadu_pd(x + p + 4)));
    }
    double lane[8];
    _mm256_storeu_pd(lane, accLo);
    _mm256_storeu_pd(lane + 4, accHi);
    for (; p < n; ++p) lane[p & 7] += aRow[p] * x[p];
    y[i] = reduceLanes8(lane);
  }
}

static inline void axpy(double* y, const double* x, double s, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vy = _mm256_loadu_pd(y + j);
    const __m256d vx = _mm256_loadu_pd(x + j);
    _mm256_storeu_pd(y + j, _mm256_add_pd(vy, _mm256_mul_pd(vs, vx)));
  }
  for (; j < n; ++j) y[j] += s * x[j];
}

}  // namespace ancstr::nn::kdetail::avx2

#endif  // defined(__AVX2__)
