#include "core/engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "circuits/synthetic.h"
#include "util/deadline.h"
#include "util/diagnostics.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/run_ledger.h"

namespace ancstr {
namespace {

PipelineConfig fastConfig() {
  PipelineConfig config;
  config.train.epochs = 8;
  return config;
}

/// Bitwise comparison (memcmp on doubles, not tolerance): the engine's
/// contract is that a cache hit reproduces the miss result exactly.
void expectBitwiseEqual(const ExtractionResult& a,
                        const ExtractionResult& b) {
  const DetectionResult& da = a.detection;
  const DetectionResult& db = b.detection;
  EXPECT_EQ(std::memcmp(&da.systemThreshold, &db.systemThreshold,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&da.deviceThreshold, &db.deviceThreshold,
                        sizeof(double)),
            0);
  ASSERT_EQ(da.scored.size(), db.scored.size());
  for (std::size_t i = 0; i < da.scored.size(); ++i) {
    const ScoredCandidate& ca = da.scored[i];
    const ScoredCandidate& cb = db.scored[i];
    EXPECT_TRUE(ca.pair.a == cb.pair.a);
    EXPECT_TRUE(ca.pair.b == cb.pair.b);
    EXPECT_EQ(ca.pair.hierarchy, cb.pair.hierarchy);
    EXPECT_EQ(ca.pair.level, cb.pair.level);
    EXPECT_EQ(ca.accepted, cb.accepted);
    EXPECT_EQ(std::memcmp(&ca.similarity, &cb.similarity, sizeof(double)),
              0);
  }
  ASSERT_EQ(a.embeddings.rows(), b.embeddings.rows());
  ASSERT_EQ(a.embeddings.cols(), b.embeddings.cols());
  for (std::size_t r = 0; r < a.embeddings.rows(); ++r) {
    EXPECT_EQ(std::memcmp(a.embeddings.row(r), b.embeddings.row(r),
                          a.embeddings.cols() * sizeof(double)),
              0);
  }
}

TEST(Engine, WarmEqualsColdEqualsPipeline) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  const ExtractionEngine engine(pipeline);
  const ExtractionResult cold = engine.extract(bench.lib);
  const ExtractionResult warm = engine.extract(bench.lib);

  expectBitwiseEqual(direct, cold);
  expectBitwiseEqual(cold, warm);
  const EngineCacheStats stats = engine.cacheStats();
  EXPECT_GE(stats.design.misses, 1u);
  EXPECT_GE(stats.design.hits, 1u);
}

TEST(Engine, CorrectUnderConstantEviction) {
  Pipeline pipeline(fastConfig());
  const auto a = circuits::makeDiffChain(2);
  const auto b = circuits::makeDiffChain(4);
  pipeline.train({&a.lib, &b.lib});
  const ExtractionResult directA = pipeline.extract(a.lib);
  const ExtractionResult directB = pipeline.extract(b.lib);

  // A budget far below any entry's size: every insertion immediately
  // overflows and evicts whatever is unpinned, so the engine runs in a
  // permanent thrash — results must still be exact.
  EngineConfig config;
  config.cacheBudgetBytes = 64;
  const ExtractionEngine engine(pipeline, config);
  expectBitwiseEqual(engine.extract(a.lib), directA);
  expectBitwiseEqual(engine.extract(b.lib), directB);
  expectBitwiseEqual(engine.extract(a.lib), directA);
  EXPECT_GE(engine.cacheStats().design.evictions, 1u);
}

TEST(Engine, ConcurrentMixedBatchIsDeterministic) {
  Pipeline pipeline(fastConfig());
  const auto a = circuits::makeDiffChain(2);
  const auto b = circuits::makeDiffChain(4);
  pipeline.train({&a.lib, &b.lib});
  const ExtractionResult directA = pipeline.extract(a.lib);
  const ExtractionResult directB = pipeline.extract(b.lib);

  EngineConfig config;
  config.threads = 4;
  const ExtractionEngine engine(pipeline, config);
  // Duplicate designs in one batch race for the same cache entries; the
  // TSan CI configuration runs this at ANCSTR_THREADS=4 as well.
  const std::vector<ExtractionResult> results =
      engine.extractBatch({&a.lib, &b.lib, &a.lib, &b.lib});
  ASSERT_EQ(results.size(), 4u);
  expectBitwiseEqual(results[0], directA);
  expectBitwiseEqual(results[1], directB);
  expectBitwiseEqual(results[2], directA);
  expectBitwiseEqual(results[3], directB);
}

TEST(Engine, StrictExtractOnBadInputThrows) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);
  EXPECT_THROW(engine.extract(Library{}), Error);
}

TEST(Engine, FailSoftBatchIsolatesTheBadDesign) {
  Pipeline pipeline(fastConfig());
  const auto good = circuits::makeDiffChain(2);
  pipeline.train({&good.lib});
  const Library corrupt{};  // no top cell: elaboration fails

  const ExtractionEngine engine(pipeline);
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  const std::vector<ExtractionResult> results =
      engine.extractBatch({&good.lib, &corrupt, &good.lib},
                          ExtractOptions{&sink});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_GT(results[0].detection.scored.size(), 0u);
  EXPECT_GT(results[2].detection.scored.size(), 0u);
  expectBitwiseEqual(results[0], results[2]);

  // The degraded design yields an empty result carrying its own
  // diagnostic; the neighbours' reports stay clean.
  EXPECT_EQ(results[1].detection.scored.size(), 0u);
  const auto hasDegraded = [](const std::vector<diag::Diagnostic>& diags) {
    for (const diag::Diagnostic& d : diags) {
      if (d.code == diag::codes::kExtractDegraded) return true;
    }
    return false;
  };
  EXPECT_TRUE(hasDegraded(results[1].report.diagnostics));
  EXPECT_FALSE(hasDegraded(results[0].report.diagnostics));
  EXPECT_FALSE(hasDegraded(results[2].report.diagnostics));
  EXPECT_TRUE(hasDegraded(sink.snapshot()));
}

TEST(Engine, PublishesCacheMetricsIntoReports) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);

  const ExtractionResult cold = engine.extract(bench.lib);
  ASSERT_TRUE(cold.report.metrics.counters.contains("engine.cache.miss"));
  EXPECT_GE(cold.report.metrics.counters.at("engine.cache.miss"), 1u);

  const ExtractionResult warm = engine.extract(bench.lib);
  ASSERT_TRUE(warm.report.metrics.counters.contains("engine.cache.hit"));
  EXPECT_GE(warm.report.metrics.counters.at("engine.cache.hit"), 1u);
  EXPECT_GT(warm.report.metrics.gauges.at("engine.cache.bytes"), 0.0);
}

TEST(Engine, ClearCachesKeepsCumulativeCounters) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  ExtractionEngine engine(pipeline);

  (void)engine.extract(bench.lib);
  (void)engine.extract(bench.lib);
  const EngineCacheStats before = engine.cacheStats();
  EXPECT_GE(before.design.hits, 1u);
  EXPECT_GT(before.design.entries, 0u);

  engine.clearCaches();
  const EngineCacheStats after = engine.cacheStats();
  EXPECT_EQ(after.design.entries, 0u);
  EXPECT_EQ(after.design.bytes, 0u);
  EXPECT_EQ(after.design.hits, before.design.hits);

  // The next extraction misses again and still reproduces the result.
  const ExtractionResult again = engine.extract(bench.lib);
  EXPECT_GT(again.detection.scored.size(), 0u);
  EXPECT_GT(engine.cacheStats().design.misses, before.design.misses);
}

TEST(Engine, PairScoreCacheHitsOnRepeatedBlockPairs) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeBlockArray(4);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  const ExtractionEngine engine(pipeline);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  const EngineCacheStats first = engine.cacheStats();
  EXPECT_GT(first.pairs.entries, 0u);

  // A design-cache hit skips inference but detection re-runs: every
  // block-pair score is now served from the pair cache.
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  const EngineCacheStats second = engine.cacheStats();
  EXPECT_GT(second.pairs.hits, first.pairs.hits);
}

TEST(Engine, DisablingPairCacheStillExtractsExactly) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeBlockArray(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.cachePairScores = false;
  const ExtractionEngine engine(pipeline, config);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  EXPECT_EQ(engine.cacheStats().pairs.entries, 0u);
}

TEST(Engine, DegradedExtractReportCarriesCacheMetrics) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);
  (void)engine.extract(bench.lib);  // warm the design cache

  // The fault fires after the design-cache consult: the degraded design's
  // report must still carry the engine.cache.* metrics for the cache
  // activity that happened before the failure (regression guard — these
  // used to be dropped on the error branch).
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  const fault::ScopedFault fault("engine.extract");
  const ExtractionResult degraded =
      engine.extract(bench.lib, ExtractOptions{&sink});
  EXPECT_EQ(degraded.detection.scored.size(), 0u);
  bool hasDiag = false;
  for (const diag::Diagnostic& d : degraded.report.diagnostics) {
    if (d.code == diag::codes::kExtractDegraded) hasDiag = true;
  }
  EXPECT_TRUE(hasDiag);
  ASSERT_TRUE(
      degraded.report.metrics.counters.contains("engine.cache.hit"));
  EXPECT_GE(degraded.report.metrics.counters.at("engine.cache.hit"), 1u);
  ASSERT_TRUE(degraded.report.metrics.counters.contains(
      "pipeline.extract_degraded"));
}

TEST(Engine, StrictFaultStillPublishesCacheCounters) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);

  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  {
    const fault::ScopedFault fault("engine.extract");
    EXPECT_THROW((void)engine.extract(bench.lib), Error);
  }
  const metrics::Snapshot delta =
      metrics::Registry::instance().snapshot().since(before);
  ASSERT_TRUE(delta.counters.contains("engine.cache.miss"));
  EXPECT_GE(delta.counters.at("engine.cache.miss"), 1u);
}

namespace fs = std::filesystem;

/// Fresh per-test disk-tier directory under the gtest temp root.
fs::path freshCacheDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("ancstr_engine_disk_" + name);
  fs::remove_all(dir);
  return dir;
}

bool reportHasCode(const ExtractionResult& result, std::string_view code) {
  for (const diag::Diagnostic& d : result.report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(Engine, DiskTierServesAcrossEngineInstances) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.cachePath = freshCacheDir("persist");
  config.diskWriteBehind = false;
  {
    const ExtractionEngine cold(pipeline, config);
    expectBitwiseEqual(cold.extract(bench.lib), direct);
    const util::DiskCacheStats disk = cold.diskCacheStats();
    EXPECT_TRUE(disk.enabled);
    EXPECT_GE(disk.writes, 1u);
    EXPECT_GE(disk.misses, 1u);
  }  // restart: the engine and its memory tier are destroyed

  const ExtractionEngine restarted(pipeline, config);
  expectBitwiseEqual(restarted.extract(bench.lib), direct);
  const util::DiskCacheStats disk = restarted.diskCacheStats();
  EXPECT_GE(disk.hits, 1u);
  EXPECT_EQ(disk.misses, 0u);
  EXPECT_EQ(disk.corrupt, 0u);
}

TEST(Engine, DiskCorruptEntriesRecomputeExactly) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.cachePath = freshCacheDir("corrupt");
  config.diskWriteBehind = false;
  {
    const ExtractionEngine cold(pipeline, config);
    (void)cold.extract(bench.lib);
  }
  // Flip the last byte of every entry on disk: checksums no longer match.
  for (const auto& entry : fs::directory_iterator(config.cachePath)) {
    std::string bytes;
    {
      std::ifstream in(entry.path(), std::ios::binary);
      bytes.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(bytes.empty());
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const ExtractionEngine restarted(pipeline, config);
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  ExtractOptions options;
  options.sink = &sink;
  // Corruption anywhere in the tier must never change the answer — the
  // entries are quarantined and everything recomputes.
  expectBitwiseEqual(restarted.extract(bench.lib, options), direct);
  const util::DiskCacheStats disk = restarted.diskCacheStats();
  EXPECT_GE(disk.corrupt, 1u);
  EXPECT_EQ(disk.hits, 0u);
  bool sawCorrupt = false;
  for (const diag::Diagnostic& d : sink.snapshot()) {
    if (d.code == diag::codes::kCacheCorrupt) sawCorrupt = true;
    EXPECT_NE(d.severity, diag::Severity::kError) << d.message;
  }
  EXPECT_TRUE(sawCorrupt);
}

TEST(Engine, DiskTierIsScopedToModelIdentity) {
  // Two engines over the SAME directory but different trained weights:
  // entries written by one must be invisible to the other (the disk key
  // is salted with the model identity), or stale constraints would leak
  // across retrains.
  const auto bench = circuits::makeDiffChain(3);
  Pipeline pipelineA(fastConfig());
  pipelineA.train({&bench.lib});
  PipelineConfig otherConfig = fastConfig();
  otherConfig.train.epochs = 12;  // different weights, same architecture
  Pipeline pipelineB(otherConfig);
  pipelineB.train({&bench.lib});
  const ExtractionResult directB = pipelineB.extract(bench.lib);

  EngineConfig config;
  config.cachePath = freshCacheDir("model_salt");
  config.diskWriteBehind = false;
  {
    const ExtractionEngine engineA(pipelineA, config);
    (void)engineA.extract(bench.lib);
    EXPECT_GE(engineA.diskCacheStats().writes, 1u);
  }
  const ExtractionEngine engineB(pipelineB, config);
  expectBitwiseEqual(engineB.extract(bench.lib), directB);
  EXPECT_EQ(engineB.diskCacheStats().hits, 0u);
}

TEST(Engine, ExpiredDeadlineStrictThrowsTyped) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);

  ExtractOptions options;
  options.deadline = util::Deadline::afterSeconds(-1.0);
  EXPECT_THROW((void)engine.extract(bench.lib, options), util::DeadlineError);
  // DeadlineError stays catchable as Error for callers that don't care.
  EXPECT_THROW((void)engine.extract(bench.lib, options), Error);
}

TEST(Engine, ExpiredDeadlineFailSoftYieldsEmptyTypedResult) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);

  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  ExtractOptions options;
  options.sink = &sink;
  options.deadline = util::Deadline::afterSeconds(-1.0);
  const ExtractionResult result = engine.extract(bench.lib, options);
  // No partial result, and load shedding is NOT labeled as degradation:
  // dashboards must be able to tell "out of time" from "corrupt input".
  EXPECT_EQ(result.detection.scored.size(), 0u);
  EXPECT_EQ(result.embeddings.rows(), 0u);
  EXPECT_TRUE(reportHasCode(result, diag::codes::kDeadlineExceeded));
  EXPECT_FALSE(reportHasCode(result, diag::codes::kExtractDegraded));
}

TEST(Engine, UnarmedDeadlineIsTheDefaultAndChangesNothing) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);
  const ExtractionEngine engine(pipeline);

  ExtractOptions options;  // deadline defaults to unarmed
  EXPECT_FALSE(options.deadline.armed());
  expectBitwiseEqual(engine.extract(bench.lib, options), direct);
}

TEST(Engine, GenerousDeadlineStillServesExactly) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);
  const ExtractionEngine engine(pipeline);

  ExtractOptions options;
  options.deadline = util::Deadline::afterSeconds(3600.0);
  expectBitwiseEqual(engine.extract(bench.lib, options), direct);
  const std::vector<ExtractionResult> batch =
      engine.extractBatch({&bench.lib, &bench.lib}, options);
  ASSERT_EQ(batch.size(), 2u);
  expectBitwiseEqual(batch[0], direct);
  expectBitwiseEqual(batch[1], direct);
}

TEST(Engine, AdmissionStrictRejectsOversizedBatchTyped) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.admissionMaxDesigns = 1;
  const ExtractionEngine engine(pipeline, config);
  EXPECT_THROW((void)engine.extractBatch({&bench.lib, &bench.lib}),
               AdmissionError);
  // The single-design path is under the limit and unaffected.
  EXPECT_GT(engine.extract(bench.lib).detection.scored.size(), 0u);
}

TEST(Engine, AdmissionFailSoftRejectsWholeBatchWithDiagnostics) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.admissionMaxDesigns = 1;
  const ExtractionEngine engine(pipeline, config);
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  ExtractOptions options;
  options.sink = &sink;
  const std::vector<ExtractionResult> results =
      engine.extractBatch({&bench.lib, &bench.lib}, options);
  // Typed whole-batch rejection: every slot comes back empty and carries
  // the admission diagnostic — no design is half-served.
  ASSERT_EQ(results.size(), 2u);
  for (const ExtractionResult& r : results) {
    EXPECT_EQ(r.detection.scored.size(), 0u);
    EXPECT_TRUE(reportHasCode(r, diag::codes::kAdmissionRejected));
  }
  bool sawRejected = false;
  for (const diag::Diagnostic& d : sink.snapshot()) {
    if (d.code == diag::codes::kAdmissionRejected) sawRejected = true;
  }
  EXPECT_TRUE(sawRejected);
}

TEST(Engine, AdmissionByteBudgetRejects) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.admissionMaxBytes = 1;  // below any design's in-flight estimate
  const ExtractionEngine engine(pipeline, config);
  EXPECT_THROW((void)engine.extractBatch({&bench.lib}), AdmissionError);
}

TEST(Engine, AdmissionUnderTheLimitsIsIdentical) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.admissionMaxDesigns = 8;
  config.admissionMaxBytes = 1ull << 30;
  const ExtractionEngine engine(pipeline, config);
  const std::vector<ExtractionResult> results =
      engine.extractBatch({&bench.lib, &bench.lib});
  ASSERT_EQ(results.size(), 2u);
  expectBitwiseEqual(results[0], direct);
  expectBitwiseEqual(results[1], direct);
}

TEST(EngineFault, DiskWriteFaultsDegradeToCacheOffButStayExact) {
  // Every disk write fails (ENOSPC-style): the tier retries, then counts
  // failures, then turns itself off — and every served result along the
  // way stays bitwise identical to the no-cache answer.
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.cachePath = freshCacheDir("write_faults");
  config.diskWriteBehind = false;
  ExtractionEngine engine(pipeline, config);

  const fault::ScopedFault armed("disk_cache.write");
  for (int round = 0; round < 4; ++round) {
    expectBitwiseEqual(engine.extract(bench.lib), direct);
    engine.clearCaches();  // force the next round back through the tier
  }
  const util::DiskCacheStats disk = engine.diskCacheStats();
  EXPECT_GE(disk.writeFailures, 4u);
  EXPECT_EQ(disk.writes, 0u);
  EXPECT_TRUE(disk.degraded);

  // Degraded tier == cache-off serving, still exact.
  expectBitwiseEqual(engine.extract(bench.lib), direct);
}

TEST(EngineFault, DiskReadFaultsDegradeToRecomputeButStayExact) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.cachePath = freshCacheDir("read_faults");
  config.diskWriteBehind = false;
  {
    const ExtractionEngine cold(pipeline, config);
    (void)cold.extract(bench.lib);
  }
  ExtractionEngine engine(pipeline, config);
  const fault::ScopedFault armed("disk_cache.read");
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  const util::DiskCacheStats disk = engine.diskCacheStats();
  EXPECT_GE(disk.readFailures, 1u);
  EXPECT_EQ(disk.corrupt, 0u);  // IO trouble must not quarantine entries
}

TEST(Engine, DiskCacheMetricsReachReportsAndStats) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.cachePath = freshCacheDir("metrics");
  config.diskWriteBehind = false;
  {
    const ExtractionEngine cold(pipeline, config);
    RunReport report;
    (void)cold.extractBatch({&bench.lib}, {}, &report);
    ASSERT_TRUE(report.metrics.counters.contains("engine.disk_cache.miss"));
    EXPECT_GE(report.metrics.counters.at("engine.disk_cache.miss"), 1u);
    ASSERT_TRUE(report.metrics.counters.contains("engine.disk_cache.write"));
  }
  const ExtractionEngine restarted(pipeline, config);
  RunReport report;
  (void)restarted.extractBatch({&bench.lib}, {}, &report);
  ASSERT_TRUE(report.metrics.counters.contains("engine.disk_cache.hit"));
  EXPECT_GE(report.metrics.counters.at("engine.disk_cache.hit"), 1u);
  EXPECT_GT(report.metrics.gauges.at("engine.disk_cache.bytes"), 0.0);
}

// ---------------------------------------------------------------------
// Run-ledger integration: one wide-event line per request, thread-count
// invariant ordering, cache-outcome labelling, and request correlation.
// Writer-level behaviour (key order, write-behind, fault degradation)
// lives in util/test_run_ledger.cpp.

fs::path freshLedgerPath(const std::string& name) {
  const fs::path path =
      fs::path(::testing::TempDir()) / ("ancstr_engine_ledger_" + name +
                                        ".jsonl");
  fs::remove(path);
  return path;
}

std::vector<Json> readLedger(const fs::path& path) {
  std::ifstream in(path);
  std::vector<Json> records;
  std::string line;
  while (std::getline(in, line)) {
    std::string error;
    auto parsed = Json::parse(line, &error);
    EXPECT_TRUE(parsed.has_value()) << error << ": " << line;
    if (parsed.has_value()) records.push_back(std::move(*parsed));
  }
  return records;
}

TEST(EngineLedger, OneRecordPerRequestWithMonotonicIds) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.ledgerPath = freshLedgerPath("one_per_request");
  config.ledgerWriteBehind = false;
  const ExtractionEngine engine(pipeline, config);

  const ExtractionResult cold = engine.extract(bench.lib);
  const ExtractionResult warm = engine.extract(bench.lib);
  EXPECT_EQ(cold.report.requestId, 1u);
  EXPECT_EQ(warm.report.requestId, 2u);

  const std::vector<Json> records = readLedger(config.ledgerPath);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].get("requestId").asNumber(), 1.0);
  EXPECT_EQ(records[1].get("requestId").asNumber(), 2.0);
  // Same design, same engine: identical hash, and the repeat is served
  // from the memory tier.
  const std::string hash = records[0].get("designHash").asString();
  EXPECT_EQ(hash.size(), 32u);
  EXPECT_EQ(records[1].get("designHash").asString(), hash);
  EXPECT_EQ(records[0].get("cacheOutcome").asString(), "cold");
  EXPECT_EQ(records[1].get("cacheOutcome").asString(), "mem_hit");
  for (const Json& rec : records) {
    EXPECT_EQ(rec.get("outcome").asString(), "ok");
    EXPECT_GT(rec.get("devices").asNumber(), 0.0);
    EXPECT_GE(rec.get("wallSeconds").asNumber(), 0.0);
    EXPECT_EQ(rec.get("constraintsTotal").asNumber(),
              static_cast<double>(cold.detection.set.size()));
  }
  const ledger::LedgerStats stats = engine.ledgerStats();
  EXPECT_EQ(stats.appended, 2u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(EngineLedger, BatchOrderIsThreadCountInvariant) {
  Pipeline pipeline(fastConfig());
  const auto a = circuits::makeDiffChain(2);
  const auto b = circuits::makeDiffChain(3);
  const auto c = circuits::makeBlockArray(3);
  const auto d = circuits::makeBlockArray(4);
  pipeline.train({&a.lib});
  const std::vector<const Library*> batch = {&a.lib, &b.lib, &c.lib,
                                             &d.lib};

  EngineConfig serialConfig;
  serialConfig.threads = 1;
  serialConfig.ledgerPath = freshLedgerPath("serial");
  serialConfig.ledgerWriteBehind = false;
  const ExtractionEngine serial(pipeline, serialConfig);
  const std::vector<ExtractionResult> serialResults =
      serial.extractBatch(batch);

  EngineConfig threadedConfig;
  threadedConfig.threads = 4;
  threadedConfig.ledgerPath = freshLedgerPath("threaded");
  threadedConfig.ledgerWriteBehind = true;  // drained by flushLedger()
  const ExtractionEngine threaded(pipeline, threadedConfig);
  const std::vector<ExtractionResult> threadedResults =
      threaded.extractBatch(batch);
  threaded.flushLedger();

  ASSERT_EQ(serialResults.size(), batch.size());
  ASSERT_EQ(threadedResults.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expectBitwiseEqual(serialResults[i], threadedResults[i]);
  }

  // The ledger sequence (slot order, ids, hashes) must not depend on the
  // thread count: appends are deferred until the fan-out joins.
  const std::vector<Json> serialLedger = readLedger(serialConfig.ledgerPath);
  const std::vector<Json> threadedLedger =
      readLedger(threadedConfig.ledgerPath);
  ASSERT_EQ(serialLedger.size(), batch.size());
  ASSERT_EQ(threadedLedger.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(serialLedger[i].get("requestId").asNumber(),
              static_cast<double>(i + 1));
    EXPECT_EQ(threadedLedger[i].get("requestId").asNumber(),
              static_cast<double>(i + 1));
    EXPECT_EQ(serialLedger[i].get("designHash").asString(),
              threadedLedger[i].get("designHash").asString());
    EXPECT_EQ(serialLedger[i].get("constraintsTotal").asNumber(),
              threadedLedger[i].get("constraintsTotal").asNumber());
  }
}

TEST(EngineLedger, RestartWarmRunShowsDiskHitForEveryDesign) {
  Pipeline pipeline(fastConfig());
  const auto a = circuits::makeDiffChain(2);
  const auto b = circuits::makeDiffChain(3);
  pipeline.train({&a.lib});

  EngineConfig config;
  config.cachePath = freshCacheDir("ledger_warm");
  config.diskWriteBehind = false;
  config.ledgerWriteBehind = false;
  {
    config.ledgerPath = freshLedgerPath("cold_run");
    const ExtractionEngine cold(pipeline, config);
    (void)cold.extractBatch({&a.lib, &b.lib});
    for (const Json& rec : readLedger(config.ledgerPath)) {
      EXPECT_EQ(rec.get("cacheOutcome").asString(), "cold");
    }
  }  // restart: memory tier gone, disk tier persists

  config.ledgerPath = freshLedgerPath("warm_run");
  const ExtractionEngine restarted(pipeline, config);
  (void)restarted.extractBatch({&a.lib, &b.lib});
  const std::vector<Json> records = readLedger(config.ledgerPath);
  ASSERT_EQ(records.size(), 2u);
  for (const Json& rec : records) {
    EXPECT_EQ(rec.get("cacheOutcome").asString(), "disk_hit");
    EXPECT_EQ(rec.get("outcome").asString(), "ok");
  }
}

TEST(EngineLedger, CorrelationIdFlowsToReportDiagnosticsAndLedger) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.ledgerPath = freshLedgerPath("correlation");
  config.ledgerWriteBehind = false;
  const ExtractionEngine engine(pipeline, config);

  ExtractOptions options;
  options.correlationId = "caller-trace-42";
  const ExtractionResult result = engine.extract(bench.lib, options);
  EXPECT_EQ(result.report.correlationId, "caller-trace-42");
  EXPECT_EQ(result.report.requestId, 1u);

  const std::vector<Json> records = readLedger(config.ledgerPath);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].get("correlationId").asString(), "caller-trace-42");
  EXPECT_EQ(records[0].get("requestId").asNumber(), 1.0);
}

TEST(EngineLedger, DeadlineExceededOutcomeIsRecorded) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.ledgerPath = freshLedgerPath("deadline");
  config.ledgerWriteBehind = false;
  const ExtractionEngine engine(pipeline, config);

  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  ExtractOptions options;
  options.sink = &sink;
  options.deadline = util::Deadline::afterSeconds(-1.0);
  (void)engine.extract(bench.lib, options);

  const std::vector<Json> records = readLedger(config.ledgerPath);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].get("outcome").asString(), "deadline_exceeded");
  ASSERT_NE(records[0].get("diagnostics")
                .find(std::string(diag::codes::kDeadlineExceeded)),
            nullptr);
}

TEST(EngineLedger, AdmissionRejectedBatchRecordsEveryDesign) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.admissionMaxDesigns = 1;
  config.ledgerPath = freshLedgerPath("admission");
  config.ledgerWriteBehind = false;
  const ExtractionEngine engine(pipeline, config);

  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  const std::vector<ExtractionResult> results =
      engine.extractBatch({&bench.lib, &bench.lib}, ExtractOptions{&sink});
  ASSERT_EQ(results.size(), 2u);

  const std::vector<Json> records = readLedger(config.ledgerPath);
  ASSERT_EQ(records.size(), 2u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].get("requestId").asNumber(),
              static_cast<double>(i + 1));
    EXPECT_EQ(records[i].get("outcome").asString(), "admission_rejected");
    EXPECT_EQ(records[i].get("cacheOutcome").asString(), "none");
    EXPECT_EQ(records[i].get("constraintsTotal").asNumber(), 0.0);
  }
}

TEST(EngineLedger, DegradedExtractIsRecordedWithDiagnosticCounts) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.ledgerPath = freshLedgerPath("degraded");
  config.ledgerWriteBehind = false;
  const ExtractionEngine engine(pipeline, config);

  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  const Library corrupt{};  // no top cell: elaboration fails
  (void)engine.extract(corrupt, ExtractOptions{&sink});

  const std::vector<Json> records = readLedger(config.ledgerPath);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].get("outcome").asString(), "degraded");
  ASSERT_NE(records[0].get("diagnostics")
                .find(std::string(diag::codes::kExtractDegraded)),
            nullptr);
}

TEST(EngineLedger, DiagnosticsCarryTheRequestId) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);  // no ledger needed

  (void)engine.extract(bench.lib);  // request 1
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  const Library corrupt{};
  const ExtractionResult degraded =
      engine.extract(corrupt, ExtractOptions{&sink});
  EXPECT_EQ(degraded.report.requestId, 2u);
  ASSERT_FALSE(degraded.report.diagnostics.empty());
  for (const diag::Diagnostic& d : degraded.report.diagnostics) {
    EXPECT_EQ(d.requestId, 2u) << d.code;
  }
}

TEST(EngineLedger, StrictFailureStillAppendsAnErrorRecord) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});

  EngineConfig config;
  config.ledgerPath = freshLedgerPath("strict_error");
  config.ledgerWriteBehind = false;
  const ExtractionEngine engine(pipeline, config);

  EXPECT_THROW((void)engine.extract(Library{}), Error);
  const std::vector<Json> records = readLedger(config.ledgerPath);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].get("outcome").asString(), "error");
  EXPECT_EQ(records[0].get("requestId").asNumber(), 1.0);
}

TEST(EngineLedger, DeltaExtractionAppendsOneRecord) {
  Pipeline pipeline(fastConfig());
  const auto base = circuits::makeDiffChain(3);
  const auto revised = circuits::makeDiffChain(4);
  pipeline.train({&base.lib});

  EngineConfig config;
  config.ledgerPath = freshLedgerPath("delta");
  config.ledgerWriteBehind = false;
  const ExtractionEngine engine(pipeline, config);

  const ExtractionResult full = engine.extract(base.lib);  // request 1
  const ExtractionResult delta =
      engine.extractDelta(base.lib, revised.lib);  // request 2
  EXPECT_EQ(delta.report.requestId, 2u);

  const std::vector<Json> records = readLedger(config.ledgerPath);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].get("requestId").asNumber(), 2.0);
  EXPECT_EQ(records[1].get("outcome").asString(), "ok");
  // The delta record's phases include the ECO-specific spans and its
  // wall time covers the whole diff+warm+extract call.
  ASSERT_NE(records[1].get("phases").find("engine.diff"), nullptr);
  EXPECT_GT(records[1].get("wallSeconds").asNumber(), 0.0);
  (void)full;
}

TEST(Engine, DisablingCachesStillExtractsExactly) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.cacheDesignInference = false;
  config.cacheBlockEmbeddings = false;
  const ExtractionEngine engine(pipeline, config);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  const EngineCacheStats stats = engine.cacheStats();
  EXPECT_EQ(stats.design.entries, 0u);
  EXPECT_EQ(stats.blocks.entries, 0u);
}

}  // namespace
}  // namespace ancstr
