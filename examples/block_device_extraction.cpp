// Device-level extraction with model persistence: train once, save the
// model, reload it in a "fresh tool invocation", and annotate the matched
// device pairs of a StrongARM comparator — then compare against the SFA
// heuristic baseline to see where learning helps.
#include <cstdio>

#include "baselines/sfa.h"
#include "circuits/benchmark.h"
#include "core/pipeline.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"

using namespace ancstr;

int main() {
  std::vector<circuits::CircuitBenchmark> corpus =
      circuits::blockBenchmarks();
  std::vector<const Library*> libs;
  for (const auto& b : corpus) libs.push_back(&b.lib);

  // Train and persist.
  PipelineConfig config;
  config.train.epochs = 60;
  {
    Pipeline trainer(config);
    trainer.train(libs);
    trainer.saveModel("ancstr_model.txt");
    std::printf("model trained and saved to ancstr_model.txt\n");
  }

  // Fresh pipeline, restored weights: no retraining needed.
  Pipeline pipeline(config);
  pipeline.loadModel("ancstr_model.txt");

  const circuits::CircuitBenchmark& comp = corpus[9];  // COMP4 (StrongARM)
  const ExtractionResult result = pipeline.extract(comp.lib);
  const FlatDesign design = FlatDesign::elaborate(comp.lib);

  std::printf("\ndevice-level constraints in %s:\n", comp.name.c_str());
  for (const Constraint* c :
       result.detection.set.ofType(ConstraintType::kSymmetryPair)) {
    std::printf("  (%s, %s)  sim=%.4f\n", c->members[0].name.c_str(),
                c->members[1].name.c_str(), c->score);
  }

  const auto ourLabels =
      labelCandidates(design, result.detection.scored, comp.truth);
  const Metrics ours = computeMetrics(
      confusionFromScored(result.detection.scored, ourLabels));

  const sfa::SfaResult sfaResult =
      sfa::detectDeviceConstraints(design, comp.lib);
  const auto sfaLabels = labelCandidates(design, sfaResult.scored, comp.truth);
  const Metrics sfa = computeMetrics(
      confusionFromScored(sfaResult.scored, sfaLabels));

  std::printf("\n         TPR    FPR    PPV    F1\n");
  std::printf("ours   %.3f  %.3f  %.3f  %.3f\n", ours.tpr, ours.fpr, ours.ppv,
              ours.f1);
  std::printf("SFA    %.3f  %.3f  %.3f  %.3f\n", sfa.tpr, sfa.fpr, sfa.ppv,
              sfa.f1);
  return 0;
}
