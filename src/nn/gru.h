// Gated recurrent unit in batched matrix form: the state-update function of
// the gated-graph-network layer (Eq. 1 of the paper),
//   h_v^(k) = GRU(h_v^(k-1), m_v)  with m_v the aggregated typed messages.
#pragma once

#include <vector>

#include "nn/kernels.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace ancstr::nn {

/// GRU cell over row-batched states. Input dim and hidden dim may differ.
///   z = sigmoid(x Wz + h Uz + bz)
///   r = sigmoid(x Wr + h Ur + br)
///   c = tanh  (x Wc + (r . h) Uc + bc)
///   h' = (1 - z) . h + z . c
class GruCell {
 public:
  GruCell(std::size_t inputDim, std::size_t hiddenDim, Rng& rng);

  /// x: (N x inputDim), h: (N x hiddenDim) -> (N x hiddenDim).
  Tensor forward(const Tensor& x, const Tensor& h) const;

  /// Tape-free fused step through the active kernel table, bitwise
  /// identical to forward(x, h).value(). `hOut` is reshaped as needed and
  /// must not alias x or h; `scratch` is grown as needed and reusable
  /// across calls.
  void inferStepInto(const Matrix& x, const Matrix& h, Matrix& hOut,
                     std::vector<double>& scratch) const;

  /// Allocating convenience wrapper over inferStepInto.
  Matrix inferStep(const Matrix& x, const Matrix& h) const;

  /// Raw parameter pointers for Kernels::fusedGruStep. Valid while this
  /// cell is alive and its parameters are not reassigned.
  GruStepParams stepParams() const;

  /// All 9 trainable parameter tensors.
  std::vector<Tensor> parameters() const;

  std::size_t inputDim() const { return inputDim_; }
  std::size_t hiddenDim() const { return hiddenDim_; }

 private:
  std::size_t inputDim_;
  std::size_t hiddenDim_;
  Tensor wz_, uz_, bz_;
  Tensor wr_, ur_, br_;
  Tensor wc_, uc_, bc_;
};

}  // namespace ancstr::nn
