// Deterministic fault injection for robustness testing
// (docs/robustness.md, "Fault injection").
//
// Production code marks *named sites* where a failure can be forced:
//
//   if (fault::shouldFail("spice.open") || !in) { ... }        // IO errors
//   lossSum = fault::corruptDouble("train.batch_loss", lossSum);  // NaN
//   text = fault::corruptText("model_io.read", std::move(text));  // truncate
//
// Sites are disarmed by default; a disarmed site costs one relaxed atomic
// load. Arming happens via the ANCSTR_FAULT environment variable
// ("site[@hit][,site2[@hit2]]", read once on first use) or the
// programmatic ScopedFault RAII used by tests. A spec "site@N" fires
// exactly once, on the N-th hit (1-based) of that site within the armed
// window; "site" alone fires on every hit. Hit counting is per-site and
// process-wide, so a given (spec, call sequence) always fires at the same
// place — injection is as deterministic as the code it perturbs. Sites on
// parallel paths must sit in serial sections (see the trainer) so the hit
// order is thread-count independent.
#pragma once

#include <string>
#include <string_view>

namespace ancstr::fault {

/// True when at least one fault spec is armed (env or programmatic).
bool enabled();

/// Counts one hit of `site`; true when an armed spec fires on this hit.
/// Disarmed fast path: a single relaxed atomic load.
bool shouldFail(std::string_view site);

/// Returns NaN when the site fires, `value` otherwise.
double corruptDouble(std::string_view site, double value);

/// Truncates `text` to its first half when the site fires.
std::string corruptText(std::string_view site, std::string text);

/// Arms `spec` ("site", "site@N", or a comma-separated list) on top of
/// whatever is already armed. Hit counters for the named sites restart at
/// zero. Prefer ScopedFault in tests.
void arm(std::string_view spec);

/// Disarms everything (including ANCSTR_FAULT specs) and clears all hit
/// counters. The environment is not re-read afterwards.
void disarmAll();

/// RAII arming for tests: arms on construction, disarms everything and
/// clears counters on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(std::string_view spec) { arm(spec); }
  ~ScopedFault() { disarmAll(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace ancstr::fault
