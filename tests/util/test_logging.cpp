// Structured-logger coverage (util/logging.h): JSON file sink validity,
// per-code rate limiting with suppression accounting, concurrent emission,
// and the parseLevel/levelName pair. The legacy shim surface (setLevel /
// stream builders) is covered in util/test_misc.cpp.
#include "util/logging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"

namespace ancstr::log {
namespace {

/// The logger is process-wide; each test runs against a quiet stderr-off
/// configuration with a private temp file sink and restores the previous
/// configuration on exit.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = Logger::instance().config();
    previousLevel_ = level();
    path_ = std::filesystem::temp_directory_path() /
            ("ancstr_test_log_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
             ".jsonl");
    std::filesystem::remove(path_);
    LoggerConfig config;
    config.minLevel = Level::kDebug;
    config.toStderr = false;
    config.filePath = path_;
    config.maxPerCodeWindow = 0;  // individual tests opt in
    Logger::instance().configure(config);
    Logger::instance().resetRateLimits();
  }
  void TearDown() override {
    Logger::instance().configure(previous_);
    setLevel(previousLevel_);
    Logger::instance().resetRateLimits();
    std::filesystem::remove(path_);
  }

  std::vector<std::string> fileLines() const {
    std::ifstream in(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  std::filesystem::path path_;
  LoggerConfig previous_;
  Level previousLevel_ = Level::kWarn;
};

TEST(LogLevel, ParseLevelInvertsLevelName) {
  for (const Level lvl : {Level::kDebug, Level::kInfo, Level::kWarn,
                          Level::kError, Level::kOff}) {
    const auto parsed = parseLevel(levelName(lvl));
    ASSERT_TRUE(parsed.has_value()) << levelName(lvl);
    EXPECT_EQ(*parsed, lvl);
  }
  EXPECT_FALSE(parseLevel("WARN").has_value());  // exact match only
  EXPECT_FALSE(parseLevel("").has_value());
  EXPECT_FALSE(parseLevel("verbose").has_value());
}

TEST_F(LoggingTest, FileSinkEmitsParseableJsonWithStableKeyOrder) {
  log(Level::kWarn, "test.code", "something happened",
      {Field("path", "/tmp/x"), Field("bytes", std::uint64_t{4096}),
       Field("ratio", 0.5)});

  const std::vector<std::string> lines = fileLines();
  ASSERT_EQ(lines.size(), 1u);
  std::string error;
  const auto parsed = Json::parse(lines[0], &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->get("level").asString(), "warn");
  EXPECT_EQ(parsed->get("code").asString(), "test.code");
  EXPECT_EQ(parsed->get("msg").asString(), "something happened");
  EXPECT_EQ(parsed->get("path").asString(), "/tmp/x");
  EXPECT_EQ(parsed->get("bytes").asNumber(), 4096.0);
  EXPECT_EQ(parsed->get("ratio").asNumber(), 0.5);
  // Key order: level, code, msg, then fields in call order. Integer
  // fields render without a decimal point.
  EXPECT_EQ(lines[0].find("\"level\""), 1u);
  EXPECT_LT(lines[0].find("\"code\""), lines[0].find("\"msg\""));
  EXPECT_LT(lines[0].find("\"path\""), lines[0].find("\"bytes\""));
  EXPECT_NE(lines[0].find("\"bytes\":4096"), std::string::npos);
  EXPECT_EQ(lines[0].find("4096.0"), std::string::npos);
}

TEST_F(LoggingTest, JsonEscapesQuotesAndControlCharacters) {
  log(Level::kError, "test.escape", "a \"quoted\"\nline",
      {Field("key", std::string("tab\there"))});
  const std::vector<std::string> lines = fileLines();
  ASSERT_EQ(lines.size(), 1u);  // the newline is escaped, not emitted
  std::string error;
  const auto parsed = Json::parse(lines[0], &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->get("msg").asString(), "a \"quoted\"\nline");
  EXPECT_EQ(parsed->get("key").asString(), "tab\there");
}

TEST_F(LoggingTest, MinLevelFiltersBelowThreshold) {
  LoggerConfig config = Logger::instance().config();
  config.minLevel = Level::kWarn;
  Logger::instance().configure(config);
  const LoggerStats before = Logger::instance().stats();
  log(Level::kDebug, "test.filtered", "dropped");
  log(Level::kInfo, "test.filtered", "dropped");
  log(Level::kWarn, "test.filtered", "kept");
  const LoggerStats after = Logger::instance().stats();
  EXPECT_EQ(after.emitted - before.emitted, 1u);
  EXPECT_EQ(fileLines().size(), 1u);
}

TEST_F(LoggingTest, PerCodeRateLimitSuppressesAndCounts) {
  LoggerConfig config = Logger::instance().config();
  config.maxPerCodeWindow = 3;
  config.rateWindowSeconds = 3600.0;  // no rollover during the test
  Logger::instance().configure(config);
  Logger::instance().resetRateLimits();

  const LoggerStats before = Logger::instance().stats();
  for (int i = 0; i < 10; ++i) {
    log(Level::kWarn, "test.storm", "repeated failure");
  }
  // A different code has its own window; uncoded lines are never limited.
  log(Level::kWarn, "test.other", "unrelated");
  for (int i = 0; i < 5; ++i) log(Level::kWarn, "", "uncoded");

  const LoggerStats after = Logger::instance().stats();
  EXPECT_EQ(after.emitted - before.emitted, 3u + 1u + 5u);
  EXPECT_EQ(after.suppressed - before.suppressed, 7u);
  EXPECT_EQ(fileLines().size(), 9u);
}

TEST_F(LoggingTest, WindowRolloverEmitsSuppressionSummary) {
  LoggerConfig config = Logger::instance().config();
  config.maxPerCodeWindow = 1;
  config.rateWindowSeconds = 0.05;
  Logger::instance().configure(config);
  Logger::instance().resetRateLimits();

  log(Level::kWarn, "test.rollover", "first");       // emitted
  log(Level::kWarn, "test.rollover", "suppressed");  // suppressed
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  log(Level::kWarn, "test.rollover", "next window");  // summary + this

  const std::vector<std::string> lines = fileLines();
  ASSERT_EQ(lines.size(), 3u);
  std::string error;
  const auto summary = Json::parse(lines[1], &error);
  ASSERT_TRUE(summary.has_value()) << error;
  EXPECT_EQ(summary->get("msg").asString(), "suppressed repeated messages");
  EXPECT_EQ(summary->get("suppressed_count").asNumber(), 1.0);
}

TEST_F(LoggingTest, FileSinkFailureIsCountedNotThrown) {
  LoggerConfig config = Logger::instance().config();
  config.filePath = "/nonexistent-dir-ancstr/log.jsonl";
  Logger::instance().configure(config);
  const LoggerStats before = Logger::instance().stats();
  EXPECT_NO_THROW(log(Level::kError, "test.sink", "still served"));
  EXPECT_GE(Logger::instance().stats().fileWriteFailures,
            before.fileWriteFailures);
}

TEST_F(LoggingTest, ConcurrentEmissionKeepsLinesWholeAndCountsAll) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  const LoggerStats before = Logger::instance().stats();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log(Level::kInfo, "test.concurrent", "worker line",
            {Field("thread", t), Field("i", i)});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const LoggerStats after = Logger::instance().stats();
  EXPECT_EQ(after.emitted - before.emitted,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<std::string> lines = fileLines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Serialized under one mutex: every line is a whole, parseable object.
  for (const std::string& line : lines) {
    std::string error;
    ASSERT_TRUE(Json::parse(line, &error).has_value())
        << error << ": " << line;
  }
}

TEST(RequestIds, NextRequestIdIsMonotonicAndUniqueAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<std::uint64_t>> drawn(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &drawn] {
      for (int i = 0; i < kPerThread; ++i) {
        drawn[static_cast<std::size_t>(t)].push_back(nextRequestId());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& v : drawn) {
    // Per-thread draws are strictly increasing.
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LT(v[i - 1], v[i]);
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate request id";
  EXPECT_GT(all.front(), 0u);
}

}  // namespace
}  // namespace ancstr::log
