#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace ancstr {
namespace {

TEST(Metrics, PerfectClassifier) {
  const Metrics m = computeMetrics({10, 0, 90, 0});
  EXPECT_DOUBLE_EQ(m.tpr, 1.0);
  EXPECT_DOUBLE_EQ(m.fpr, 0.0);
  EXPECT_DOUBLE_EQ(m.ppv, 1.0);
  EXPECT_DOUBLE_EQ(m.acc, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, KnownMixedCase) {
  // tp=8 fp=2 tn=88 fn=2
  const Metrics m = computeMetrics({8, 2, 88, 2});
  EXPECT_DOUBLE_EQ(m.tpr, 0.8);
  EXPECT_NEAR(m.fpr, 2.0 / 90.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.ppv, 0.8);
  EXPECT_DOUBLE_EQ(m.acc, 0.96);
  EXPECT_DOUBLE_EQ(m.f1, 0.8);
}

TEST(Metrics, F1HarmonicMeanProperty) {
  const Metrics m = computeMetrics({6, 4, 80, 10});
  const double precision = m.ppv;
  const double recall = m.tpr;
  EXPECT_NEAR(m.f1, 2 * precision * recall / (precision + recall), 1e-12);
}

TEST(Metrics, DegenerateNoPositivesAnywhere) {
  const Metrics m = computeMetrics({0, 0, 50, 0});
  EXPECT_DOUBLE_EQ(m.tpr, 1.0);  // conventional limit
  EXPECT_DOUBLE_EQ(m.ppv, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.acc, 1.0);
}

TEST(Metrics, DegenerateAllMissed) {
  const Metrics m = computeMetrics({0, 0, 50, 5});
  EXPECT_DOUBLE_EQ(m.tpr, 0.0);
  EXPECT_DOUBLE_EQ(m.ppv, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(Metrics, EmptyCounts) {
  const Metrics m = computeMetrics({});
  EXPECT_DOUBLE_EQ(m.acc, 1.0);
  EXPECT_DOUBLE_EQ(m.fpr, 0.0);
}

TEST(ConfusionCounts, Accumulation) {
  ConfusionCounts a{1, 2, 3, 4};
  const ConfusionCounts b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.tp, 11u);
  EXPECT_EQ(a.fp, 22u);
  EXPECT_EQ(a.tn, 33u);
  EXPECT_EQ(a.fn, 44u);
  EXPECT_EQ(a.total(), 110u);
}

}  // namespace
}  // namespace ancstr
