// Reverse-mode automatic differentiation over dense matrices.
//
// A Tensor is a shared handle to a tape node holding a Matrix value, an
// accumulated gradient, and a backward closure. Building expressions with
// the free functions below records the computation graph; calling
// backward() on a scalar (1x1) result propagates gradients to every
// reachable parameter. The tape is per-expression: dropping all handles
// frees it.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"
#include "nn/sparse.h"

namespace ancstr::nn {

namespace detail {
struct Node {
  Matrix value;
  Matrix grad;                 ///< same shape as value; lazily allocated
  bool requiresGrad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  std::function<void(Node&)> backward;  ///< adds to inputs' grads

  Matrix& ensureGrad() {
    if (grad.empty()) grad = Matrix(value.rows(), value.cols());
    return grad;
  }
};
}  // namespace detail

/// Shared handle to an autograd tape node.
class Tensor {
 public:
  Tensor() = default;

  /// Trainable parameter (participates in gradients).
  static Tensor param(Matrix value);
  /// Constant input (no gradient tracked).
  static Tensor constant(Matrix value);

  bool valid() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  /// Gradient accumulated by the last backward(); empty if untouched.
  const Matrix& grad() const { return node_->grad; }
  bool requiresGrad() const { return node_->requiresGrad; }
  std::size_t rows() const { return node_->value.rows(); }
  std::size_t cols() const { return node_->value.cols(); }

  /// Overwrites the value in place (optimizer updates). Shape-checked.
  void setValue(Matrix m);
  /// Clears the accumulated gradient.
  void zeroGrad();
  /// Adds `g` into the accumulated gradient (allocating it if empty).
  /// Used to fold externally computed per-sample gradients — e.g. from a
  /// cloned model evaluated on another thread — into a shared parameter in
  /// a caller-chosen (deterministic) order. Shape-checked.
  void accumulateGrad(const Matrix& g);

  /// Runs reverse-mode differentiation from this scalar (1x1) tensor.
  /// Throws ShapeError when called on a non-scalar.
  void backward();

  /// Identity key for optimizer state.
  const void* id() const { return node_.get(); }

  // Internal: used by the op free functions.
  explicit Tensor(std::shared_ptr<detail::Node> node)
      : node_(std::move(node)) {}
  const std::shared_ptr<detail::Node>& node() const { return node_; }

 private:
  std::shared_ptr<detail::Node> node_;
};

// --- operations ------------------------------------------------------

/// Matrix product a * b.
Tensor matmul(const Tensor& a, const Tensor& b);
/// Sparse-constant times dense: spmm(A, h). A is not differentiated.
Tensor spmm(const SparseMatrix& a, const Tensor& h);
/// Elementwise sum (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// Elementwise difference.
Tensor sub(const Tensor& a, const Tensor& b);
/// Elementwise product.
Tensor hadamard(const Tensor& a, const Tensor& b);
/// Scalar scale.
Tensor scale(const Tensor& a, double s);
/// Adds a 1 x C bias row to every row of a (R x C).
Tensor addRow(const Tensor& a, const Tensor& biasRow);
/// Logistic sigmoid, elementwise.
Tensor sigmoid(const Tensor& a);
/// tanh, elementwise.
Tensor tanh(const Tensor& a);
/// Numerically stable log(sigmoid(x)), elementwise.
Tensor logSigmoid(const Tensor& a);
/// 1 - a, elementwise.
Tensor oneMinus(const Tensor& a);
/// Gathers rows: out.row(i) = a.row(indices[i]). Rows may repeat.
Tensor gatherRows(const Tensor& a, std::vector<std::size_t> indices);
/// Scales each row i by the constant factors[i] (not differentiated
/// through the factors).
Tensor rowScale(const Tensor& a, std::vector<double> factors);
/// Row-wise sum: (R x C) -> (R x 1).
Tensor rowSum(const Tensor& a);
/// Sum of all entries -> 1x1 scalar.
Tensor sumAll(const Tensor& a);

}  // namespace ancstr::nn
