#include "place/geometry.h"

#include <gtest/gtest.h>

namespace ancstr::place {
namespace {

TEST(Rect, Accessors) {
  const Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.right(), 4.0);
  EXPECT_DOUBLE_EQ(r.top(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), (Point{2.5, 4.0}));
}

TEST(OverlapArea, DisjointAndTouching) {
  const Rect a{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(overlapArea(a, {5, 5, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(overlapArea(a, {2, 0, 1, 1}), 0.0);  // touching edge
}

TEST(OverlapArea, PartialAndContained) {
  const Rect a{0, 0, 4, 4};
  EXPECT_DOUBLE_EQ(overlapArea(a, {2, 2, 4, 4}), 4.0);
  EXPECT_DOUBLE_EQ(overlapArea(a, {1, 1, 1, 1}), 1.0);  // contained
  EXPECT_DOUBLE_EQ(overlapArea(a, a), 16.0);
}

TEST(OverlapArea, Commutative) {
  const Rect a{0, 0, 3, 2};
  const Rect b{1, 1, 5, 5};
  EXPECT_DOUBLE_EQ(overlapArea(a, b), overlapArea(b, a));
}

TEST(BoundingBox, HalfPerimeter) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.halfPerimeter(), 0.0);
  box.add({0, 0});
  EXPECT_DOUBLE_EQ(box.halfPerimeter(), 0.0);
  box.add({3, 4});
  EXPECT_DOUBLE_EQ(box.halfPerimeter(), 7.0);
  box.add({1, 10});
  EXPECT_DOUBLE_EQ(box.halfPerimeter(), 13.0);
}

}  // namespace
}  // namespace ancstr::place
