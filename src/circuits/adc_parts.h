// Reusable subcircuit builders for the ADC benchmark generators.
//
// Every builder defines one master subckt through the NetlistBuilder and
// registers that master's internal ground-truth constraints (and child
// instances) with the TruthComposer, so assembled designs get a complete
// designer-style constraint file by construction.
#pragma once

#include <string>

#include "circuits/truth_composer.h"
#include "netlist/builder.h"

namespace ancstr::circuits {

/// Shared state threaded through the part builders.
struct PartsContext {
  NetlistBuilder& builder;
  TruthComposer& truth;
};

/// CMOS inverter, ports (in, out, vdd, vss). `wn` is the NMOS width in
/// meters; the PMOS is 2x. Used by the clock tree of Fig. 2.
void buildInverter(PartsContext ctx, const std::string& name, double wn);

/// Clock generator in the style of Fig. 2: two matched branches of
/// inverters with per-stage sizes 1x/2x/4x. Only same-stage cross-branch
/// inverter pairs are true symmetry groups - equal topology with different
/// sizing must NOT match. Ports (clkin, clkoutp, clkoutn, vdd, vss).
void buildClockGen(PartsContext ctx, const std::string& name);

/// Fully differential OTA (~22 devices), width-scaled by `scale`.
/// Ports (vinp, vinn, voutp, voutn, ibias, vdd, vss).
void buildOtaFd(PartsContext ctx, const std::string& name, double scale);

/// Dynamic StrongARM-style comparator (~20 devices).
/// Ports (vinp, vinn, clk, clkb, voutp, voutn, vdd, vss).
void buildDynComparator(PartsContext ctx, const std::string& name);

/// Binary current-steering DAC, `bits` bits, unit current source width
/// `unitW`. Ports (d<k>, db<k> ... ioutp, ioutn, vbn, vdd, vss).
void buildCurrentDac(PartsContext ctx, const std::string& name, int bits,
                     double unitW);

/// Resistive feedback DAC, two interconnect variants "a" and "b" with the
/// same function but nonidentical topology (paper Section IV-D motivation:
/// nonidentical subcircuits can still require symmetry matching).
/// Ports (d, db, iout, vref, vss).
void buildResDacVariantA(PartsContext ctx, const std::string& name);
void buildResDacVariantB(PartsContext ctx, const std::string& name);

/// One thermometer cap-DAC unit cell: unit cap + set/reset switches.
/// Ports (top, ctl, ctlb, vref, vss).
void buildCapCell(PartsContext ctx, const std::string& name);

/// SAR capacitive DAC array: `binaryBits` binary-weighted caps with switch
/// pairs plus `thermoCells` instances of `cellMaster` (all mutually
/// matched). Ports (vtop, vin, vref, rst, b<k>/bb<k>..., t<k>/tb<k>...,
/// vss).
void buildCapDacArray(PartsContext ctx, const std::string& name,
                      int binaryBits, int thermoCells,
                      const std::string& cellMaster);

/// Static CMOS D flip-flop (~18 devices). Ports (d, clk, clkb, q, qb,
/// vdd, vss).
void buildDff(PartsContext ctx, const std::string& name);

/// SAR controller: `bits` DFF slices (mutually matched bit slices) plus
/// glue gates. Ports (clk, clkb, cmp, b<k>/bb<k>..., vdd, vss).
void buildSarLogic(PartsContext ctx, const std::string& name, int bits,
                   const std::string& dffMaster);

/// Bootstrapped sampling switch (~12 devices).
/// Ports (vin, vout, clk, clkb, vdd, vss).
void buildBootstrapSwitch(PartsContext ctx, const std::string& name);

/// Active-RC integrator: OTA instance + matched input resistors + matched
/// feedback capacitors. Ports (vinp, vinn, voutp, voutn, ibias, vdd, vss).
void buildIntegrator(PartsContext ctx, const std::string& name,
                     const std::string& otaMaster, double rOhms,
                     double cFarads);

}  // namespace ancstr::circuits
