#include "util/json.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ancstr {
namespace {

TEST(Json, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json().isNull());
  EXPECT_TRUE(Json(nullptr).isNull());
  EXPECT_TRUE(Json(true).asBool());
  EXPECT_DOUBLE_EQ(Json(2.5).asNumber(), 2.5);
  EXPECT_DOUBLE_EQ(Json(7).asNumber(), 7.0);
  EXPECT_EQ(Json("hi").asString(), "hi");
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).asString(), Error);
  EXPECT_THROW(Json("x").asNumber(), Error);
  EXPECT_THROW(Json().asBool(), Error);
  EXPECT_THROW(Json(1.0).push(Json()), Error);
  EXPECT_THROW(Json(1.0).set("k", Json()), Error);
}

TEST(Json, ArrayOperations) {
  Json arr = Json::array();
  arr.push(1).push("two").push(Json::array());
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr.at(0).asNumber(), 1.0);
  EXPECT_EQ(arr.at(1).asString(), "two");
  EXPECT_THROW(arr.at(5), Error);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zeta", 1).set("alpha", 2).set("mid", 3);
  const std::vector<std::string> expected{"zeta", "alpha", "mid"};
  EXPECT_EQ(obj.keys(), expected);
  EXPECT_DOUBLE_EQ(obj.get("alpha").asNumber(), 2.0);
  EXPECT_EQ(obj.find("nope"), nullptr);
  EXPECT_THROW(obj.get("nope"), Error);
}

TEST(Json, ObjectSetReplaces) {
  Json obj = Json::object();
  obj.set("k", 1).set("k", 2);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_DOUBLE_EQ(obj.get("k").asNumber(), 2.0);
}

TEST(Json, CompactDump) {
  Json obj = Json::object();
  obj.set("a", 1);
  Json arr = Json::array();
  arr.push(true).push(nullptr);
  obj.set("b", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[true,null]}");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, IntegersDumpWithoutExponent) {
  EXPECT_EQ(Json(1000000.0).dump(), "1000000");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null")->isNull());
  EXPECT_TRUE(Json::parse("true")->asBool());
  EXPECT_FALSE(Json::parse("false")->asBool());
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e3")->asNumber(), -2500.0);
  EXPECT_EQ(Json::parse("\"hey\"")->asString(), "hey");
}

TEST(Json, ParseNested) {
  const auto v = Json::parse(R"({"a": [1, {"b": "x"}], "c": null})");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->get("a").at(0).asNumber(), 1.0);
  EXPECT_EQ(v->get("a").at(1).get("b").asString(), "x");
  EXPECT_TRUE(v->get("c").isNull());
}

TEST(Json, ParseEscapes) {
  const auto v = Json::parse(R"("line\nbreak\t\"q\" A")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->asString(), "line\nbreak\t\"q\" A");
}

TEST(Json, ParseRejectsMalformed) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("12 34").has_value());
  EXPECT_FALSE(Json::parse("").has_value());
}

TEST(Json, RoundTripCompactAndPretty) {
  const char* text =
      R"({"name":"test","values":[1,2.5,true,null],"nested":{"k":"v"}})";
  const auto v = Json::parse(text);
  ASSERT_TRUE(v.has_value());
  // compact round trip is byte-identical
  EXPECT_EQ(v->dump(), text);
  // pretty print re-parses to the same compact form
  const auto pretty = Json::parse(v->dump(2));
  ASSERT_TRUE(pretty.has_value());
  EXPECT_EQ(pretty->dump(), text);
}

}  // namespace
}  // namespace ancstr
