// Randomised robustness sweeps: generate random (but structurally valid)
// netlists and check cross-cutting invariants — the parser round-trips
// them, Algorithm 1 produces paired typed edges, candidate enumeration
// stays within hierarchy/type rules, and the whole pipeline runs without
// faults. Seeds are fixed: failures reproduce.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/pipeline.h"
#include "netlist/builder.h"
#include "netlist/spice_parser.h"
#include "netlist/spice_writer.h"
#include "util/rng.h"

namespace ancstr {
namespace {

/// Random flat circuit: `numDevices` devices of random types wired to a
/// random pool of nets (every device terminal picks a random net).
Library randomCircuit(Rng& rng, std::size_t numDevices, std::size_t numNets) {
  NetlistBuilder b;
  std::vector<std::string> nets;
  for (std::size_t i = 0; i < numNets; ++i) {
    nets.push_back("n" + std::to_string(i));
  }
  auto net = [&] { return nets[rng.index(nets.size())]; };

  b.beginSubckt("fuzz", {nets[0], nets[1 % numNets]});
  for (std::size_t i = 0; i < numDevices; ++i) {
    const std::string name = "d" + std::to_string(i);
    switch (rng.index(5)) {
      case 0:
        b.nmos(name, net(), net(), net(), net(),
               rng.uniform(0.2e-6, 20e-6), rng.uniform(0.05e-6, 1e-6),
               1 + static_cast<int>(rng.index(4)));
        break;
      case 1:
        b.pmos(name, net(), net(), net(), net(),
               rng.uniform(0.2e-6, 20e-6), rng.uniform(0.05e-6, 1e-6));
        break;
      case 2:
        b.res(name, net(), net(), rng.uniform(10.0, 1e6));
        break;
      case 3:
        b.cap(name, net(), net(), rng.uniform(1e-15, 1e-11));
        break;
      default:
        b.dio(name, net(), net());
        break;
    }
  }
  b.endSubckt();
  return b.build("fuzz");
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, ParserRoundTripsRandomCircuits) {
  Rng rng(GetParam());
  const Library lib = randomCircuit(rng, 20 + rng.index(60), 8 + rng.index(20));
  const Library reparsed = parseSpice(writeSpice(lib), "fuzz.sp");
  EXPECT_EQ(lib.flatDeviceCount(), reparsed.flatDeviceCount());
  EXPECT_EQ(lib.flatNetCount(), reparsed.flatNetCount());
}

TEST_P(FuzzTest, GraphConstructionInvariants) {
  Rng rng(GetParam() + 1000);
  const Library lib = randomCircuit(rng, 30 + rng.index(40), 6 + rng.index(15));
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CircuitGraph g = buildHeteroGraph(design);
  // No self loops; edges come in oriented pairs; in == out degree.
  EXPECT_EQ(g.graph.numEdges() % 2, 0u);
  for (const HeteroEdge& e : g.graph.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, g.numVertices());
    EXPECT_LT(e.dst, g.numVertices());
  }
  for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
    EXPECT_EQ(g.graph.inEdges(v).size(), g.graph.outEdges(v).size());
  }
  // Gate-typed edges only ever target MOS vertices.
  for (const HeteroEdge& e : g.graph.edges()) {
    if (e.type == EdgeType::kGate) {
      EXPECT_TRUE(isMos(design.device(g.vertexToDevice[e.dst]).type));
    }
  }
}

TEST_P(FuzzTest, CandidateRulesHold) {
  Rng rng(GetParam() + 2000);
  const Library lib = randomCircuit(rng, 25 + rng.index(50), 5 + rng.index(20));
  const FlatDesign design = FlatDesign::elaborate(lib);
  const CandidateSet candidates = enumerateCandidates(design, lib);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const CandidatePair& p : candidates.pairs) {
    EXPECT_EQ(design.device(p.a.id).type, design.device(p.b.id).type);
    EXPECT_EQ(design.device(p.a.id).owner, design.device(p.b.id).owner);
    EXPECT_NE(p.a.id, p.b.id);
    // No duplicates in either order.
    const auto key = std::minmax(p.a.id, p.b.id);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST_P(FuzzTest, PipelineRunsWithoutFaults) {
  Rng rng(GetParam() + 3000);
  const Library lib = randomCircuit(rng, 20 + rng.index(30), 6 + rng.index(10));
  PipelineConfig config;
  config.train.epochs = 2;
  Pipeline pipeline(config);
  pipeline.train({&lib});
  const ExtractionResult result = pipeline.extract(lib);
  for (const ScoredCandidate& c : result.detection.scored) {
    EXPECT_TRUE(std::isfinite(c.similarity));
    EXPECT_GE(c.similarity, -1.0 - 1e-9);
    EXPECT_LE(c.similarity, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

}  // namespace
}  // namespace ancstr
