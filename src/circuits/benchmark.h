// Benchmark corpus: the substitute for the paper's proprietary taped-out
// ADCs (Table III) and the ALIGN/MAGICAL block-level circuits (Table IV).
//
// Every benchmark carries its netlist plus designer-style ground-truth
// symmetry constraints emitted by construction, so evaluation never needs
// external label files.
#pragma once

#include <string>
#include <vector>

#include "eval/ground_truth.h"
#include "netlist/netlist.h"

namespace ancstr::circuits {

/// A netlist with its ground-truth constraints.
struct CircuitBenchmark {
  std::string name;
  std::string category;  ///< "OTA", "COMP", "DAC", "LATCH", "ADC"
  Library lib;
  GroundTruth truth;
};

/// The 15 block-level circuits of Table IV (6 OTA, 6 COMP, 2 DAC, 1 LATCH).
std::vector<CircuitBenchmark> blockBenchmarks();

/// The five ADC architectures of Table III:
///   ADC1  2nd-order CT delta-sigma
///   ADC2  3rd-order CT delta-sigma
///   ADC3  3rd-order CT delta-sigma (alternate DAC style)
///   ADC4  SAR
///   ADC5  hybrid CT delta-sigma + SAR
std::vector<CircuitBenchmark> adcBenchmarks();

/// One ADC by 1-based index (1..5).
CircuitBenchmark adcBenchmark(int index);

/// Per-benchmark statistics used by the dataset tables.
struct BenchmarkStats {
  std::size_t devices = 0;
  std::size_t nets = 0;
  std::size_t validPairs = 0;
  std::size_t systemPairs = 0;
  std::size_t devicePairs = 0;
  std::size_t truthConstraints = 0;
};

BenchmarkStats computeStats(const CircuitBenchmark& bench);

}  // namespace ancstr::circuits
