// Weight initialisation schemes.
#pragma once

#include "nn/matrix.h"
#include "util/rng.h"

namespace ancstr::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fanIn + fanOut)).
Matrix xavierUniform(std::size_t fanIn, std::size_t fanOut, Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fanIn)).
Matrix heNormal(std::size_t fanIn, std::size_t fanOut, Rng& rng);

/// Uniform in [lo, hi).
Matrix uniform(std::size_t rows, std::size_t cols, double lo, double hi,
               Rng& rng);

}  // namespace ancstr::nn
