#include "place/svg.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ancstr::place {
namespace {

struct SvgSetup {
  PlacementProblem problem;
  PlacementSolution solution;
};

SvgSetup makeSetup() {
  SvgSetup s;
  s.problem.cells = {{"m1", 0, 2, 1}, {"m2", 1, 2, 1}, {"mt", 2, 3, 1}};
  s.problem.symmetricPairs = {{0, 1}};
  s.problem.selfSymmetric = {2};
  s.solution.symmetryAxis = 0.0;
  s.solution.rects = {{-4, 0, 2, 1}, {2, 0, 2, 1}, {-1.5, 2, 3, 1}};
  return s;
}

TEST(Svg, ProducesWellFormedDocument) {
  const SvgSetup s = makeSetup();
  const std::string svg = renderSvg(s.problem, s.solution);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 3 cells + background rect.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 4u);
}

TEST(Svg, DrawsAxisAndLabels) {
  const SvgSetup s = makeSetup();
  const std::string svg = renderSvg(s.problem, s.solution);
  EXPECT_NE(svg.find("stroke-dasharray=\"6,4\""), std::string::npos);
  EXPECT_NE(svg.find(">m1<"), std::string::npos);
  EXPECT_NE(svg.find(">mt<"), std::string::npos);
}

TEST(Svg, PairMembersShareColour) {
  const SvgSetup s = makeSetup();
  const std::string svg = renderSvg(s.problem, s.solution);
  // First palette colour appears exactly twice (both pair members).
  std::size_t count = 0, pos = 0;
  while ((pos = svg.find("#4e79a7", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Svg, LabelsCanBeDisabled) {
  const SvgSetup s = makeSetup();
  SvgOptions options;
  options.labels = false;
  const std::string svg = renderSvg(s.problem, s.solution, options);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
}

TEST(Svg, FileWriting) {
  const SvgSetup s = makeSetup();
  const std::string path = testing::TempDir() + "/ancstr_layout.svg";
  writeSvgFile(s.problem, s.solution, path);
  EXPECT_THROW(writeSvgFile(s.problem, s.solution, "/no/such/dir/x.svg"),
               Error);
}

}  // namespace
}  // namespace ancstr::place
