#include "util/parallel.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/trace.h"

namespace ancstr::util {

std::size_t resolveThreadCount(std::size_t configured) {
  if (const char* env = std::getenv("ANCSTR_THREADS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      configured = static_cast<std::size_t>(value);
    }
  }
  if (configured == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    configured = hw == 0 ? 1 : hw;
  }
  return configured < 1 ? 1 : configured;
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;  ///< workers wait here for a new job
  std::condition_variable done;  ///< the caller waits here for completion

  // Current job, valid while generation is unchanged. Workers with index w
  // run chunk w + 1 (the caller runs chunk 0); workers whose chunk index
  // falls outside numChunks just acknowledge the generation.
  std::uint64_t generation = 0;
  bool shutdown = false;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::size_t numChunks = 0;
  std::size_t pendingWorkers = 0;
  std::vector<std::exception_ptr> errors;

  std::vector<std::thread> workers;

  void runChunk(std::size_t chunk) {
    const auto [begin, end] = chunkBounds(chunk, numChunks, n);
    // Worker-attributed span: one per chunk, so a trace shows the static
    // partition and analyze_trace.py can compute parallel efficiency
    // (sum of chunk time / region wall-clock x thread count).
    const trace::TraceSpan span("parallel.chunk");
    try {
      (*body)(begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex);
      errors[chunk] = std::current_exception();
    }
  }

  void workerLoop(std::size_t workerIndex) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      const std::size_t chunk = workerIndex + 1;
      if (chunk < numChunks) runChunk(chunk);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (--pendingWorkers == 0) done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  if (threads < 1) threads = 1;
  impl_->workers.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w) {
    impl_->workers.emplace_back([this, w] { impl_->workerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->wake.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::size() const { return impl_->workers.size() + 1; }

std::pair<std::size_t, std::size_t> ThreadPool::chunkBounds(
    std::size_t chunk, std::size_t numChunks, std::size_t n) {
  const std::size_t base = n / numChunks;
  const std::size_t remainder = n % numChunks;
  const std::size_t begin =
      chunk * base + (chunk < remainder ? chunk : remainder);
  const std::size_t end = begin + base + (chunk < remainder ? 1 : 0);
  return {begin, end};
}

void ThreadPool::parallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const trace::TraceSpan regionSpan("parallel.for");
  const std::size_t chunks = std::min(size(), n);
  if (chunks == 1) {
    // Exact serial path: run inline, exceptions propagate naturally. The
    // chunk span still fires so serial and parallel traces stay
    // structurally comparable.
    const trace::TraceSpan chunkSpan("parallel.chunk");
    body(0, n);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->body = &body;
    impl_->n = n;
    impl_->numChunks = chunks;
    impl_->errors.assign(chunks, nullptr);
    impl_->pendingWorkers = impl_->workers.size();
    ++impl_->generation;
  }
  impl_->wake.notify_all();
  impl_->runChunk(0);
  std::vector<std::exception_ptr> errors;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done.wait(lock, [&] { return impl_->pendingWorkers == 0; });
    impl_->body = nullptr;
    errors = std::move(impl_->errors);
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace ancstr::util
