#include "graph/digraph.h"

#include <algorithm>
#include <queue>

#include "util/error.h"

namespace ancstr {

SimpleDigraph::SimpleDigraph(std::size_t numVertices)
    : out_(numVertices), in_(numVertices) {}

void SimpleDigraph::addEdge(std::uint32_t u, std::uint32_t v) {
  ANCSTR_ASSERT(u < numVertices() && v < numVertices());
  auto& adj = out_[u];
  if (std::find(adj.begin(), adj.end(), v) != adj.end()) return;
  adj.push_back(v);
  in_[v].push_back(u);
  ++numEdges_;
}

bool SimpleDigraph::hasEdge(std::uint32_t u, std::uint32_t v) const {
  const auto& adj = out_.at(u);
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::vector<std::uint32_t> SimpleDigraph::weakComponents() const {
  const std::uint32_t unassigned = 0xFFFFFFFFu;
  std::vector<std::uint32_t> comp(numVertices(), unassigned);
  std::uint32_t next = 0;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t seed = 0; seed < numVertices(); ++seed) {
    if (comp[seed] != unassigned) continue;
    comp[seed] = next;
    stack.push_back(seed);
    while (!stack.empty()) {
      const std::uint32_t v = stack.back();
      stack.pop_back();
      for (const std::uint32_t w : out_[v]) {
        if (comp[w] == unassigned) {
          comp[w] = next;
          stack.push_back(w);
        }
      }
      for (const std::uint32_t w : in_[v]) {
        if (comp[w] == unassigned) {
          comp[w] = next;
          stack.push_back(w);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::vector<int> SimpleDigraph::bfsDistances(std::uint32_t source) const {
  std::vector<int> dist(numVertices(), -1);
  std::queue<std::uint32_t> frontier;
  dist.at(source) = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop();
    for (const std::uint32_t w : out_[v]) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

}  // namespace ancstr
