#include "netlist/flatten.h"

#include <algorithm>

#include "util/error.h"

namespace ancstr {
namespace detail {

class Elaborator {
 public:
  /// `sink` null = strict legacy mode (validate() already ran, nothing can
  /// go wrong here); non-null = fail-soft mode with per-construct checks.
  explicit Elaborator(const Library& lib,
                      diag::DiagnosticSink* sink = nullptr)
      : lib_(lib), sink_(sink) {}

  FlatDesign run() {
    const SubcktId topId = lib_.top();
    const SubcktDef& top = lib_.subckt(topId);

    HierNode rootNode;
    rootNode.id = 0;
    rootNode.parent = 0;
    rootNode.master = topId;
    hier_.push_back(rootNode);
    if (sink_ != nullptr) expanding_.assign(lib_.subcktCount(), false);
    if (!expanding_.empty()) expanding_[topId] = true;

    // Top-level ports become ordinary flat nets.
    std::vector<FlatNetId> netMap(top.nets().size(), kInvalidId);
    expand(topId, 0, "", netMap);

    FlatDesign out;
    out.devices_ = std::move(devices_);
    out.nets_ = std::move(nets_);
    out.hier_ = std::move(hier_);
    out.terminals_.resize(out.nets_.size());
    for (FlatDeviceId d = 0; d < out.devices_.size(); ++d) {
      const auto& pins = out.devices_[d].pins;
      for (std::uint32_t p = 0; p < pins.size(); ++p) {
        out.terminals_[pins[p].second].emplace_back(d, p);
      }
    }
    return out;
  }

 private:
  FlatNetId newNet(std::string path) {
    const FlatNetId id = static_cast<FlatNetId>(nets_.size());
    nets_.push_back(FlatNet{std::move(path)});
    return id;
  }

  /// Expands subckt `id` as hierarchy node `node`. `netMap` maps the
  /// subckt's local net ids to flat nets; port entries are pre-filled by
  /// the caller (all kInvalidId at the top level).
  void expand(SubcktId id, HierNodeId node, const std::string& prefix,
              std::vector<FlatNetId>& netMap) {
    const SubcktDef& def = lib_.subckt(id);

    for (NetId n = 0; n < def.nets().size(); ++n) {
      if (netMap[n] != kInvalidId) continue;  // bound to parent net
      netMap[n] = newNet(prefix + def.net(n).name);
    }

    for (DeviceId d = 0; d < def.devices().size(); ++d) {
      const Device& dev = def.device(d);
      if (sink_ != nullptr && !deviceUsable(def, dev, prefix)) continue;
      FlatDevice flat;
      flat.path = prefix + dev.name;
      flat.type = dev.type;
      flat.params = dev.params;
      flat.owner = node;
      flat.pins.reserve(dev.pins.size());
      for (const Pin& pin : dev.pins) {
        flat.pins.emplace_back(pin.function, netMap[pin.net]);
      }
      const FlatDeviceId fid = static_cast<FlatDeviceId>(devices_.size());
      devices_.push_back(std::move(flat));
      hier_[node].leafDevices.push_back(fid);
    }

    for (InstanceId i = 0; i < def.instances().size(); ++i) {
      const Instance& inst = def.instance(i);
      if (sink_ != nullptr && !instanceUsable(def, inst, prefix)) continue;
      const SubcktDef& master = lib_.subckt(inst.master);

      const HierNodeId childId = static_cast<HierNodeId>(hier_.size());
      HierNode child;
      child.id = childId;
      child.parent = node;
      child.instanceName = inst.name;
      child.path = prefix + inst.name;
      child.master = inst.master;
      hier_.push_back(std::move(child));
      hier_[node].children.push_back(childId);

      std::vector<FlatNetId> childMap(master.nets().size(), kInvalidId);
      const auto& ports = master.ports();
      ANCSTR_ASSERT(ports.size() == inst.connections.size());
      for (std::size_t p = 0; p < ports.size(); ++p) {
        childMap[ports[p]] = netMap[inst.connections[p]];
      }
      if (!expanding_.empty()) expanding_[inst.master] = true;
      expand(inst.master, childId, prefix + inst.name + "/", childMap);
      if (!expanding_.empty()) expanding_[inst.master] = false;
    }
  }

  /// Fail-soft device check: mirrors Library::validate's per-device rules.
  bool deviceUsable(const SubcktDef& def, const Device& dev,
                    const std::string& prefix) {
    const auto drop = [&](const std::string& why) {
      sink_->error(diag::codes::kInvalidNetlist, "", 0,
                   "dropping device '" + prefix + dev.name + "': " + why);
      return false;
    };
    if (dev.type != DeviceType::kUnknown &&
        dev.pins.size() != pinCount(dev.type)) {
      return drop(std::to_string(dev.pins.size()) + " pins, expected " +
                  std::to_string(pinCount(dev.type)) + " for type " +
                  std::string(deviceTypeName(dev.type)));
    }
    for (const Pin& pin : dev.pins) {
      if (pin.net >= def.nets().size()) return drop("dangling pin");
    }
    return true;
  }

  /// Fail-soft instance check: an unresolvable or recursive subcircuit
  /// instantiation is skipped whole.
  bool instanceUsable(const SubcktDef& def, const Instance& inst,
                      const std::string& prefix) {
    const auto skip = [&](const std::string& why) {
      sink_->error(diag::codes::kSubcktSkipped, "", 0,
                   "skipping subcircuit instance '" + prefix + inst.name +
                       "': " + why);
      return false;
    };
    if (inst.master >= lib_.subcktCount()) {
      return skip("references undefined master");
    }
    const SubcktDef& master = lib_.subckt(inst.master);
    if (inst.connections.size() != master.ports().size()) {
      return skip("connects " + std::to_string(inst.connections.size()) +
                  " nets but master '" + master.name() + "' has " +
                  std::to_string(master.ports().size()) + " ports");
    }
    for (const NetId net : inst.connections) {
      if (net >= def.nets().size()) return skip("dangling connection");
    }
    if (expanding_[inst.master]) {
      return skip("recursive hierarchy through subckt '" + master.name() +
                  "'");
    }
    return true;
  }

  const Library& lib_;
  diag::DiagnosticSink* sink_;
  /// Fail-soft only: masters on the current expansion stack (recursion
  /// guard replacing validate()'s global DFS).
  std::vector<bool> expanding_;
  std::vector<FlatDevice> devices_;
  std::vector<FlatNet> nets_;
  std::vector<HierNode> hier_;
};

}  // namespace detail

FlatDesign FlatDesign::elaborate(const Library& lib) {
  lib.validate();
  return detail::Elaborator(lib).run();
}

FlatDesign FlatDesign::elaborate(const Library& lib,
                                 diag::DiagnosticSink& sink) {
  if (sink.strict()) return elaborate(lib);
  return detail::Elaborator(lib, &sink).run();
}

std::vector<FlatDeviceId> FlatDesign::subtreeDevices(HierNodeId nodeId) const {
  std::vector<FlatDeviceId> out;
  std::vector<HierNodeId> stack{nodeId};
  while (!stack.empty()) {
    const HierNode& n = hier_.at(stack.back());
    stack.pop_back();
    out.insert(out.end(), n.leafDevices.begin(), n.leafDevices.end());
    for (const HierNodeId c : n.children) stack.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t FlatDesign::subtreeDeviceCount(HierNodeId nodeId) const {
  std::size_t count = 0;
  std::vector<HierNodeId> stack{nodeId};
  while (!stack.empty()) {
    const HierNode& n = hier_.at(stack.back());
    stack.pop_back();
    count += n.leafDevices.size();
    for (const HierNodeId c : n.children) stack.push_back(c);
  }
  return count;
}

std::size_t FlatDesign::maxSubcircuitSize() const {
  std::size_t best = 0;
  for (HierNodeId id = 1; id < hier_.size(); ++id) {
    best = std::max(best, subtreeDeviceCount(id));
  }
  return best;
}

}  // namespace ancstr
