// Typed constraint registry — the single currency of the detection
// output path.
//
// Detection used to speak three ad-hoc dialects: the detector's accepted
// ScoredCandidates, groups.h's SymmetryGroup (string pairs), and
// constraint_io's ParsedConstraint records. This header replaces all
// three with one tagged model: a `Constraint` carries a type (symmetry
// pair, self-symmetric member, current mirror, hierarchical symmetry
// group per Kunal et al., arXiv:2010.00051), per-type metadata, and
// members that hold BOTH a stable structural id and a display name — ids
// key caches and grouping (rename-proof, like the engine's structural
// hashes), names key files and reports. A `ConstraintSet` owns the
// records plus the run's thresholds in a canonical deterministic order,
// so every consumer — grouping, eval, IO writers, the CLI — reads the
// same object.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/candidates.h"
#include "netlist/flatten.h"

namespace ancstr {

/// The constraint vocabulary downstream P&R engines consume.
enum class ConstraintType : std::uint8_t {
  kSymmetryPair = 0,   ///< matched module pair (paper Alg. 3 output)
  kSelfSymmetric = 1,  ///< single device straddling a symmetry axis
  kCurrentMirror = 2,  ///< diode-connected reference + mirror branch
  kSymmetryGroup = 3,  ///< merged hierarchical group of pairs + selfs
};

/// Stable lowercase tag ("symmetry_pair", ...) used by the serialized
/// formats; covered by the format-versioning policy in docs/api.md.
const char* constraintTypeName(ConstraintType type);

/// Inverse of constraintTypeName; nullopt for unknown tags.
std::optional<ConstraintType> constraintTypeFromName(std::string_view name);

/// One participating module. `id` is the stable structural identity
/// (HierNodeId for blocks, FlatDeviceId for devices) within the design
/// the set was extracted from; `name` is the local display name used by
/// the text formats. Grouping and delta caching key on (kind, id), so
/// rename-only netlist edits keep every content-keyed cache hot.
struct ConstraintMember {
  ModuleKind kind = ModuleKind::kDevice;
  std::uint32_t id = 0;
  std::string name;

  bool operator==(const ConstraintMember&) const = default;
};

/// One typed constraint record.
///
/// Member layout by type:
///   * kSymmetryPair   — members = {a, b}
///   * kSelfSymmetric  — members = {device}
///   * kCurrentMirror  — members = {reference, mirror}; `ratio` is the
///                       mirror/reference effective-width multiple
///                       (W * nf * m), the intended current gain
///   * kSymmetryGroup  — members[0 .. 2*pairCount) are the merged pairs
///                       in (a0, b0, a1, b1, ...) order; the tail holds
///                       the group's self-symmetric members
struct Constraint {
  ConstraintType type = ConstraintType::kSymmetryPair;
  HierNodeId hierarchy = 0;
  ConstraintLevel level = ConstraintLevel::kDevice;
  std::vector<ConstraintMember> members;
  double score = 0.0;  ///< detector similarity; 0 when not applicable
  double ratio = 1.0;  ///< current-mirror gain; 1 otherwise
  std::uint32_t pairCount = 0;  ///< kSymmetryGroup only

  bool operator==(const Constraint&) const = default;
};

/// The detection-output registry: typed records plus the thresholds that
/// produced them. canonicalize() fixes a deterministic order, so equal
/// extractions yield bitwise-equal sets for any thread count.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  void add(Constraint constraint) {
    constraints_.push_back(std::move(constraint));
  }

  /// Sorts records into the canonical order: (hierarchy, type, level,
  /// members by (kind, id, name), pairCount, score). Stable, idempotent.
  void canonicalize();

  const std::vector<Constraint>& all() const { return constraints_; }
  std::size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }

  /// Records of one type, in set order.
  std::vector<const Constraint*> ofType(ConstraintType type) const;
  std::size_t count(ConstraintType type) const;

  bool operator==(const ConstraintSet&) const = default;

  /// Thresholds of the detection run that produced the set (carried here
  /// so IO consumes nothing but the design and the set).
  double systemThreshold = 0.0;
  double deviceThreshold = 0.0;
  double mirrorThreshold = 0.0;

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace ancstr
