// Reproduces Table V: system-level symmetry constraint extraction on the
// five ADCs — S3DET (spectral graph similarity) vs. this work (GNN).
// Columns per method: TPR / FPR / PPV / ACC / F1 / runtime(s); runtimes
// exclude GNN training (matching the paper's footnote) and the training
// time is reported separately above the table.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "harness.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

void run(BenchContext& ctx) {
  const auto corpus = fullCorpus();
  RunReport trainReport;
  Pipeline pipeline = trainPipeline(corpus, paperConfig(), &trainReport);
  ctx.accumulateReport(trainReport);

  std::printf("\n=== Table V: system-level constraint extraction ===\n");
  TextTable table;
  table.setHeader({"Design", "S3D.TPR", "S3D.FPR", "S3D.PPV", "S3D.ACC",
                   "S3D.F1", "S3D.s", "Our.TPR", "Our.FPR", "Our.PPV",
                   "Our.ACC", "Our.F1", "Our.s"});

  ConfusionCounts s3detTotal, oursTotal;
  double s3detSeconds = 0.0, oursSeconds = 0.0;
  int idx = 1;
  for (const auto& bench : corpus) {
    if (bench.category != "ADC") continue;
    const Evaluated s3 = evalS3Det(bench);
    const Evaluated us = evalOurs(pipeline, bench, ConstraintLevel::kSystem);
    ctx.accumulateReport(s3.report);
    ctx.accumulateReport(us.report);
    addComparisonRow(table, "ADC" + std::to_string(idx++),
                     computeMetrics(s3.counts), s3.seconds,
                     computeMetrics(us.counts), us.seconds);
    s3detTotal += s3.counts;
    oursTotal += us.counts;
    s3detSeconds += s3.seconds;
    oursSeconds += us.seconds;
  }
  table.addSeparator();
  addComparisonRow(table, "Average", computeMetrics(s3detTotal),
                   s3detSeconds / 5.0, computeMetrics(oursTotal),
                   oursSeconds / 5.0);
  table.print(std::cout);

  const Metrics s3m = computeMetrics(s3detTotal);
  const Metrics ourm = computeMetrics(oursTotal);
  std::printf(
      "\nShape check (paper: ours wins on F1 with near-zero FPR and large "
      "runtime speedup):\n"
      "  F1   %.3f (S3DET) vs %.3f (ours)  -> %s\n"
      "  FPR  %.3f (S3DET) vs %.3f (ours)  -> %s\n"
      "  time %.3fs (S3DET) vs %.3fs (ours) -> %.1fx speedup\n",
      s3m.f1, ourm.f1, ourm.f1 > s3m.f1 ? "ours wins" : "MISMATCH",
      s3m.fpr, ourm.fpr, ourm.fpr <= s3m.fpr ? "ours wins" : "MISMATCH",
      s3detSeconds, oursSeconds,
      oursSeconds > 0 ? s3detSeconds / oursSeconds : 0.0);
  ctx.setCounter("ours.f1", ourm.f1);
  ctx.setCounter("s3det.f1", s3m.f1);
  ctx.setCounter("ours.seconds", oursSeconds);
  ctx.setCounter("s3det.seconds", s3detSeconds);
}

[[maybe_unused]] const bool kRegistered =
    registerBench("table5.system_level", run);

}  // namespace

ANCSTR_BENCH_MAIN("table5_system_level")
