// Plain 2D geometry for the placement substrate.
#pragma once

#include <algorithm>
#include <cstdint>

namespace ancstr::place {

struct Point {
  double x = 0.0;
  double y = 0.0;
  bool operator==(const Point&) const = default;
};

/// Axis-aligned rectangle, lower-left anchored.
struct Rect {
  double x = 0.0;  ///< lower-left x
  double y = 0.0;  ///< lower-left y
  double w = 0.0;
  double h = 0.0;

  double right() const { return x + w; }
  double top() const { return y + h; }
  Point center() const { return {x + w / 2.0, y + h / 2.0}; }
  double area() const { return w * h; }

  bool operator==(const Rect&) const = default;
};

/// Overlapping area of two rectangles (0 when disjoint or touching).
inline double overlapArea(const Rect& a, const Rect& b) {
  const double ox =
      std::min(a.right(), b.right()) - std::max(a.x, b.x);
  const double oy = std::min(a.top(), b.top()) - std::max(a.y, b.y);
  if (ox <= 0.0 || oy <= 0.0) return 0.0;
  return ox * oy;
}

/// Half-perimeter of the bounding box of a set of points, accumulated
/// incrementally.
class BoundingBox {
 public:
  void add(const Point& p) {
    if (empty_) {
      minX_ = maxX_ = p.x;
      minY_ = maxY_ = p.y;
      empty_ = false;
    } else {
      minX_ = std::min(minX_, p.x);
      maxX_ = std::max(maxX_, p.x);
      minY_ = std::min(minY_, p.y);
      maxY_ = std::max(maxY_, p.y);
    }
  }
  bool empty() const { return empty_; }
  double halfPerimeter() const {
    return empty_ ? 0.0 : (maxX_ - minX_) + (maxY_ - minY_);
  }

 private:
  bool empty_ = true;
  double minX_ = 0.0, maxX_ = 0.0, minY_ = 0.0, maxY_ = 0.0;
};

}  // namespace ancstr::place
