#include "core/engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "circuits/synthetic.h"
#include "util/diagnostics.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/metrics.h"

namespace ancstr {
namespace {

PipelineConfig fastConfig() {
  PipelineConfig config;
  config.train.epochs = 8;
  return config;
}

/// Bitwise comparison (memcmp on doubles, not tolerance): the engine's
/// contract is that a cache hit reproduces the miss result exactly.
void expectBitwiseEqual(const ExtractionResult& a,
                        const ExtractionResult& b) {
  const DetectionResult& da = a.detection;
  const DetectionResult& db = b.detection;
  EXPECT_EQ(std::memcmp(&da.systemThreshold, &db.systemThreshold,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&da.deviceThreshold, &db.deviceThreshold,
                        sizeof(double)),
            0);
  ASSERT_EQ(da.scored.size(), db.scored.size());
  for (std::size_t i = 0; i < da.scored.size(); ++i) {
    const ScoredCandidate& ca = da.scored[i];
    const ScoredCandidate& cb = db.scored[i];
    EXPECT_TRUE(ca.pair.a == cb.pair.a);
    EXPECT_TRUE(ca.pair.b == cb.pair.b);
    EXPECT_EQ(ca.pair.hierarchy, cb.pair.hierarchy);
    EXPECT_EQ(ca.pair.level, cb.pair.level);
    EXPECT_EQ(ca.accepted, cb.accepted);
    EXPECT_EQ(std::memcmp(&ca.similarity, &cb.similarity, sizeof(double)),
              0);
  }
  ASSERT_EQ(a.embeddings.rows(), b.embeddings.rows());
  ASSERT_EQ(a.embeddings.cols(), b.embeddings.cols());
  for (std::size_t r = 0; r < a.embeddings.rows(); ++r) {
    EXPECT_EQ(std::memcmp(a.embeddings.row(r), b.embeddings.row(r),
                          a.embeddings.cols() * sizeof(double)),
              0);
  }
}

TEST(Engine, WarmEqualsColdEqualsPipeline) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  const ExtractionEngine engine(pipeline);
  const ExtractionResult cold = engine.extract(bench.lib);
  const ExtractionResult warm = engine.extract(bench.lib);

  expectBitwiseEqual(direct, cold);
  expectBitwiseEqual(cold, warm);
  const EngineCacheStats stats = engine.cacheStats();
  EXPECT_GE(stats.design.misses, 1u);
  EXPECT_GE(stats.design.hits, 1u);
}

TEST(Engine, CorrectUnderConstantEviction) {
  Pipeline pipeline(fastConfig());
  const auto a = circuits::makeDiffChain(2);
  const auto b = circuits::makeDiffChain(4);
  pipeline.train({&a.lib, &b.lib});
  const ExtractionResult directA = pipeline.extract(a.lib);
  const ExtractionResult directB = pipeline.extract(b.lib);

  // A budget far below any entry's size: every insertion immediately
  // overflows and evicts whatever is unpinned, so the engine runs in a
  // permanent thrash — results must still be exact.
  EngineConfig config;
  config.cacheBudgetBytes = 64;
  const ExtractionEngine engine(pipeline, config);
  expectBitwiseEqual(engine.extract(a.lib), directA);
  expectBitwiseEqual(engine.extract(b.lib), directB);
  expectBitwiseEqual(engine.extract(a.lib), directA);
  EXPECT_GE(engine.cacheStats().design.evictions, 1u);
}

TEST(Engine, ConcurrentMixedBatchIsDeterministic) {
  Pipeline pipeline(fastConfig());
  const auto a = circuits::makeDiffChain(2);
  const auto b = circuits::makeDiffChain(4);
  pipeline.train({&a.lib, &b.lib});
  const ExtractionResult directA = pipeline.extract(a.lib);
  const ExtractionResult directB = pipeline.extract(b.lib);

  EngineConfig config;
  config.threads = 4;
  const ExtractionEngine engine(pipeline, config);
  // Duplicate designs in one batch race for the same cache entries; the
  // TSan CI configuration runs this at ANCSTR_THREADS=4 as well.
  const std::vector<ExtractionResult> results =
      engine.extractBatch({&a.lib, &b.lib, &a.lib, &b.lib});
  ASSERT_EQ(results.size(), 4u);
  expectBitwiseEqual(results[0], directA);
  expectBitwiseEqual(results[1], directB);
  expectBitwiseEqual(results[2], directA);
  expectBitwiseEqual(results[3], directB);
}

TEST(Engine, StrictExtractOnBadInputThrows) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);
  EXPECT_THROW(engine.extract(Library{}), Error);
}

TEST(Engine, FailSoftBatchIsolatesTheBadDesign) {
  Pipeline pipeline(fastConfig());
  const auto good = circuits::makeDiffChain(2);
  pipeline.train({&good.lib});
  const Library corrupt{};  // no top cell: elaboration fails

  const ExtractionEngine engine(pipeline);
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  const std::vector<ExtractionResult> results =
      engine.extractBatch({&good.lib, &corrupt, &good.lib},
                          ExtractOptions{&sink});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_GT(results[0].detection.scored.size(), 0u);
  EXPECT_GT(results[2].detection.scored.size(), 0u);
  expectBitwiseEqual(results[0], results[2]);

  // The degraded design yields an empty result carrying its own
  // diagnostic; the neighbours' reports stay clean.
  EXPECT_EQ(results[1].detection.scored.size(), 0u);
  const auto hasDegraded = [](const std::vector<diag::Diagnostic>& diags) {
    for (const diag::Diagnostic& d : diags) {
      if (d.code == diag::codes::kExtractDegraded) return true;
    }
    return false;
  };
  EXPECT_TRUE(hasDegraded(results[1].report.diagnostics));
  EXPECT_FALSE(hasDegraded(results[0].report.diagnostics));
  EXPECT_FALSE(hasDegraded(results[2].report.diagnostics));
  EXPECT_TRUE(hasDegraded(sink.snapshot()));
}

TEST(Engine, PublishesCacheMetricsIntoReports) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);

  const ExtractionResult cold = engine.extract(bench.lib);
  ASSERT_TRUE(cold.report.metrics.counters.contains("engine.cache.miss"));
  EXPECT_GE(cold.report.metrics.counters.at("engine.cache.miss"), 1u);

  const ExtractionResult warm = engine.extract(bench.lib);
  ASSERT_TRUE(warm.report.metrics.counters.contains("engine.cache.hit"));
  EXPECT_GE(warm.report.metrics.counters.at("engine.cache.hit"), 1u);
  EXPECT_GT(warm.report.metrics.gauges.at("engine.cache.bytes"), 0.0);
}

TEST(Engine, ClearCachesKeepsCumulativeCounters) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  ExtractionEngine engine(pipeline);

  (void)engine.extract(bench.lib);
  (void)engine.extract(bench.lib);
  const EngineCacheStats before = engine.cacheStats();
  EXPECT_GE(before.design.hits, 1u);
  EXPECT_GT(before.design.entries, 0u);

  engine.clearCaches();
  const EngineCacheStats after = engine.cacheStats();
  EXPECT_EQ(after.design.entries, 0u);
  EXPECT_EQ(after.design.bytes, 0u);
  EXPECT_EQ(after.design.hits, before.design.hits);

  // The next extraction misses again and still reproduces the result.
  const ExtractionResult again = engine.extract(bench.lib);
  EXPECT_GT(again.detection.scored.size(), 0u);
  EXPECT_GT(engine.cacheStats().design.misses, before.design.misses);
}

TEST(Engine, PairScoreCacheHitsOnRepeatedBlockPairs) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeBlockArray(4);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  const ExtractionEngine engine(pipeline);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  const EngineCacheStats first = engine.cacheStats();
  EXPECT_GT(first.pairs.entries, 0u);

  // A design-cache hit skips inference but detection re-runs: every
  // block-pair score is now served from the pair cache.
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  const EngineCacheStats second = engine.cacheStats();
  EXPECT_GT(second.pairs.hits, first.pairs.hits);
}

TEST(Engine, DisablingPairCacheStillExtractsExactly) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeBlockArray(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.cachePairScores = false;
  const ExtractionEngine engine(pipeline, config);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  EXPECT_EQ(engine.cacheStats().pairs.entries, 0u);
}

TEST(Engine, DegradedExtractReportCarriesCacheMetrics) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);
  (void)engine.extract(bench.lib);  // warm the design cache

  // The fault fires after the design-cache consult: the degraded design's
  // report must still carry the engine.cache.* metrics for the cache
  // activity that happened before the failure (regression guard — these
  // used to be dropped on the error branch).
  diag::DiagnosticSink sink(diag::DiagnosticSink::Mode::kCollect);
  const fault::ScopedFault fault("engine.extract");
  const ExtractionResult degraded =
      engine.extract(bench.lib, ExtractOptions{&sink});
  EXPECT_EQ(degraded.detection.scored.size(), 0u);
  bool hasDiag = false;
  for (const diag::Diagnostic& d : degraded.report.diagnostics) {
    if (d.code == diag::codes::kExtractDegraded) hasDiag = true;
  }
  EXPECT_TRUE(hasDiag);
  ASSERT_TRUE(
      degraded.report.metrics.counters.contains("engine.cache.hit"));
  EXPECT_GE(degraded.report.metrics.counters.at("engine.cache.hit"), 1u);
  ASSERT_TRUE(degraded.report.metrics.counters.contains(
      "pipeline.extract_degraded"));
}

TEST(Engine, StrictFaultStillPublishesCacheCounters) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(2);
  pipeline.train({&bench.lib});
  const ExtractionEngine engine(pipeline);

  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  {
    const fault::ScopedFault fault("engine.extract");
    EXPECT_THROW((void)engine.extract(bench.lib), Error);
  }
  const metrics::Snapshot delta =
      metrics::Registry::instance().snapshot().since(before);
  ASSERT_TRUE(delta.counters.contains("engine.cache.miss"));
  EXPECT_GE(delta.counters.at("engine.cache.miss"), 1u);
}

TEST(Engine, DisablingCachesStillExtractsExactly) {
  Pipeline pipeline(fastConfig());
  const auto bench = circuits::makeDiffChain(3);
  pipeline.train({&bench.lib});
  const ExtractionResult direct = pipeline.extract(bench.lib);

  EngineConfig config;
  config.cacheDesignInference = false;
  config.cacheBlockEmbeddings = false;
  const ExtractionEngine engine(pipeline, config);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  expectBitwiseEqual(engine.extract(bench.lib), direct);
  const EngineCacheStats stats = engine.cacheStats();
  EXPECT_EQ(stats.design.entries, 0u);
  EXPECT_EQ(stats.blocks.entries, 0u);
}

}  // namespace
}  // namespace ancstr
