#include "support/netlist_mutator.h"

#include <algorithm>

#include "netlist/flatten.h"
#include "util/error.h"

namespace ancstr::testsupport {

const char* toString(MutationKind kind) {
  switch (kind) {
    case MutationKind::kRenameNet: return "rename-net";
    case MutationKind::kRenameDevice: return "rename-device";
    case MutationKind::kRenameInstance: return "rename-instance";
    case MutationKind::kSwapPins: return "swap-pins";
    case MutationKind::kAddDevice: return "add-device";
    case MutationKind::kRemoveDevice: return "remove-device";
    case MutationKind::kRetargetInstance: return "retarget-instance";
    case MutationKind::kEditParams: return "edit-params";
  }
  return "unknown";
}

LibrarySpec specFromLibrary(const Library& lib) {
  LibrarySpec spec;
  spec.subckts.reserve(lib.subcktCount());
  for (SubcktId id = 0; id < lib.subcktCount(); ++id) {
    const SubcktDef& def = lib.subckt(id);
    SubcktSpec s;
    s.name = def.name();
    // The rebuild re-adds nets in id order, which re-appends ports in the
    // order they are encountered. Net-id preservation (the property the
    // structural-hash identity of the round-trip rests on) therefore
    // requires the original ports to be nets 0..k-1 in order.
    for (std::size_t p = 0; p < def.ports().size(); ++p) {
      if (def.ports()[p] != p) {
        throw NetlistError("specFromLibrary: subckt '" + def.name() +
                           "' ports are not its first nets in order");
      }
    }
    s.nets.reserve(def.nets().size());
    for (const Net& net : def.nets()) {
      s.nets.push_back(NetSpec{net.name, net.isPort});
    }
    s.devices.reserve(def.devices().size());
    for (const Device& dev : def.devices()) {
      DeviceSpec d;
      d.name = dev.name;
      d.type = dev.type;
      d.model = dev.model;
      d.params = dev.params;
      d.pins.reserve(dev.pins.size());
      for (const Pin& pin : dev.pins) {
        d.pins.emplace_back(pin.function, static_cast<std::size_t>(pin.net));
      }
      s.devices.push_back(std::move(d));
    }
    s.instances.reserve(def.instances().size());
    for (const Instance& inst : def.instances()) {
      InstanceSpec i;
      i.name = inst.name;
      i.master = inst.master;
      i.connections.assign(inst.connections.begin(), inst.connections.end());
      s.instances.push_back(std::move(i));
    }
    spec.subckts.push_back(std::move(s));
  }
  spec.top = lib.top();
  return spec;
}

Library libraryFromSpec(const LibrarySpec& spec) {
  Library lib;
  for (const SubcktSpec& s : spec.subckts) {
    lib.addSubckt(s.name);
  }
  for (std::size_t id = 0; id < spec.subckts.size(); ++id) {
    const SubcktSpec& s = spec.subckts[id];
    SubcktDef& def = lib.mutableSubckt(static_cast<SubcktId>(id));
    for (const NetSpec& net : s.nets) {
      def.addNet(net.name, net.isPort);
    }
    for (const DeviceSpec& d : s.devices) {
      Device dev;
      dev.name = d.name;
      dev.type = d.type;
      dev.model = d.model;
      dev.params = d.params;
      dev.pins.reserve(d.pins.size());
      for (const auto& [function, net] : d.pins) {
        dev.pins.push_back(Pin{function, static_cast<NetId>(net)});
      }
      def.addDevice(std::move(dev));
    }
    for (const InstanceSpec& i : s.instances) {
      Instance inst;
      inst.name = i.name;
      inst.master = static_cast<SubcktId>(i.master);
      inst.connections.assign(i.connections.begin(), i.connections.end());
      def.addInstance(std::move(inst));
    }
  }
  lib.setTop(static_cast<SubcktId>(spec.top));
  return lib;
}

Library rebuildIdentity(const Library& lib) {
  return libraryFromSpec(specFromLibrary(lib));
}

namespace {

/// True when `from` can reach `target` through instance edges — used to
/// keep retargeting from creating recursive hierarchies.
bool reaches(const LibrarySpec& spec, std::size_t from, std::size_t target) {
  if (from == target) return true;
  std::vector<char> seen(spec.subckts.size(), 0);
  std::vector<std::size_t> stack{from};
  while (!stack.empty()) {
    const std::size_t at = stack.back();
    stack.pop_back();
    if (at == target) return true;
    if (seen[at]) continue;
    seen[at] = 1;
    for (const InstanceSpec& inst : spec.subckts[at].instances) {
      stack.push_back(inst.master);
    }
  }
  return false;
}

std::size_t portCount(const SubcktSpec& s) {
  std::size_t n = 0;
  for (const NetSpec& net : s.nets) {
    if (net.isPort) ++n;
  }
  return n;
}

}  // namespace

NetlistMutator::NetlistMutator(const Library& base, std::uint64_t seed)
    : spec_(specFromLibrary(base)), rng_(seed) {}

Library NetlistMutator::current() const { return libraryFromSpec(spec_); }

Library NetlistMutator::mutate(int count) {
  static const std::vector<MutationKind> kAll = {
      MutationKind::kRenameNet,        MutationKind::kRenameDevice,
      MutationKind::kRenameInstance,   MutationKind::kSwapPins,
      MutationKind::kAddDevice,        MutationKind::kRemoveDevice,
      MutationKind::kRetargetInstance, MutationKind::kEditParams,
  };
  return mutate(count, kAll);
}

Library NetlistMutator::mutate(int count,
                               const std::vector<MutationKind>& kinds) {
  for (int edit = 0; edit < count; ++edit) {
    bool applied = false;
    for (int attempt = 0; attempt < 64 && !applied; ++attempt) {
      const MutationKind kind = kinds[rng_.index(kinds.size())];
      LibrarySpec candidate = spec_;
      std::string desc;
      if (!tryApply(candidate, kind, &desc)) continue;
      try {
        const Library lib = libraryFromSpec(candidate);
        lib.validate();
        (void)FlatDesign::elaborate(lib);
      } catch (const Error&) {
        continue;  // rejected edit (e.g. made the hierarchy invalid)
      }
      spec_ = std::move(candidate);
      applied_.push_back(Mutation{kind, std::move(desc)});
      applied = true;
    }
    if (!applied) {
      throw Error("NetlistMutator: no valid mutation found after 64 draws");
    }
  }
  return current();
}

bool NetlistMutator::tryApply(LibrarySpec& spec, MutationKind kind,
                              std::string* desc) {
  const std::size_t s = rng_.index(spec.subckts.size());
  SubcktSpec& sub = spec.subckts[s];
  switch (kind) {
    case MutationKind::kRenameNet: {
      if (sub.nets.empty()) return false;
      const std::size_t n = rng_.index(sub.nets.size());
      const std::string name = "mutnet_" + std::to_string(fresh_++);
      *desc = sub.name + ": net '" + sub.nets[n].name + "' -> " + name;
      sub.nets[n].name = name;
      return true;
    }
    case MutationKind::kRenameDevice: {
      if (sub.devices.empty()) return false;
      const std::size_t d = rng_.index(sub.devices.size());
      const std::string name = "mutdev_" + std::to_string(fresh_++);
      *desc = sub.name + ": device '" + sub.devices[d].name + "' -> " + name;
      sub.devices[d].name = name;
      return true;
    }
    case MutationKind::kRenameInstance: {
      if (sub.instances.empty()) return false;
      const std::size_t i = rng_.index(sub.instances.size());
      const std::string name = "mutinst_" + std::to_string(fresh_++);
      *desc =
          sub.name + ": instance '" + sub.instances[i].name + "' -> " + name;
      sub.instances[i].name = name;
      return true;
    }
    case MutationKind::kSwapPins: {
      if (sub.devices.empty()) return false;
      DeviceSpec& dev = sub.devices[rng_.index(sub.devices.size())];
      if (dev.pins.size() < 2) return false;
      const std::size_t a = rng_.index(dev.pins.size());
      const std::size_t b = rng_.index(dev.pins.size());
      if (a == b || dev.pins[a].second == dev.pins[b].second) return false;
      *desc = sub.name + "/" + dev.name + ": swap pins " + std::to_string(a) +
              "<->" + std::to_string(b);
      std::swap(dev.pins[a].second, dev.pins[b].second);
      return true;
    }
    case MutationKind::kAddDevice: {
      if (sub.nets.empty()) return false;
      const std::size_t na = rng_.index(sub.nets.size());
      const std::size_t nb = rng_.index(sub.nets.size());
      DeviceSpec d;
      d.name = "mutadd_" + std::to_string(fresh_++);
      d.type = rng_.chance(0.5) ? DeviceType::kCapMim : DeviceType::kResPoly;
      d.params.value = d.type == DeviceType::kCapMim ? 1e-13 : 1e3;
      d.pins = {{PinFunction::kPassivePos, na},
                {PinFunction::kPassiveNeg, nb}};
      *desc = sub.name + ": add " + d.name;
      sub.devices.push_back(std::move(d));
      return true;
    }
    case MutationKind::kRemoveDevice: {
      if (sub.devices.size() < 2) return false;
      const std::size_t d = rng_.index(sub.devices.size());
      *desc = sub.name + ": remove device '" + sub.devices[d].name + "'";
      sub.devices.erase(sub.devices.begin() +
                        static_cast<std::ptrdiff_t>(d));
      return true;
    }
    case MutationKind::kRetargetInstance: {
      if (sub.instances.empty()) return false;
      InstanceSpec& inst = sub.instances[rng_.index(sub.instances.size())];
      std::vector<std::size_t> candidates;
      for (std::size_t m = 0; m < spec.subckts.size(); ++m) {
        if (m == inst.master) continue;
        if (portCount(spec.subckts[m]) != inst.connections.size()) continue;
        if (reaches(spec, m, s)) continue;  // would recurse
        candidates.push_back(m);
      }
      if (candidates.empty()) return false;
      const std::size_t target = candidates[rng_.index(candidates.size())];
      *desc = sub.name + "/" + inst.name + ": retarget '" +
              spec.subckts[inst.master].name + "' -> '" +
              spec.subckts[target].name + "'";
      inst.master = target;
      return true;
    }
    case MutationKind::kEditParams: {
      if (sub.devices.empty()) return false;
      DeviceSpec& dev = sub.devices[rng_.index(sub.devices.size())];
      DeviceParams& p = dev.params;
      if (p.w <= 0.0 && p.l <= 0.0 && p.value <= 0.0) return false;
      static constexpr double kFactors[] = {0.5, 1.25, 2.0};
      const double f = kFactors[rng_.index(3)];
      p.w *= f;
      p.l *= f;
      p.value *= f;
      *desc = sub.name + "/" + dev.name + ": scale params by " +
              std::to_string(f);
      return true;
    }
  }
  return false;
}

Library attachFanout(const Library& lib, std::size_t extraTerminals) {
  LibrarySpec spec = specFromLibrary(lib);
  SubcktSpec& top = spec.subckts[spec.top];
  if (top.nets.empty()) {
    throw Error("attachFanout: top cell has no nets");
  }
  // Local degree of each top-cell net (device pins + instance ports).
  std::vector<std::size_t> degree(top.nets.size(), 0);
  for (const DeviceSpec& dev : top.devices) {
    for (const auto& [function, net] : dev.pins) ++degree[net];
  }
  for (const InstanceSpec& inst : top.instances) {
    for (const std::size_t net : inst.connections) ++degree[net];
  }
  const std::size_t hub = static_cast<std::size_t>(
      std::max_element(degree.begin(), degree.end()) - degree.begin());
  // Each cap adds exactly one terminal to the hub net.
  const std::size_t other = top.nets.size() > 1 ? (hub + 1) % top.nets.size()
                                                : hub;
  for (std::size_t k = 0; k < extraTerminals; ++k) {
    DeviceSpec d;
    d.name = "fanout_" + std::to_string(k);
    d.type = DeviceType::kCapMim;
    d.params.value = 1e-14;
    d.pins = {{PinFunction::kPassivePos, hub},
              {PinFunction::kPassiveNeg, other}};
    top.devices.push_back(std::move(d));
  }
  return libraryFromSpec(spec);
}

}  // namespace ancstr::testsupport
