// Symmetry groups: the form in which P&R engines consume constraints.
//
// Accepted pairwise constraints under one hierarchy are merged into
// groups (connected components over shared modules), and devices that sit
// electrically *between* the two sides of a matched pair — e.g. the tail
// transistor of a differential pair — are annotated as self-symmetric
// members that must straddle the group's symmetry axis.
//
// Grouping reads and writes the typed registry (core/constraint.h):
// appendSymmetryGroups() merges a set's kSymmetryPair records into
// kSymmetryGroup constraints (stable member ids + names, so rename-only
// edits keep delta caches hot) and appends kSelfSymmetric records for the
// bridging devices.
#pragma once

#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/detector.h"
#include "netlist/flatten.h"

namespace ancstr {

struct GroupOptions {
  /// Nets with more terminals than this are ignored when looking for
  /// self-symmetric devices (rails connect everything to everything).
  std::size_t maxNetDegree = 16;
  /// Detect self-symmetric devices at all.
  bool detectSelfSymmetric = true;
};

/// Merges the set's kSymmetryPair constraints into kSymmetryGroup
/// records (one per connected component over shared modules; members are
/// the merged pairs in (a0, b0, a1, b1, ...) order followed by the
/// group's self-symmetric devices, pairCount = number of pairs) and
/// appends one kSelfSymmetric record per unique bridging device. The set
/// is re-canonicalized; the number of appended records is returned.
/// Deterministic: equal input sets yield bitwise-equal output sets.
std::size_t appendSymmetryGroups(const FlatDesign& design, ConstraintSet& set,
                                 const GroupOptions& options = {});

}  // namespace ancstr
