#include "core/constraint.h"

#include <algorithm>
#include <tuple>

namespace ancstr {

const char* constraintTypeName(ConstraintType type) {
  switch (type) {
    case ConstraintType::kSymmetryPair:
      return "symmetry_pair";
    case ConstraintType::kSelfSymmetric:
      return "self_symmetric";
    case ConstraintType::kCurrentMirror:
      return "current_mirror";
    case ConstraintType::kSymmetryGroup:
      return "symmetry_group";
  }
  return "symmetry_pair";
}

std::optional<ConstraintType> constraintTypeFromName(std::string_view name) {
  if (name == "symmetry_pair") return ConstraintType::kSymmetryPair;
  if (name == "self_symmetric") return ConstraintType::kSelfSymmetric;
  if (name == "current_mirror") return ConstraintType::kCurrentMirror;
  if (name == "symmetry_group") return ConstraintType::kSymmetryGroup;
  return std::nullopt;
}

namespace {

auto memberKey(const ConstraintMember& m) {
  return std::tie(m.kind, m.id, m.name);
}

bool membersLess(const std::vector<ConstraintMember>& a,
                 const std::vector<ConstraintMember>& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const ConstraintMember& x, const ConstraintMember& y) {
        return memberKey(x) < memberKey(y);
      });
}

}  // namespace

void ConstraintSet::canonicalize() {
  std::stable_sort(
      constraints_.begin(), constraints_.end(),
      [](const Constraint& a, const Constraint& b) {
        if (a.hierarchy != b.hierarchy) return a.hierarchy < b.hierarchy;
        if (a.type != b.type) return a.type < b.type;
        if (a.level != b.level) return a.level < b.level;
        if (a.members != b.members) return membersLess(a.members, b.members);
        if (a.pairCount != b.pairCount) return a.pairCount < b.pairCount;
        return a.score < b.score;
      });
}

std::vector<const Constraint*> ConstraintSet::ofType(
    ConstraintType type) const {
  std::vector<const Constraint*> out;
  for (const Constraint& c : constraints_) {
    if (c.type == type) out.push_back(&c);
  }
  return out;
}

std::size_t ConstraintSet::count(ConstraintType type) const {
  std::size_t n = 0;
  for (const Constraint& c : constraints_) {
    if (c.type == type) ++n;
  }
  return n;
}

}  // namespace ancstr
