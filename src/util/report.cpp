#include "util/report.h"

#include <cstdio>

#include "util/json.h"
#include "util/table.h"

namespace ancstr {

namespace {

std::string secondsCell(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace

double RunReport::phaseSeconds(std::string_view name) const {
  for (const PhaseTiming& phase : phases) {
    if (phase.name == name) return phase.seconds;
  }
  return 0.0;
}

double RunReport::totalSeconds() const {
  double total = 0.0;
  for (const PhaseTiming& phase : phases) total += phase.seconds;
  return total;
}

Json RunReport::toJson() const {
  Json root = Json::object();
  Json phaseArray = Json::array();
  for (const PhaseTiming& phase : phases) {
    Json entry = Json::object();
    entry.set("name", phase.name);
    entry.set("seconds", phase.seconds);
    phaseArray.push(std::move(entry));
  }
  root.set("phases", std::move(phaseArray));
  root.set("totalSeconds", totalSeconds());
  root.set("metrics", metrics.toJson());
  return root;
}

std::string RunReport::toTable() const {
  std::string out;

  TextTable phaseTable;
  phaseTable.setHeader({"phase", "seconds"});
  for (const PhaseTiming& phase : phases) {
    phaseTable.addRow({phase.name, secondsCell(phase.seconds)});
  }
  phaseTable.addSeparator();
  phaseTable.addRow({"total", secondsCell(totalSeconds())});
  out += phaseTable.render();

  TextTable metricTable;
  metricTable.setHeader({"metric", "value"});
  bool anyMetric = false;
  for (const auto& [name, value] : metrics.counters) {
    if (value == 0) continue;
    metricTable.addRow({name, std::to_string(value)});
    anyMetric = true;
  }
  for (const auto& [name, value] : metrics.gauges) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    metricTable.addRow({name, buf});
    anyMetric = true;
  }
  for (const auto& [name, histogram] : metrics.histograms) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "count=%llu sum=%.6g",
                  static_cast<unsigned long long>(histogram.count),
                  histogram.sum);
    metricTable.addRow({name, buf});
    anyMetric = true;
  }
  if (anyMetric) {
    out += "\n";
    out += metricTable.render();
  }
  return out;
}

}  // namespace ancstr
