#include "util/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>

#include "util/error.h"
#include "util/metrics.h"

namespace ancstr {
namespace {

using util::Deadline;
using util::DeadlineError;
using util::DeadlineToken;

TEST(Deadline, DefaultIsUnarmedAndNeverExpires) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.armed());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.remainingSeconds()));
}

TEST(Deadline, AfterSecondsArmsRelativeToNow) {
  const Deadline future = Deadline::afterSeconds(60.0);
  EXPECT_TRUE(future.armed());
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remainingSeconds(), 0.0);
  EXPECT_LE(future.remainingSeconds(), 60.0);

  const Deadline past = Deadline::afterSeconds(-1.0);
  EXPECT_TRUE(past.armed());
  EXPECT_TRUE(past.expired());
  EXPECT_LT(past.remainingSeconds(), 0.0);
}

TEST(Deadline, AtArmsAbsoluteTimePoint) {
  const Deadline past =
      Deadline::at(Deadline::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(past.armed());
  EXPECT_TRUE(past.expired());
}

TEST(Deadline, UnarmedTokenCheckpointIsFree) {
  const DeadlineToken token;
  EXPECT_FALSE(token.armed());
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  EXPECT_NO_THROW(token.checkpoint("unit.phase"));
  // The fast path must not touch the deadline counters at all.
  const metrics::Snapshot delta =
      metrics::Registry::instance().snapshot().since(before);
  EXPECT_FALSE(delta.counters.contains("engine.deadline.checks"));
}

TEST(Deadline, CheckpointPassesWhileTimeRemains) {
  const DeadlineToken token(Deadline::afterSeconds(60.0));
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  EXPECT_NO_THROW(token.checkpoint("unit.phase"));
  const metrics::Snapshot delta =
      metrics::Registry::instance().snapshot().since(before);
  ASSERT_TRUE(delta.counters.contains("engine.deadline.checks"));
  EXPECT_EQ(delta.counters.at("engine.deadline.checks"), 1u);
}

TEST(Deadline, ExpiredCheckpointThrowsTypedErrorNamingThePhase) {
  const DeadlineToken token(Deadline::afterSeconds(-1.0));
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  try {
    token.checkpoint("extract.detection");
    FAIL() << "expired checkpoint must throw";
  } catch (const DeadlineError& e) {
    EXPECT_NE(std::string(e.what()).find("extract.detection"),
              std::string::npos)
        << e.what();
  }
  const metrics::Snapshot delta =
      metrics::Registry::instance().snapshot().since(before);
  ASSERT_TRUE(delta.counters.contains("engine.deadline.expired"));
  EXPECT_GE(delta.counters.at("engine.deadline.expired"), 1u);
}

TEST(Deadline, DeadlineErrorIsAnError) {
  // The serving layer distinguishes DeadlineError from plain Error by
  // catch order; both must stay catchable as Error for strict callers.
  const DeadlineToken token(Deadline::afterSeconds(-1.0));
  EXPECT_THROW(token.checkpoint("unit.phase"), Error);
  EXPECT_THROW(token.checkpoint("unit.phase"), DeadlineError);
}

}  // namespace
}  // namespace ancstr
