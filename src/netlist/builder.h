// Fluent programmatic netlist construction, used by the benchmark circuit
// generators and by tests. Net names are created on first use.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.h"

namespace ancstr {

/// Builds a Library subckt-by-subckt. Usage:
///
///   NetlistBuilder b;
///   b.beginSubckt("ota", {"vin", "vip", "out", "vdd", "vss"});
///   b.nmos("m1", "tail", "vin", "vss", "vss", 2e-6, 0.5e-6);
///   ...
///   b.endSubckt();
///   Library lib = b.build("ota");
class NetlistBuilder {
 public:
  NetlistBuilder();

  /// Opens a new subcircuit definition with the given ordered port list.
  NetlistBuilder& beginSubckt(std::string_view name,
                              std::vector<std::string> ports);
  /// Closes the current subcircuit.
  NetlistBuilder& endSubckt();

  /// Adds an NMOS (d, g, s, b). Dimensions in meters.
  NetlistBuilder& nmos(std::string_view name, std::string_view d,
                       std::string_view g, std::string_view s,
                       std::string_view b, double w, double l, int nf = 1,
                       DeviceType type = DeviceType::kNch);
  /// Adds a PMOS (d, g, s, b).
  NetlistBuilder& pmos(std::string_view name, std::string_view d,
                       std::string_view g, std::string_view s,
                       std::string_view b, double w, double l, int nf = 1,
                       DeviceType type = DeviceType::kPch);
  /// Adds a resistor.
  NetlistBuilder& res(std::string_view name, std::string_view a,
                      std::string_view b, double ohms,
                      DeviceType type = DeviceType::kResPoly, double w = 0,
                      double l = 0);
  /// Adds a capacitor.
  NetlistBuilder& cap(std::string_view name, std::string_view a,
                      std::string_view b, double farads,
                      DeviceType type = DeviceType::kCapMom, int layers = 0);
  /// Adds an inductor.
  NetlistBuilder& ind(std::string_view name, std::string_view a,
                      std::string_view b, double henries);
  /// Adds a diode (anode, cathode).
  NetlistBuilder& dio(std::string_view name, std::string_view anode,
                      std::string_view cathode);
  /// Instantiates a previously defined subcircuit; `nets` are positional.
  NetlistBuilder& inst(std::string_view name, std::string_view master,
                       std::vector<std::string> nets);

  /// Finishes; validates and sets the top cell (by name when given).
  Library build(std::string_view topName = {});

 private:
  SubcktDef& current();
  NetId netOf(std::string_view name);
  NetlistBuilder& addMos(std::string_view name, DeviceType type,
                         std::string_view d, std::string_view g,
                         std::string_view s, std::string_view b, double w,
                         double l, int nf);
  NetlistBuilder& addTwoTerminal(std::string_view name, DeviceType type,
                                 std::string_view a, std::string_view b,
                                 DeviceParams params);

  Library lib_;
  SubcktId cur_ = kInvalidId;
  bool open_ = false;
};

}  // namespace ancstr
