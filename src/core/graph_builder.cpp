#include "core/graph_builder.h"

#include "util/error.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ancstr {

EdgeType edgeTypeForPin(PinFunction f) noexcept {
  switch (f) {
    case PinFunction::kGate: return EdgeType::kGate;
    case PinFunction::kDrain: return EdgeType::kDrain;
    case PinFunction::kSource: return EdgeType::kSource;
    default: return EdgeType::kPassive;
  }
}

namespace {

CircuitGraph buildOverSubset(const FlatDesign& design,
                             std::vector<FlatDeviceId> subset,
                             const GraphBuildOptions& options) {
  CircuitGraph out;
  out.vertexToDevice = std::move(subset);
  out.graph = HeteroMultigraph(out.vertexToDevice.size());
  out.deviceToVertex.reserve(out.vertexToDevice.size());
  for (std::uint32_t v = 0; v < out.vertexToDevice.size(); ++v) {
    out.deviceToVertex.emplace(out.vertexToDevice[v], v);
  }

  // Collect the (vertex, pinFunction) terminals per net, restricted to the
  // subset, then expand each net into a clique (Algorithm 1 lines 5-11).
  struct Terminal {
    std::uint32_t vertex;
    PinFunction function;
  };
  // Metric totals are aggregated locally and published once per build:
  // one atomic add instead of one per edge keeps instrumentation off the
  // clique-expansion hot path (buildOverSubset runs concurrently on
  // ThreadPool workers during block embedding).
  std::uint64_t skippedNets = 0;
  std::uint64_t cliqueEdges = 0;

  std::vector<Terminal> terminals;
  for (FlatNetId netId = 0; netId < design.nets().size(); ++netId) {
    const auto& netTerms = design.netTerminals()[netId];
    if (options.maxNetDegree > 0 && netTerms.size() > options.maxNetDegree) {
      ++skippedNets;
      continue;
    }
    terminals.clear();
    for (const auto& [deviceId, pinIdx] : netTerms) {
      const FlatDevice& dev = design.device(deviceId);
      const PinFunction fn = dev.pins[pinIdx].first;
      if (!options.includeBulkPins && fn == PinFunction::kBulk) continue;
      const auto it = out.deviceToVertex.find(deviceId);
      if (it == out.deviceToVertex.end()) continue;
      terminals.push_back({it->second, fn});
    }
    for (std::size_t i = 0; i < terminals.size(); ++i) {
      for (std::size_t j = i + 1; j < terminals.size(); ++j) {
        const Terminal& a = terminals[i];
        const Terminal& b = terminals[j];
        if (a.vertex == b.vertex) continue;  // no self loops
        EdgeType typeToB = edgeTypeForPin(b.function);
        EdgeType typeToA = edgeTypeForPin(a.function);
        if (options.collapseEdgeTypes) {
          typeToA = EdgeType::kPassive;
          typeToB = EdgeType::kPassive;
        }
        out.graph.addEdge(a.vertex, b.vertex, typeToB);
        out.graph.addEdge(b.vertex, a.vertex, typeToA);
        cliqueEdges += 2;
      }
    }
  }

  static metrics::Counter& skippedCounter = metrics::Registry::instance()
      .counter("graph.nets_skipped_max_degree");
  static metrics::Counter& edgeCounter =
      metrics::Registry::instance().counter("graph.clique_edges");
  skippedCounter.add(skippedNets);
  edgeCounter.add(cliqueEdges);
  return out;
}

}  // namespace

CircuitGraph buildHeteroGraph(const FlatDesign& design,
                              const GraphBuildOptions& options) {
  const trace::TraceSpan span("graph.build");
  std::vector<FlatDeviceId> all(design.devices().size());
  for (FlatDeviceId i = 0; i < all.size(); ++i) all[i] = i;
  return buildOverSubset(design, std::move(all), options);
}

CircuitGraph buildInducedHeteroGraph(const FlatDesign& design,
                                     const std::vector<FlatDeviceId>& subset,
                                     const GraphBuildOptions& options) {
  const trace::TraceSpan span("graph.build_induced");
  for (const FlatDeviceId id : subset) {
    ANCSTR_ASSERT(id < design.devices().size());
  }
  return buildOverSubset(design, subset, options);
}

}  // namespace ancstr
