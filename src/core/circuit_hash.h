// Canonical structural hashing of elaborated circuits — the key function
// of the ExtractionEngine's content-addressed caches (core/engine.h).
//
// The hash is a positional, name-free serialization of everything the
// extraction front half consumes: device types and sizing parameters
// (feature init, Table II), pin functions and net connectivity in the
// exact order the multigraph builder walks them (Algorithm 1), each net's
// full-design degree eligibility under GraphBuildOptions::maxNetDegree
// (the cap counts the WHOLE net, so a subtree's induced graph depends on
// it), and the GraphBuildOptions / FeatureConfig switches themselves.
//
// Canonical ordering makes the hash independent of device/net/instance
// NAMES, of hierarchy path strings, and of thread count; two instances of
// the same master inside one design hash identically (their positional
// serializations coincide), which is what lets repeated blocks share one
// cache entry. Equal hashes imply bitwise-equal PreparedGraph + feature
// matrices for a fixed model/config, so a cache hit reproduces the miss
// result exactly.
#pragma once

#include <span>

#include "core/detector.h"
#include "core/features.h"
#include "core/graph_builder.h"
#include "netlist/flatten.h"
#include "util/structural_hash.h"

namespace ancstr {

/// Hash of the induced extraction inputs over `subset` (typically one
/// hierarchy node's subtree in preorder, or the whole design). The subset
/// order is part of the serialization — it defines vertex numbering.
util::StructuralHash structuralHash(const FlatDesign& design,
                                    std::span<const FlatDeviceId> subset,
                                    const GraphBuildOptions& graph,
                                    const FeatureConfig& features);

/// Hash of the full design (all devices in FlatDeviceId order).
util::StructuralHash structuralHash(const FlatDesign& design,
                                    const GraphBuildOptions& graph,
                                    const FeatureConfig& features);

/// 64-bit signature of every DetectorConfig field that shapes detection
/// output — thresholds, embedding options, similarity switches, and the
/// constraint-type (mirror) configuration. The engine mixes it into its
/// cache keys (withConfigSalt) so cached results never leak across
/// detector configurations: structuralHash covers only what the
/// inference front half consumes, not how its outputs are scored.
std::uint64_t detectorConfigSignature(const DetectorConfig& config);

/// Mixes a config signature into a structural hash, producing the salted
/// cache key. Deterministic; distinct salts give distinct keys.
util::StructuralHash withConfigSalt(const util::StructuralHash& hash,
                                    std::uint64_t salt);

}  // namespace ancstr
