#include "graph/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace ancstr {
namespace {

TEST(Hungarian, TrivialSizes) {
  EXPECT_DOUBLE_EQ(solveAssignment(nn::Matrix(0, 0)).cost, 0.0);
  nn::Matrix one(1, 1, std::vector<double>{3.5});
  const AssignmentResult r = solveAssignment(one);
  EXPECT_DOUBLE_EQ(r.cost, 3.5);
  EXPECT_EQ(r.assignment[0], 0u);
}

TEST(Hungarian, KnownOptimum) {
  // Classic 3x3: optimal = 5 (0->1, 1->0, 2->2).
  nn::Matrix cost(3, 3, std::vector<double>{
                            4, 1, 3,
                            2, 0, 5,
                            3, 2, 2});
  const AssignmentResult r = solveAssignment(cost);
  EXPECT_DOUBLE_EQ(r.cost, 5.0);
}

TEST(Hungarian, IdentityIsOptimalOnDiagonalZeros) {
  nn::Matrix cost(4, 4, 7.0);
  for (std::size_t i = 0; i < 4; ++i) cost(i, i) = 0.0;
  const AssignmentResult r = solveAssignment(cost);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(r.assignment[i], i);
}

TEST(Hungarian, AssignmentIsAPermutation) {
  Rng rng(5);
  const std::size_t n = 12;
  nn::Matrix cost(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) cost(i, j) = rng.uniform(0, 10);
  }
  const AssignmentResult r = solveAssignment(cost);
  std::vector<std::size_t> sorted = r.assignment;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Hungarian, MatchesBruteForceOnSmallRandomInstances) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.index(4);  // 2..5
    nn::Matrix cost(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) cost(i, j) = rng.uniform(0, 5);
    }
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    double best = 1e18;
    do {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) total += cost(i, perm[i]);
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(solveAssignment(cost).cost, best, 1e-9) << "trial " << trial;
  }
}

TEST(Hungarian, NonSquareThrows) {
  EXPECT_THROW(solveAssignment(nn::Matrix(2, 3)), ShapeError);
}

TEST(Hungarian, HandlesNegativeCosts) {
  nn::Matrix cost(2, 2, std::vector<double>{-5, 0, 0, -5});
  EXPECT_DOUBLE_EQ(solveAssignment(cost).cost, -10.0);
}

}  // namespace
}  // namespace ancstr
