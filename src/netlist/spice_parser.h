// SPICE netlist reader.
//
// Supported subset (enough for analog block and system netlists as shipped
// by ALIGN / MAGICAL and produced by our generators):
//   * comments:      full-line '*', trailing ';' or '$ '
//   * continuations: leading '+'
//   * directives:    .subckt/.ends, .param, .global, .model, .include, .end
//   * cards:         M (mos), R, C, L (passives), D (diode), Q (bjt),
//                    X (subckt instance)
//   * parameters:    key=value with SPICE numbers or '{expr}' / "'expr'"
//                    expressions over .param symbols
// Device types are inferred from model names via deviceTypeFromModelName.
// Instance parameter overrides on X cards are parsed and ignored (logged).
//
// Two error policies (docs/robustness.md):
//   * strict   — parseSpice / parseSpiceFile throw ParseError at the first
//                problem (classic behaviour).
//   * fail-soft — parseSpiceRecovering / parseSpiceFileRecovering emit a
//                diagnostic per problem, resynchronize to the next card,
//                and return the valid remainder plus its diagnostics.
// `.include` chains are bounded in both policies: a visited-file cycle or
// a nesting depth beyond kMaxIncludeDepth is a parse.include_cycle /
// parse.include_depth error instead of unbounded recursion.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "netlist/netlist.h"
#include "util/diagnostics.h"

namespace ancstr {

/// Maximum `.include`/`.inc`/`.lib` nesting depth (root file included).
inline constexpr std::size_t kMaxIncludeDepth = 16;

/// Options controlling parsing behaviour.
struct SpiceParseOptions {
  /// Name used for devices declared outside any .subckt.
  std::string topName = "top";
  /// When true, unknown directive lines throw instead of warn.
  bool strictDirectives = false;
};

/// Parses SPICE text. `fileName` is used in diagnostics only.
/// Throws ParseError (syntax) or NetlistError (structural).
Library parseSpice(std::string_view text, std::string_view fileName = "<mem>",
                   const SpiceParseOptions& options = {});

/// Reads and parses a SPICE file from disk. `.include` paths resolve
/// relative to the including file's directory.
Library parseSpiceFile(const std::filesystem::path& path,
                       const SpiceParseOptions& options = {});

/// Fail-soft variant of parseSpice: never throws on malformed input;
/// returns the parseable remainder plus one diagnostic per skipped
/// construct (file/line-stamped, coded — see diag::codes).
diag::Parsed<Library> parseSpiceRecovering(
    std::string_view text, std::string_view fileName = "<mem>",
    const SpiceParseOptions& options = {});

/// Fail-soft variant of parseSpiceFile.
diag::Parsed<Library> parseSpiceFileRecovering(
    const std::filesystem::path& path, const SpiceParseOptions& options = {});

}  // namespace ancstr
