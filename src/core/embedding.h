// Circuit feature embedding (paper Section IV-D, Algorithm 2).
//
// A subcircuit is represented by the concatenated trained embeddings of its
// top-M PageRank vertices, computed on the subcircuit's simplified
// (type-less, parallel-free) directed graph. Nonidentical subcircuits of
// different sizes therefore stay comparable: similarity is dominated by
// their most structurally central devices.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/features.h"
#include "core/graph_builder.h"
#include "core/model.h"
#include "nn/matrix.h"
#include "util/parallel.h"
#include "util/structural_hash.h"

namespace ancstr {

struct EmbeddingConfig {
  std::size_t topM = 10;   ///< paper: M = 10, clamped to |V_t|
  double damping = 0.85;   ///< PageRank gamma
};

/// The top-min(M, |V_t|) most representative devices of a subcircuit in
/// descending PageRank order (Algorithm 2 lines 1-8).
std::vector<FlatDeviceId> representativeDevices(
    const CircuitGraph& inducedGraph, const EmbeddingConfig& config = {});

/// Concatenates `rows` (row index == FlatDeviceId) over an ordered device
/// list (Algorithm 2 lines 9-10). Used for both the trained embeddings and
/// the raw feature vectors.
std::vector<double> gatherEmbedding(const std::vector<FlatDeviceId>& devices,
                                    const nn::Matrix& rows);

/// Embeds one subcircuit. `inducedGraph` is the multigraph over the
/// subcircuit's devices; `designEmbeddings` holds the trained vertex
/// features with row index == FlatDeviceId. Returns the concatenation of
/// the top-M vertices' embedding rows in descending PageRank order
/// (min(M, |V_t|) * D values; empty for an empty subcircuit).
std::vector<double> embedCircuit(const CircuitGraph& inducedGraph,
                                 const nn::Matrix& designEmbeddings,
                                 const EmbeddingConfig& config = {});

/// Cosine similarity between two embeddings of possibly different length;
/// the shorter one is zero-padded (a size mismatch lowers similarity, which
/// matches the intuition that very differently-sized subcircuits rarely
/// form symmetry pairs). Returns 0 when either vector is all-zero.
double embeddingCosine(const std::vector<double>& a,
                       const std::vector<double>& b);

/// One memoized Algorithm-2 result, stored positionally so a single cache
/// entry serves every instance of the same block: `representativePositions`
/// index into the instance's preorder subtree device list (== induced-graph
/// vertex ids), and `structural` is the concatenated local-GNN embedding of
/// those positions. Valid for any subtree with an equal structuralHash
/// (core/circuit_hash.h): hash equality implies a positionally identical
/// induced multigraph and feature matrix, hence bitwise-identical PageRank
/// ranking and embedding rows.
struct CachedBlockEmbedding {
  std::size_t subtreeSize = 0;  ///< |subtree| when computed (sanity check)
  std::vector<std::uint32_t> representativePositions;
  std::vector<double> structural;

  /// Byte charge against an ExtractionEngine cache budget.
  std::size_t approxBytes() const {
    return sizeof(CachedBlockEmbedding) +
           representativePositions.size() * sizeof(std::uint32_t) +
           structural.size() * sizeof(double);
  }
};

/// Memoization hook for per-subcircuit local embeddings. Implementations
/// must be thread-safe: embedSubcircuits consults the cache from every
/// pool worker. Caching never changes results — a hit reproduces the miss
/// computation bitwise (see CachedBlockEmbedding) — so implementations are
/// free to drop entries at any time (lookup may return null for a key that
/// was stored earlier). The LRU-backed implementation lives in
/// core/engine.cpp.
class BlockEmbeddingCache {
 public:
  virtual ~BlockEmbeddingCache() = default;

  /// Returns the entry for `key`, or null on miss. The shared_ptr pins the
  /// entry against eviction while the caller holds it.
  virtual std::shared_ptr<const CachedBlockEmbedding> lookup(
      const util::StructuralHash& key) = 0;

  /// Stores a freshly computed entry. Concurrent stores of one key carry
  /// identical content (content-addressing), so last-write-wins is fine.
  virtual void store(const util::StructuralHash& key,
                     std::shared_ptr<const CachedBlockEmbedding> entry) = 0;
};

/// Model + feature configuration used to compute per-subcircuit (local)
/// block embeddings: Algorithm 2's "EmbedCircuitFeature(t, G_t, Z)" run
/// with GNN inference on the subcircuit's own multigraph.
struct BlockEmbeddingContext {
  const GnnModel& model;
  FeatureConfig features;
  /// Optional cross-call memoization of the per-subcircuit GNN inference,
  /// content-addressed by the subtree's structuralHash. Only consulted in
  /// local mode — gather-mode embeddings depend on the surrounding design
  /// and are never cached.
  BlockEmbeddingCache* cache = nullptr;
  /// Optional precomputed subtree hashes, indexed by HierNodeId of the
  /// design passed to embedSubcircuits. When set, cache keys are read
  /// from this vector instead of re-hashing each subtree; entries must
  /// equal the structuralHash of the node's subtree under the run's
  /// options (see core/detector.h DetectionCaches::nodeHashes).
  const std::vector<util::StructuralHash>* nodeHashes = nullptr;
};

/// Algorithm-2 output for one subcircuit: its representative devices in
/// descending PageRank order and their concatenated structural embedding.
struct SubcircuitEmbedding {
  std::vector<FlatDeviceId> devices;
  std::vector<double> structural;
  /// Subtree structuralHash (core/circuit_hash.h), filled in local mode
  /// when a cache is consulted or hashes were requested. In local mode the
  /// hash fully determines `structural` and the sizing parameters of
  /// `devices`, which is what makes pair-score caching sound
  /// (core/detector.h PairScoreCache).
  util::StructuralHash hash;
  bool hashValid = false;
};

/// Embeds many subcircuits at once, one per hierarchy node in `nodes`:
/// induced multigraph, PageRank top-M, and either local GNN inference
/// (when `localContext` is non-null) or a gather from `designEmbeddings`.
/// Each subcircuit is independent, so the nodes are spread across `pool`;
/// results are written to per-node slots and are bitwise identical for
/// every pool size. out[i] corresponds to nodes[i].
///
/// `computeHashes` forces each local-mode result's SubcircuitEmbedding
/// hash to be filled even without a block cache (pair-score caching needs
/// the hashes; see core/detector.h). Ignored in gather mode, where
/// embeddings depend on the surrounding design and no hash is sound.
std::vector<SubcircuitEmbedding> embedSubcircuits(
    const FlatDesign& design, const std::vector<HierNodeId>& nodes,
    const nn::Matrix& designEmbeddings, const EmbeddingConfig& config,
    const GraphBuildOptions& graphOptions,
    const BlockEmbeddingContext* localContext, util::ThreadPool& pool,
    bool computeHashes = false);

}  // namespace ancstr
