#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace ancstr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 45);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanRoughlyHalf) {
  Rng rng(9);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, IndexInRange) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.index(5)];
  for (const int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0, sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaledAndShifted) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace ancstr
