* malformed corpus: second half of the a <-> b include cycle
.include "cyclic_a.sp"
c1 a b 1p
