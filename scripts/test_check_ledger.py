#!/usr/bin/env python3
"""Self-test for check_ledger.py (registered as ctest `check_ledger_gate`).

Builds synthetic ledger files in a temp directory and checks the exit codes
the CI ledger gate relies on: 0 for schema-valid files (including the
--expect / --expect-cache-outcome modes), 1 for any violation — wrong key
order, bad enums, malformed hashes, count mismatches, or unmet
expectations.
"""
import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_ledger.py")

KEY_ORDER = [
    "schemaVersion", "requestId", "correlationId", "designHash", "devices",
    "nets", "hierarchyNodes", "cacheOutcome", "blockCacheHits",
    "blockCacheMisses", "outcome", "kernel", "constraintsTotal",
    "constraints", "diagnostics", "phases", "wallSeconds",
    "peakRssDeltaBytes", "unixTimeSeconds",
]


def make_record(**overrides):
    record = {
        "schemaVersion": 2,
        "requestId": 1,
        "correlationId": "",
        "designHash": "0123456789abcdef0123456789abcdef",
        "devices": 12,
        "nets": 9,
        "hierarchyNodes": 3,
        "cacheOutcome": "cold",
        "blockCacheHits": 2,
        "blockCacheMisses": 1,
        "outcome": "ok",
        "kernel": "scalar",
        "constraintsTotal": 3,
        "constraints": {"symmetry_pair": 2, "self_symmetric": 1,
                        "current_mirror": 0, "symmetry_group": 0},
        "diagnostics": {},
        "phases": {"extract.inference": 0.01, "extract.detection": 0.02},
        "wallSeconds": 0.04,
        "peakRssDeltaBytes": 4096,
        "unixTimeSeconds": 1754000000.5,
    }
    record.update(overrides)
    return record


def dump(record, key_order=KEY_ORDER):
    return json.dumps({k: record[k] for k in key_order if k in record},
                      separators=(",", ":"))


def run(lines, *args):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "ledger.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        proc = subprocess.run([sys.executable, SCRIPT, path, *args],
                              capture_output=True, text=True)
        return proc.returncode


def check(label, got, want):
    status = "ok" if got == want else "FAIL"
    print(f"{status}: {label}: exit {got}, want {want}")
    return got == want


def main():
    good = dump(make_record())
    second = dump(make_record(requestId=2, cacheOutcome="mem_hit"))
    ok = True

    ok &= check("valid two-record ledger", run([good, second]), 0)
    ok &= check("--expect matches", run([good, second], "--expect", "2"), 0)
    ok &= check("--expect mismatch", run([good], "--expect", "2"), 1)
    ok &= check("--expect-cache-outcome matches",
                run([dump(make_record(cacheOutcome="disk_hit"))],
                    "--expect-cache-outcome", "disk_hit"), 0)
    ok &= check("--expect-cache-outcome mismatch",
                run([good], "--expect-cache-outcome", "disk_hit"), 1)
    ok &= check("invalid JSON line", run([good, "{not json"]), 1)
    ok &= check("key order violated",
                run([dump(make_record(),
                          key_order=list(reversed(KEY_ORDER)))]), 1)
    ok &= check("missing key",
                run([dump(make_record(), key_order=KEY_ORDER[:-1])]), 1)
    ok &= check("bad schemaVersion",
                run([dump(make_record(schemaVersion=1))]), 1)
    ok &= check("requestId zero", run([dump(make_record(requestId=0))]), 1)
    ok &= check("bad kernel", run([dump(make_record(kernel="sse2"))]), 1)
    ok &= check("avx512 kernel ok",
                run([dump(make_record(kernel="avx512"))]), 0)
    ok &= check("bad cacheOutcome",
                run([dump(make_record(cacheOutcome="warm"))]), 1)
    ok &= check("bad outcome", run([dump(make_record(outcome="fine"))]), 1)
    ok &= check("short designHash",
                run([dump(make_record(designHash="abc123"))]), 1)
    ok &= check("uppercase designHash",
                run([dump(make_record(
                    designHash="0123456789ABCDEF0123456789ABCDEF"))]), 1)
    ok &= check("ok outcome with empty hash",
                run([dump(make_record(designHash=""))]), 1)
    ok &= check("rejected record may omit hash",
                run([dump(make_record(designHash="", cacheOutcome="none",
                                      outcome="admission_rejected",
                                      constraintsTotal=0,
                                      constraints={}))]), 0)
    ok &= check("constraintsTotal mismatch",
                run([dump(make_record(constraintsTotal=7))]), 1)
    ok &= check("negative phase timing",
                run([dump(make_record(
                    phases={"extract.inference": -0.1}))]), 1)
    ok &= check("negative wallSeconds",
                run([dump(make_record(wallSeconds=-1.0))]), 1)

    if not ok:
        print("FAIL: check_ledger.py contract violated", file=sys.stderr)
        return 1
    print("OK: all check_ledger.py contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
