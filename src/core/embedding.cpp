#include "core/embedding.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "core/circuit_hash.h"
#include "core/features.h"
#include "graph/digraph.h"
#include "graph/pagerank.h"
#include "util/error.h"
#include "util/trace.h"

namespace ancstr {

std::vector<FlatDeviceId> representativeDevices(
    const CircuitGraph& inducedGraph, const EmbeddingConfig& config) {
  if (inducedGraph.numVertices() == 0) return {};
  const SimpleDigraph simplified = inducedGraph.graph.simplified();
  PageRankOptions prOptions;
  prOptions.damping = config.damping;
  const std::vector<double> scores = pageRank(simplified, prOptions);
  const std::vector<std::uint32_t> top = topKByScore(scores, config.topM);
  std::vector<FlatDeviceId> devices;
  devices.reserve(top.size());
  for (const std::uint32_t v : top) {
    devices.push_back(inducedGraph.vertexToDevice.at(v));
  }
  return devices;
}

std::vector<double> gatherEmbedding(const std::vector<FlatDeviceId>& devices,
                                    const nn::Matrix& rows) {
  const std::size_t d = rows.cols();
  std::vector<double> embedding;
  embedding.reserve(devices.size() * d);
  for (const FlatDeviceId dev : devices) {
    ANCSTR_ASSERT(dev < rows.rows());
    const double* row = rows.row(dev);
    embedding.insert(embedding.end(), row, row + d);
  }
  return embedding;
}

std::vector<double> embedCircuit(const CircuitGraph& inducedGraph,
                                 const nn::Matrix& designEmbeddings,
                                 const EmbeddingConfig& config) {
  return gatherEmbedding(representativeDevices(inducedGraph, config),
                         designEmbeddings);
}

namespace {

/// One distinct local-mode embedding computation: the representative node
/// plus every node whose subtree has the same (hash, size) — those share
/// a positionally identical induced multigraph and feature matrix, so one
/// GNN inference serves them all (the same soundness argument as
/// CachedBlockEmbedding, applied within the run).
struct BlockWorkGroup {
  std::size_t rep = 0;               ///< index into `nodes`
  std::vector<std::size_t> members;  ///< node indexes incl. rep, ascending
};

}  // namespace

std::vector<SubcircuitEmbedding> embedSubcircuits(
    const FlatDesign& design, const std::vector<HierNodeId>& nodes,
    const nn::Matrix& designEmbeddings, const EmbeddingConfig& config,
    const GraphBuildOptions& graphOptions,
    const BlockEmbeddingContext* localContext, util::ThreadPool& pool,
    bool computeHashes) {
  std::vector<SubcircuitEmbedding> out(nodes.size());

  if (localContext == nullptr) {
    // Gather mode: embeddings are rows of the design-level matrix, no GNN
    // inference to batch.
    pool.forEach(nodes.size(), [&](std::size_t i) {
      const trace::TraceSpan span("embed.subcircuit");
      const std::vector<FlatDeviceId> subtree =
          design.subtreeDevices(nodes[i]);
      const CircuitGraph induced =
          buildInducedHeteroGraph(design, subtree, graphOptions);
      out[i].devices = representativeDevices(induced, config);
      out[i].structural = gatherEmbedding(out[i].devices, designEmbeddings);
    });
    return out;
  }

  BlockEmbeddingCache* cache = localContext->cache;
  const bool wantHash = cache != nullptr || computeHashes;

  // Phase 1 (parallel): subtree, content hash, and cache consult per node.
  // Local-mode embeddings depend only on the subtree's structure, so a
  // content-addressed hit skips induced-graph construction, PageRank, and
  // GNN inference entirely. Cached entries are positional (vertex id ==
  // index into the subtree, because buildInducedHeteroGraph numbers
  // vertices in subset order), so one entry serves every instance of the
  // same block.
  std::vector<std::vector<FlatDeviceId>> subtrees(nodes.size());
  std::vector<char> isMiss(nodes.size(), 0);
  pool.forEach(nodes.size(), [&](std::size_t i) {
    // Per-subcircuit span: runs on whichever worker owns the chunk, so
    // traces show the block-embedding fan-out per thread id.
    const trace::TraceSpan span("embed.subcircuit");
    subtrees[i] = design.subtreeDevices(nodes[i]);
    SubcircuitEmbedding& embedding = out[i];
    util::StructuralHash key;
    if (wantHash) {
      // A caller-supplied hash vector (the engine's delta path) carries
      // the identical value structuralHash would compute, just already
      // paid for during diffing.
      const std::vector<util::StructuralHash>* nodeHashes =
          localContext->nodeHashes;
      if (nodeHashes != nullptr) {
        ANCSTR_ASSERT(nodes[i] < nodeHashes->size());
        key = (*nodeHashes)[nodes[i]];
      } else {
        key = structuralHash(design, subtrees[i], graphOptions,
                             localContext->features);
      }
      embedding.hash = key;
      embedding.hashValid = true;
    }
    if (cache != nullptr) {
      if (const auto hit = cache->lookup(key);
          hit != nullptr && hit->subtreeSize == subtrees[i].size()) {
        embedding.devices.reserve(hit->representativePositions.size());
        for (const std::uint32_t pos : hit->representativePositions) {
          embedding.devices.push_back(subtrees[i][pos]);
        }
        embedding.structural = hit->structural;
        return;
      }
    }
    isMiss[i] = 1;
  });

  // Phase 2 (serial): deterministic within-run dedupe of the misses. Nodes
  // with an equal (hash, subtree size) join the first such node's group in
  // ascending index order — stronger than the old schedule-dependent
  // "later instance may hit the cache the first one stored".
  std::vector<BlockWorkGroup> groups;
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::size_t>, std::size_t>
      groupIndex;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (isMiss[i] == 0) continue;
    if (out[i].hashValid) {
      const auto key = std::make_tuple(out[i].hash.hi, out[i].hash.lo,
                                       subtrees[i].size());
      const auto [it, inserted] = groupIndex.emplace(key, groups.size());
      if (!inserted) {
        groups[it->second].members.push_back(i);
        continue;
      }
    }
    groups.push_back(BlockWorkGroup{i, {i}});
  }

  // Phase 3 (parallel): induced multigraph, PageRank representatives, and
  // the prepared graph for each group's representative.
  std::vector<CircuitGraph> induceds(groups.size());
  std::vector<PreparedGraph> prepareds(groups.size());
  std::vector<std::vector<FlatDeviceId>> repDevices(groups.size());
  pool.forEach(groups.size(), [&](std::size_t gi) {
    const trace::TraceSpan span("embed.subcircuit");
    const std::size_t rep = groups[gi].rep;
    induceds[gi] = buildInducedHeteroGraph(design, subtrees[rep],
                                           graphOptions);
    repDevices[gi] = representativeDevices(induceds[gi], config);
    // Algorithm 2 on G_t: propagate the trained model over the
    // subcircuit's own multigraph, so the embedding depends only on the
    // subcircuit's content.
    prepareds[gi] = prepareGraph(
        induceds[gi],
        buildFeatureMatrix(design, subtrees[rep], localContext->features));
  });

  // Phase 4 (parallel over chunks): batched GNN inference. Stacking is
  // bitwise-neutral per row (see GnnModel::embedBatch), so the chunk size
  // only shapes throughput, never results.
  constexpr std::size_t kBatchChunk = 32;
  const std::size_t numChunks = (groups.size() + kBatchChunk - 1) / kBatchChunk;
  std::vector<nn::Matrix> localZ(groups.size());
  pool.forEach(numChunks, [&](std::size_t chunk) {
    const trace::TraceSpan span("embed.block_batch");
    const std::size_t begin = chunk * kBatchChunk;
    const std::size_t end = std::min(begin + kBatchChunk, groups.size());
    std::vector<const PreparedGraph*> batch;
    batch.reserve(end - begin);
    for (std::size_t gi = begin; gi < end; ++gi) {
      batch.push_back(&prepareds[gi]);
    }
    std::vector<nn::Matrix> embedded = localContext->model.embedBatch(batch);
    for (std::size_t gi = begin; gi < end; ++gi) {
      localZ[gi] = std::move(embedded[gi - begin]);
    }
  });

  // Phase 5 (parallel): slice the representative rows, fill every member,
  // and publish one cache entry per group.
  pool.forEach(groups.size(), [&](std::size_t gi) {
    const BlockWorkGroup& group = groups[gi];
    const nn::Matrix& z = localZ[gi];
    // Map top-M flat ids back to induced-graph rows (== subtree
    // positions).
    std::vector<std::uint32_t> positions;
    positions.reserve(repDevices[gi].size());
    for (const FlatDeviceId dev : repDevices[gi]) {
      positions.push_back(induceds[gi].deviceToVertex.at(dev));
    }
    std::vector<double> structural;
    structural.reserve(positions.size() * z.cols());
    for (const std::uint32_t pos : positions) {
      const double* data = z.row(pos);
      structural.insert(structural.end(), data, data + z.cols());
    }
    for (const std::size_t member : group.members) {
      SubcircuitEmbedding& embedding = out[member];
      embedding.devices.reserve(positions.size());
      for (const std::uint32_t pos : positions) {
        embedding.devices.push_back(subtrees[member][pos]);
      }
      embedding.structural = structural;
    }
    if (cache != nullptr && out[group.rep].hashValid) {
      auto entry = std::make_shared<CachedBlockEmbedding>();
      entry->subtreeSize = subtrees[group.rep].size();
      entry->representativePositions = std::move(positions);
      entry->structural = std::move(structural);
      cache->store(out[group.rep].hash, std::move(entry));
    }
  });
  return out;
}

double embeddingCosine(const std::vector<double>& a,
                       const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < n; ++i) dot += a[i] * b[i];
  for (const double x : a) na += x * x;
  for (const double x : b) nb += x * x;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace ancstr
