#include "core/engine.h"

#include "core/circuit_hash.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ancstr {

namespace {

// The shared budget is split evenly while both caches are enabled; a
// disabled cache's half goes to the other one. Budget 0 disables a
// LruByteCache outright, and the lookup paths below additionally skip
// hashing for disabled caches.
std::size_t designBudget(const EngineConfig& c) {
  if (!c.cacheDesignInference) return 0;
  return c.cacheBlockEmbeddings ? c.cacheBudgetBytes - c.cacheBudgetBytes / 2
                                : c.cacheBudgetBytes;
}

std::size_t blockBudget(const EngineConfig& c) {
  if (!c.cacheBlockEmbeddings) return 0;
  return c.cacheDesignInference ? c.cacheBudgetBytes / 2 : c.cacheBudgetBytes;
}

}  // namespace

/// BlockEmbeddingCache over the engine's LRU (consulted concurrently from
/// every pool worker; the LRU's own mutex is the only synchronization).
class ExtractionEngine::BlockCacheAdapter final : public BlockEmbeddingCache {
 public:
  explicit BlockCacheAdapter(
      util::LruByteCache<util::StructuralHash, CachedBlockEmbedding>& cache)
      : cache_(cache) {}

  std::shared_ptr<const CachedBlockEmbedding> lookup(
      const util::StructuralHash& key) override {
    return cache_.get(key);
  }

  void store(const util::StructuralHash& key,
             std::shared_ptr<const CachedBlockEmbedding> entry) override {
    const std::size_t bytes = entry->approxBytes();
    cache_.put(key, std::move(entry), bytes);
  }

 private:
  util::LruByteCache<util::StructuralHash, CachedBlockEmbedding>& cache_;
};

ExtractionEngine::ExtractionEngine(const Pipeline& pipeline,
                                   EngineConfig config)
    : pipeline_(pipeline),
      config_(config),
      designCache_(designBudget(config)),
      blockCache_(blockBudget(config)),
      blockAdapter_(std::make_unique<BlockCacheAdapter>(blockCache_)) {}

ExtractionEngine::~ExtractionEngine() = default;

ExtractionResult ExtractionEngine::extractOne(
    const Library& lib, diag::DiagnosticSink* sink) const {
  const trace::TraceSpan extractSpan("engine.extract");
  const bool failSoft = sink != nullptr && !sink->strict();
  const std::size_t diagStart = failSoft ? sink->size() : 0;
  static metrics::Counter& degradedCounter =
      metrics::Registry::instance().counter("pipeline.extract_degraded");

  ExtractionResult result;
  try {
    const FlatDesign design = failSoft ? FlatDesign::elaborate(lib, *sink)
                                       : FlatDesign::elaborate(lib);

    std::shared_ptr<const InferenceArtifacts> artifacts;
    if (config_.cacheDesignInference && config_.cacheBudgetBytes > 0) {
      util::StructuralHash key;
      {
        const trace::TraceSpan hashSpan("engine.hash");
        key = structuralHash(design, pipeline_.config().graph,
                             pipeline_.config().features);
        result.report.addPhase("engine.hash", hashSpan.seconds());
      }
      artifacts = designCache_.get(key);
      if (artifacts == nullptr) {
        auto computed = std::make_shared<InferenceArtifacts>(
            pipeline_.runInference(lib, design, result.report));
        designCache_.put(key, computed, computed->approxBytes());
        artifacts = std::move(computed);
      }
    } else {
      artifacts = std::make_shared<InferenceArtifacts>(
          pipeline_.runInference(lib, design, result.report));
    }

    BlockEmbeddingCache* blockCache =
        config_.cacheBlockEmbeddings && config_.cacheBudgetBytes > 0
            ? blockAdapter_.get()
            : nullptr;
    pipeline_.runDetection(lib, design, *artifacts, blockCache, result);
    // Copy (not move): the artifact may live on in the cache. A hit thus
    // yields the exact bytes the original miss computed.
    result.embeddings = artifacts->embeddings;
  } catch (const Error& e) {
    if (!failSoft) throw;
    // Same degradation contract as Pipeline::extract: empty result, keep
    // completed phase timings, record [pipeline.extract_degraded].
    degradedCounter.add();
    sink->error(diag::codes::kExtractDegraded, "", 0,
                std::string("extraction degraded to empty result: ") +
                    e.what());
  }
  if (failSoft) {
    result.report.addDiagnostics(sink->snapshotFrom(diagStart));
  }
  return result;
}

ExtractionResult ExtractionEngine::extract(const Library& lib,
                                           ExtractOptions options) const {
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  ExtractionResult result = extractOne(lib, options.sink);
  publishCacheMetrics();
  result.report.metrics =
      metrics::Registry::instance().snapshot().since(before);
  return result;
}

std::vector<ExtractionResult> ExtractionEngine::extractBatch(
    std::span<const Library* const> batch, ExtractOptions options,
    RunReport* batchReport) const {
  const trace::TraceSpan batchSpan("engine.batch");
  const metrics::Snapshot before = metrics::Registry::instance().snapshot();
  const bool failSoft = options.sink != nullptr && !options.sink->strict();

  // Each design gets a private collect sink: snapshotFrom index ranges on
  // a sink shared across concurrent designs would interleave, so
  // diagnostics are collected locally and merged in batch order below.
  std::vector<std::unique_ptr<diag::DiagnosticSink>> localSinks;
  if (failSoft) {
    localSinks.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      localSinks.push_back(std::make_unique<diag::DiagnosticSink>(
          diag::DiagnosticSink::Mode::kCollect));
    }
  }

  std::vector<ExtractionResult> results(batch.size());
  util::ThreadPool pool(util::resolveThreadCount(config_.threads));
  pool.forEach(batch.size(), [&](std::size_t i) {
    ANCSTR_ASSERT(batch[i] != nullptr);
    results[i] =
        extractOne(*batch[i], failSoft ? localSinks[i].get() : options.sink);
  });

  if (failSoft) {
    for (const auto& local : localSinks) {
      for (diag::Diagnostic& d : local->take()) {
        options.sink->report(std::move(d));
      }
    }
  }

  publishCacheMetrics();
  if (batchReport != nullptr) {
    batchReport->addPhase("engine.batch", batchSpan.seconds());
    batchReport->metrics =
        metrics::Registry::instance().snapshot().since(before);
  }
  return results;
}

EngineCacheStats ExtractionEngine::cacheStats() const {
  return EngineCacheStats{designCache_.stats(), blockCache_.stats()};
}

void ExtractionEngine::clearCaches() {
  designCache_.clear();
  blockCache_.clear();
}

void ExtractionEngine::publishCacheMetrics() const {
  auto& registry = metrics::Registry::instance();
  static metrics::Counter& designHit = registry.counter("engine.cache.hit");
  static metrics::Counter& designMiss = registry.counter("engine.cache.miss");
  static metrics::Counter& designEvict =
      registry.counter("engine.cache.evict");
  static metrics::Gauge& designBytes = registry.gauge("engine.cache.bytes");
  static metrics::Counter& blockHit =
      registry.counter("engine.block_cache.hit");
  static metrics::Counter& blockMiss =
      registry.counter("engine.block_cache.miss");
  static metrics::Counter& blockEvict =
      registry.counter("engine.block_cache.evict");
  static metrics::Gauge& blockBytes =
      registry.gauge("engine.block_cache.bytes");

  // LruCacheStats hit/miss/eviction counts are cumulative and monotonic;
  // publishing the delta since the last publish keeps the process-wide
  // counters correct across any number of engines and calls.
  const std::lock_guard<std::mutex> lock(publishMutex_);
  const EngineCacheStats now = cacheStats();
  designHit.add(now.design.hits - published_.design.hits);
  designMiss.add(now.design.misses - published_.design.misses);
  designEvict.add(now.design.evictions - published_.design.evictions);
  designBytes.set(static_cast<double>(now.design.bytes));
  blockHit.add(now.blocks.hits - published_.blocks.hits);
  blockMiss.add(now.blocks.misses - published_.blocks.misses);
  blockEvict.add(now.blocks.evictions - published_.blocks.evictions);
  blockBytes.set(static_cast<double>(now.blocks.bytes));
  published_ = now;
}

}  // namespace ancstr
