#include "nn/gru.h"

#include <gtest/gtest.h>

#include "nn/init.h"
#include "util/rng.h"

namespace ancstr::nn {
namespace {

TEST(GruCell, OutputShapeAndRange) {
  Rng rng(1);
  GruCell cell(4, 6, rng);
  Tensor x = Tensor::constant(uniform(3, 4, -2, 2, rng));
  Tensor h = Tensor::constant(uniform(3, 6, -1, 1, rng));
  const Tensor out = cell.forward(x, h);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 6u);
}

TEST(GruCell, HasNineParameters) {
  Rng rng(2);
  GruCell cell(3, 3, rng);
  EXPECT_EQ(cell.parameters().size(), 9u);
}

TEST(GruCell, InterpolatesBetweenStateAndCandidate) {
  // h' = (1-z) h + z c with z, c in (0,1)/(-1,1): the update keeps h'
  // bounded by max(|h|, 1).
  Rng rng(3);
  GruCell cell(3, 3, rng);
  Tensor x = Tensor::constant(uniform(5, 3, -3, 3, rng));
  Tensor h = Tensor::constant(uniform(5, 3, -0.5, 0.5, rng));
  // Keep the output Tensor alive: value() returns a reference into the
  // node it owns.
  const Tensor outT = cell.forward(x, h);
  const Matrix& out = outT.value();
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      EXPECT_LE(std::abs(out(i, j)), 1.0 + 1e-9);
    }
  }
}

TEST(GruCell, GradientsFlowToAllParameters) {
  Rng rng(4);
  GruCell cell(3, 3, rng);
  Tensor x = Tensor::constant(uniform(2, 3, -1, 1, rng));
  Tensor h = Tensor::constant(uniform(2, 3, -1, 1, rng));
  Tensor loss = sumAll(cell.forward(x, h));
  loss.backward();
  for (const Tensor& p : cell.parameters()) {
    ASSERT_FALSE(p.grad().empty());
    EXPECT_GT(p.grad().maxAbs(), 0.0);
  }
}

TEST(GruCell, GradientCheckAgainstFiniteDifferences) {
  Rng rng(5);
  GruCell cell(2, 2, rng);
  Tensor x = Tensor::constant(uniform(2, 2, -1, 1, rng));
  Tensor h = Tensor::constant(uniform(2, 2, -1, 1, rng));
  auto f = [&] { return sumAll(cell.forward(x, h)); };

  const auto params = cell.parameters();
  for (const Tensor& p : params) const_cast<Tensor&>(p).zeroGrad();
  Tensor loss = f();
  loss.backward();

  const double eps = 1e-6;
  for (std::size_t k = 0; k < params.size(); ++k) {
    Tensor& p = const_cast<Tensor&>(params[k]);
    const Matrix base = p.value();
    for (std::size_t r = 0; r < base.rows(); ++r) {
      for (std::size_t c = 0; c < base.cols(); ++c) {
        Matrix up = base;
        up(r, c) += eps;
        p.setValue(up);
        const double lossUp = f().value()(0, 0);
        Matrix down = base;
        down(r, c) -= eps;
        p.setValue(down);
        const double lossDown = f().value()(0, 0);
        p.setValue(base);
        const double expected = (lossUp - lossDown) / (2 * eps);
        EXPECT_NEAR(params[k].grad()(r, c), expected, 1e-5)
            << "param " << k << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(GruCell, DeterministicForSeed) {
  Rng rngA(7), rngB(7);
  GruCell a(3, 3, rngA), b(3, 3, rngB);
  Rng inputRng(8);
  const Matrix x = uniform(2, 3, -1, 1, inputRng);
  const Matrix h(2, 3);
  const Matrix outA =
      a.forward(Tensor::constant(x), Tensor::constant(h)).value();
  const Matrix outB =
      b.forward(Tensor::constant(x), Tensor::constant(h)).value();
  EXPECT_EQ(outA, outB);
}

}  // namespace
}  // namespace ancstr::nn
