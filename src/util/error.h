// Error types and lightweight contract checks shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace ancstr {

/// Base class for all library errors. Catch this to handle anything the
/// library can throw; subclasses narrow the failure domain.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input netlist (syntax error, undefined subcircuit, bad card).
class ParseError : public Error {
 public:
  ParseError(std::string file, std::size_t line, const std::string& msg)
      : Error(file + ":" + std::to_string(line) + ": " + msg),
        file_(std::move(file)),
        line_(line) {}

  const std::string& file() const noexcept { return file_; }
  std::size_t line() const noexcept { return line_; }

 private:
  std::string file_;
  std::size_t line_;
};

/// Structurally invalid netlist (dangling pins, port arity mismatch, ...).
class NetlistError : public Error {
 public:
  using Error::Error;
};

/// Shape mismatch or numerically invalid operation in the nn substrate.
class ShapeError : public Error {
 public:
  using Error::Error;
};

/// Invariant violation inside the library — indicates a bug, not bad input.
class InternalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void assertFail(const char* expr, const char* file,
                                    int line) {
  throw InternalError(std::string("assertion failed: ") + expr + " at " +
                      file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace ancstr

/// Cheap invariant check, active in all build types. Throws InternalError so
/// tests can observe contract violations instead of aborting the process.
#define ANCSTR_ASSERT(expr) \
  ((expr) ? (void)0 : ::ancstr::detail::assertFail(#expr, __FILE__, __LINE__))
