// Common-centroid array-group detection.
//
// Beyond pairwise symmetry, analog layout needs *array* constraints: a
// binary-weighted capacitor DAC or a segmented current mirror must be laid
// out as one common-centroid array. The paper's introduction names these
// (regularity / common-centroid) as sibling constraint classes; this
// module derives them from the same trained embeddings:
//
//   * candidates are same-type passive or MOS leaf devices under one
//     hierarchy whose values/widths are small integer multiples of a
//     common unit (1x/2x/4x/... within tolerance);
//   * the group is accepted when the members' embeddings agree above the
//     arrayThreshold (they must implement the same structural role).
#pragma once

#include <string>
#include <vector>

#include "netlist/flatten.h"
#include "nn/matrix.h"

namespace ancstr {

struct ArrayDetectOptions {
  /// Minimum number of devices to call it an array.
  std::size_t minMembers = 3;
  /// Relative tolerance when snapping values to integer unit multiples.
  double ratioTolerance = 0.05;
  /// Largest accepted multiple of the unit (guards against unrelated
  /// devices that happen to share a divisor).
  int maxMultiple = 64;
  /// Minimum pairwise embedding cosine between members.
  double arrayThreshold = 0.90;
};

/// One detected array group.
struct ArrayGroup {
  HierNodeId hierarchy = 0;
  DeviceType type = DeviceType::kUnknown;
  double unit = 0.0;  ///< inferred unit value (farads/ohms) or width (m)
  /// (local device name, integer multiple of the unit), sorted by name.
  std::vector<std::pair<std::string, int>> members;
};

/// Detects common-centroid array groups. `designEmbeddings` rows are
/// indexed by FlatDeviceId (as in detectConstraints).
std::vector<ArrayGroup> detectArrayGroups(
    const FlatDesign& design, const nn::Matrix& designEmbeddings,
    const ArrayDetectOptions& options = {});

}  // namespace ancstr
