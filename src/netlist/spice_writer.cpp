#include "netlist/spice_writer.h"

#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>

#include "util/error.h"
#include "util/string_utils.h"

namespace ancstr {
namespace {

void emitDevice(std::ostream& os, const SubcktDef& def, const Device& dev) {
  char card = 'x';
  if (isMos(dev.type)) {
    card = 'm';
  } else if (isResistor(dev.type)) {
    card = 'r';
  } else if (isCapacitor(dev.type)) {
    card = 'c';
  } else if (dev.type == DeviceType::kInd) {
    card = 'l';
  } else if (dev.type == DeviceType::kDio) {
    card = 'd';
  } else if (isBipolar(dev.type)) {
    card = 'q';
  }
  std::string name = dev.name;
  if (name.empty() || std::tolower(static_cast<unsigned char>(name[0])) != card) {
    name = std::string(1, card) + name;
  }
  os << name;
  for (const Pin& pin : dev.pins) os << ' ' << def.net(pin.net).name;
  const std::string model =
      dev.model.empty() ? std::string(deviceTypeName(dev.type)) : dev.model;
  if (isMos(dev.type) || isBipolar(dev.type) || dev.type == DeviceType::kDio) {
    os << ' ' << model;
  }
  if (isMos(dev.type)) {
    os << " w=" << str::formatCompact(dev.params.w)
       << " l=" << str::formatCompact(dev.params.l);
    if (dev.params.nf != 1) os << " nf=" << dev.params.nf;
  } else if (isPassive(dev.type)) {
    os << ' ' << str::formatCompact(dev.params.value);
    // Always emit a model so the exact passive flavour round-trips.
    os << ' ' << model;
    if (dev.params.layers > 0) os << " layers=" << dev.params.layers;
    if (dev.params.w > 0) os << " w=" << str::formatCompact(dev.params.w);
    if (dev.params.l > 0) os << " l=" << str::formatCompact(dev.params.l);
  }
  if (dev.params.m != 1) os << " m=" << dev.params.m;
  os << '\n';
}

}  // namespace

std::string writeSpice(const Library& lib) {
  std::ostringstream os;
  os << "* ancstr-gnn generated netlist\n";

  // Emit masters before users (post-order over the hierarchy DAG).
  std::vector<bool> done(lib.subcktCount(), false);
  std::function<void(SubcktId)> emit = [&](SubcktId id) {
    if (done[id]) return;
    done[id] = true;
    const SubcktDef& def = lib.subckt(id);
    for (const Instance& inst : def.instances()) emit(inst.master);
    os << ".subckt " << def.name();
    for (const NetId port : def.ports()) os << ' ' << def.net(port).name;
    os << '\n';
    for (const Device& dev : def.devices()) emitDevice(os, def, dev);
    for (const Instance& inst : def.instances()) {
      std::string name = inst.name;
      if (name.empty() || name[0] != 'x') name = "x" + name;
      os << name;
      for (const NetId net : inst.connections) os << ' ' << def.net(net).name;
      os << ' ' << lib.subckt(inst.master).name() << '\n';
    }
    os << ".ends " << def.name() << "\n\n";
  };
  for (SubcktId id = 0; id < lib.subcktCount(); ++id) emit(id);
  os << ".end\n";
  return os.str();
}

void writeSpiceFile(const Library& lib, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path.string() + "' for writing");
  out << writeSpice(lib);
  if (!out) throw Error("failed writing '" + path.string() + "'");
}

}  // namespace ancstr
