// Reproduces Fig. 6: ROC curves on the merged five-ADC dataset for
// system-level constraint detection — S3DET vs. this work. The paper's
// shape: our curve encloses S3DET's (strictly larger AUC).
#include <cstdio>

#include "common.h"

using namespace ancstr;
using namespace ancstr::bench;

int main() {
  const auto corpus = fullCorpus();
  Pipeline pipeline = trainPipeline(corpus, paperConfig());

  std::vector<double> ourScores, s3Scores, gedScores;
  std::vector<bool> ourLabels, s3Labels, gedLabels;
  for (const auto& bench : corpus) {
    if (bench.category != "ADC") continue;
    const Evaluated us = evalOurs(pipeline, bench, ConstraintLevel::kSystem);
    ourScores.insert(ourScores.end(), us.scores.begin(), us.scores.end());
    ourLabels.insert(ourLabels.end(), us.labels.begin(), us.labels.end());
    const Evaluated s3 = evalS3Det(bench);
    s3Scores.insert(s3Scores.end(), s3.scores.begin(), s3.scores.end());
    s3Labels.insert(s3Labels.end(), s3.labels.begin(), s3.labels.end());
    const Evaluated g = evalGed(bench);
    gedScores.insert(gedScores.end(), g.scores.begin(), g.scores.end());
    gedLabels.insert(gedLabels.end(), g.labels.begin(), g.labels.end());
  }

  std::printf("\n=== Fig. 6: ROC on merged ADC dataset (system-level) ===\n");
  const RocCurve ours = computeRoc(ourScores, ourLabels);
  const RocCurve s3det = computeRoc(s3Scores, s3Labels);
  const RocCurve gedApprox = computeRoc(gedScores, gedLabels);
  printRoc("This work", ours);
  printRoc("S3DET", s3det);
  printRoc("GED-approx (ICCAD'20-style, extra baseline)", gedApprox);
  std::printf("\nShape check (paper: our AUC larger, curve encloses "
              "S3DET's): AUC %.4f vs %.4f (S3DET) vs %.4f (GED) -> %s\n",
              ours.auc, s3det.auc, gedApprox.auc,
              ours.auc > s3det.auc && ours.auc > gedApprox.auc
                  ? "ours wins"
                  : "MISMATCH");
  return 0;
}
