#include "baselines/sfa.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"

namespace ancstr::sfa {
namespace {

/// 5T OTA with a second stage: diff pair + mirror + follower chain.
Library otaDesign() {
  NetlistBuilder b;
  b.beginSubckt("ota", {"vinp", "vinn", "vout", "vb", "vdd", "vss"});
  b.nmos("m1", "n1", "vinp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "n2", "vinn", "tail", "vss", 2e-6, 0.2e-6);
  b.pmos("m3", "n1", "n1", "vdd", "vdd", 4e-6, 0.3e-6);
  b.pmos("m4", "n2", "n1", "vdd", "vdd", 4e-6, 0.3e-6);
  b.nmos("m5", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  // Cross-coupled keeper.
  b.nmos("m6", "n1", "n2", "vss", "vss", 1e-6, 0.1e-6);
  b.nmos("m7", "n2", "n1", "vss", "vss", 1e-6, 0.1e-6);
  // Signal-flow continuation: gates on n1/n2.
  b.pmos("m8", "o1", "n1", "vdd", "vdd", 6e-6, 0.2e-6);
  b.pmos("m9", "o2", "n2", "vdd", "vdd", 6e-6, 0.2e-6);
  // Passives sharing the output net.
  b.cap("c1", "o1", "vss", 1e-14);
  b.cap("c2", "o2", "vss", 1e-14);
  // Different-size bait with same type as the pair.
  b.nmos("m10", "vout", "vinp", "vss", "vss", 9e-6, 0.2e-6);
  b.endSubckt();
  return b.build("ota");
}

const ScoredCandidate* findPair(const SfaResult& result, const char* a,
                                const char* b) {
  for (const ScoredCandidate& c : result.scored) {
    if ((c.pair.nameA == a && c.pair.nameB == b) ||
        (c.pair.nameA == b && c.pair.nameB == a)) {
      return &c;
    }
  }
  return nullptr;
}

class SfaOtaTest : public ::testing::Test {
 protected:
  SfaOtaTest()
      : lib_(otaDesign()), design_(FlatDesign::elaborate(lib_)),
        result_(detectDeviceConstraints(design_, lib_)) {}

  Library lib_;
  FlatDesign design_;
  SfaResult result_;
};

TEST_F(SfaOtaTest, DiffPairDetected) {
  const auto* c = findPair(result_, "m1", "m2");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->accepted);
}

TEST_F(SfaOtaTest, MirrorPairDetected) {
  const auto* c = findPair(result_, "m3", "m4");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->accepted) << "shared gate+source current-mirror pattern";
}

TEST_F(SfaOtaTest, CrossCoupledPairDetected) {
  const auto* c = findPair(result_, "m6", "m7");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->accepted);
}

TEST_F(SfaOtaTest, SignalFlowPropagation) {
  // m8/m9 are driven from the two sides of matched pairs (n1/n2)
  // with equal type and size -> propagated match.
  const auto* c = findPair(result_, "m8", "m9");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->accepted);
}

TEST_F(SfaOtaTest, PassivePairSharedNetDetected) {
  // c1/c2 share no net with each other... they share vss.
  const auto* c = findPair(result_, "c1", "c2");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->accepted);
}

TEST_F(SfaOtaTest, SizeMismatchRejected) {
  // m10 has the same type as m1/m2 but 9u width.
  const auto* c = findPair(result_, "m1", "m10");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->accepted);
}

TEST_F(SfaOtaTest, SimilarityIsBinary) {
  for (const ScoredCandidate& c : result_.scored) {
    EXPECT_TRUE(c.similarity == 0.0 || c.similarity == 1.0);
    EXPECT_EQ(c.accepted, c.similarity == 1.0);
  }
}

TEST_F(SfaOtaTest, OnlyDeviceLevelScored) {
  for (const ScoredCandidate& c : result_.scored) {
    EXPECT_EQ(c.pair.level, ConstraintLevel::kDevice);
  }
}

TEST(SizesMatch, MosFoldsFingersAndMultipliers) {
  FlatDevice a, b;
  a.type = b.type = DeviceType::kNch;
  a.params.w = 4e-6;
  a.params.nf = 1;
  b.params.w = 2e-6;
  b.params.nf = 2;
  a.params.l = b.params.l = 0.1e-6;
  EXPECT_TRUE(sizesMatch(a, b, 0.01));
  b.params.l = 0.2e-6;
  EXPECT_FALSE(sizesMatch(a, b, 0.01));
}

TEST(SizesMatch, PassivesCompareValues) {
  FlatDevice a, b;
  a.type = b.type = DeviceType::kCapMom;
  a.params.value = 100e-15;
  b.params.value = 101e-15;
  EXPECT_TRUE(sizesMatch(a, b, 0.02));
  EXPECT_FALSE(sizesMatch(a, b, 0.001));
}

TEST(Sfa, DifferentHierarchiesAnalyzedSeparately) {
  NetlistBuilder b;
  b.beginSubckt("cellx", {"p", "n", "t", "vss"});
  b.nmos("ma", "p", "n", "t", "vss", 1e-6, 0.1e-6);
  b.nmos("mb", "n", "p", "t", "vss", 1e-6, 0.1e-6);
  b.endSubckt();
  b.beginSubckt("top", {"a", "bnet", "c", "vss"});
  b.inst("x1", "cellx", {"a", "bnet", "c", "vss"});
  b.inst("x2", "cellx", {"bnet", "a", "c", "vss"});
  b.endSubckt();
  const Library lib = b.build("top");
  const FlatDesign design = FlatDesign::elaborate(lib);
  const SfaResult result = detectDeviceConstraints(design, lib);
  // Each cell's internal pair is a candidate; pairs across cells are not
  // valid candidates at all.
  std::size_t accepted = 0;
  for (const auto& c : result.scored) accepted += c.accepted;
  EXPECT_EQ(accepted, 2u);
}

}  // namespace
}  // namespace ancstr::sfa
