#include "util/bench_report.h"

#include <algorithm>
#include <fstream>

#include "util/error.h"
#include "util/json.h"
#include "util/stats.h"

#ifndef ANCSTR_GIT_SHA
#define ANCSTR_GIT_SHA "unknown"
#endif
#ifndef ANCSTR_BUILD_TYPE
#define ANCSTR_BUILD_TYPE "unknown"
#endif
#ifndef ANCSTR_CXX_FLAGS
#define ANCSTR_CXX_FLAGS ""
#endif

namespace ancstr::benchio {

double BenchCaseResult::medianWallSeconds() const {
  return median(wallSeconds);
}

double BenchCaseResult::madWallSeconds() const {
  return medianAbsDeviation(wallSeconds);
}

double BenchCaseResult::minWallSeconds() const {
  return wallSeconds.empty()
             ? 0.0
             : *std::min_element(wallSeconds.begin(), wallSeconds.end());
}

double BenchCaseResult::maxWallSeconds() const {
  return wallSeconds.empty()
             ? 0.0
             : *std::max_element(wallSeconds.begin(), wallSeconds.end());
}

std::string buildGitSha() { return ANCSTR_GIT_SHA; }
std::string buildType() { return ANCSTR_BUILD_TYPE; }
std::string buildFlags() { return ANCSTR_CXX_FLAGS; }

Json benchRunToJson(const BenchRunInfo& info,
                    const std::vector<BenchCaseResult>& cases) {
  Json root = Json::object();
  root.set("schemaVersion", 1);
  root.set("binary", info.binary);
  root.set("gitSha", buildGitSha());
  root.set("buildType", buildType());
  root.set("buildFlags", buildFlags());
  root.set("threads", info.threads);
  root.set("seed", static_cast<double>(info.seed));

  Json caseArray = Json::array();
  for (const BenchCaseResult& result : cases) {
    Json entry = Json::object();
    entry.set("name", result.name);
    entry.set("reps", result.reps);
    entry.set("warmup", result.warmup);

    Json wall = Json::object();
    wall.set("median", result.medianWallSeconds());
    wall.set("mad", result.madWallSeconds());
    wall.set("min", result.minWallSeconds());
    wall.set("max", result.maxWallSeconds());
    Json samples = Json::array();
    for (const double s : result.wallSeconds) samples.push(s);
    wall.set("samples", std::move(samples));
    entry.set("wall", std::move(wall));

    Json phases = Json::array();
    for (const PhaseTiming& phase : result.report.phases) {
      Json p = Json::object();
      p.set("name", phase.name);
      p.set("seconds", phase.seconds);
      phases.push(std::move(p));
    }
    entry.set("phases", std::move(phases));
    entry.set("metrics", result.report.metrics.toJson());

    Json resource = Json::object();
    resource.set("peakRssBytes",
                 static_cast<std::size_t>(result.resource.peakRssBytes));
    resource.set("allocCount",
                 static_cast<std::size_t>(result.resource.memory.allocCount));
    resource.set("freeCount",
                 static_cast<std::size_t>(result.resource.memory.freeCount));
    resource.set("allocBytes",
                 static_cast<std::size_t>(result.resource.memory.allocBytes));
    resource.set("userCpuSeconds", result.resource.userCpuSeconds);
    resource.set("systemCpuSeconds", result.resource.systemCpuSeconds);
    entry.set("resource", std::move(resource));

    Json counters = Json::object();
    for (const auto& [name, value] : result.counters) {
      counters.set(name, value);
    }
    entry.set("counters", std::move(counters));
    caseArray.push(std::move(entry));
  }
  root.set("cases", std::move(caseArray));
  return root;
}

void writeBenchJson(const std::filesystem::path& path,
                    const BenchRunInfo& info,
                    const std::vector<BenchCaseResult>& cases) {
  std::ofstream out(path);
  if (!out) {
    throw Error("bench: cannot open '" + path.string() + "' for writing");
  }
  out << benchRunToJson(info, cases).dump(2) << '\n';
  if (!out) throw Error("bench: write failure on '" + path.string() + "'");
}

}  // namespace ancstr::benchio
