// ExtractionEngine serving benchmark (core/engine.h): cold vs warm
// repeated extraction over the five-ADC corpus, meant to be run with
// --reps 3 --warmup 1 at threads 1 and 4 like bench_smoke. The speedup
// case measures both halves in one rep and emits the cold/warm ratio plus
// a bitwise-equality check of the results, so one BENCH.json carries the
// whole serving story: wall times, engine.cache.* metrics deltas, and the
// determinism verdict.
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "circuits/benchmark.h"
#include "core/engine.h"
#include "harness.h"
#include "util/timer.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

std::span<const Library* const> adcLibs() {
  static const std::vector<circuits::CircuitBenchmark> corpus =
      circuits::adcBenchmarks();
  static const std::vector<const Library*> ptrs = [] {
    std::vector<const Library*> out;
    out.reserve(corpus.size());
    for (const circuits::CircuitBenchmark& b : corpus) out.push_back(&b.lib);
    return out;
  }();
  return ptrs;
}

/// One pipeline trained once per run; serving cases measure extraction
/// against frozen weights, so training quality (3 epochs) is irrelevant.
Pipeline& trainedPipeline(BenchContext& ctx) {
  static Pipeline pipeline = [&] {
    PipelineConfig config;
    config.train.epochs = 3;
    config.threads = ctx.threads();
    Pipeline p(config);
    p.train(adcLibs());
    return p;
  }();
  return pipeline;
}

EngineConfig engineConfig(BenchContext& ctx) {
  EngineConfig config;
  config.threads = ctx.threads();
  return config;
}

/// Shared warm engine: first touch extracts the corpus once, so every
/// later batch is served from the caches.
ExtractionEngine& warmEngine(BenchContext& ctx) {
  static ExtractionEngine engine(trainedPipeline(ctx), engineConfig(ctx));
  static const bool warmed = [] {
    engine.extractBatch(adcLibs());
    return true;
  }();
  (void)warmed;
  return engine;
}

bool bitwiseEqual(const std::vector<ExtractionResult>& a,
                  const std::vector<ExtractionResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const DetectionResult& da = a[i].detection;
    const DetectionResult& db = b[i].detection;
    if (da.scored.size() != db.scored.size() ||
        std::memcmp(&da.systemThreshold, &db.systemThreshold,
                    sizeof(double)) != 0 ||
        std::memcmp(&da.deviceThreshold, &db.deviceThreshold,
                    sizeof(double)) != 0) {
      return false;
    }
    for (std::size_t j = 0; j < da.scored.size(); ++j) {
      const ScoredCandidate& ca = da.scored[j];
      const ScoredCandidate& cb = db.scored[j];
      if (!(ca.pair.a == cb.pair.a) || !(ca.pair.b == cb.pair.b) ||
          ca.pair.hierarchy != cb.pair.hierarchy ||
          ca.pair.level != cb.pair.level || ca.accepted != cb.accepted ||
          std::memcmp(&ca.similarity, &cb.similarity, sizeof(double)) != 0) {
        return false;
      }
    }
    const nn::Matrix& za = a[i].embeddings;
    const nn::Matrix& zb = b[i].embeddings;
    if (za.rows() != zb.rows() || za.cols() != zb.cols()) return false;
    for (std::size_t r = 0; r < za.rows(); ++r) {
      if (std::memcmp(za.row(r), zb.row(r), za.cols() * sizeof(double)) !=
          0) {
        return false;
      }
    }
  }
  return true;
}

void setCacheCounters(BenchContext& ctx, const EngineCacheStats& before,
                      const EngineCacheStats& after) {
  ctx.setCounter("design_cache_hits",
                 static_cast<double>(after.design.hits - before.design.hits));
  ctx.setCounter(
      "design_cache_misses",
      static_cast<double>(after.design.misses - before.design.misses));
  ctx.setCounter("block_cache_hits",
                 static_cast<double>(after.blocks.hits - before.blocks.hits));
  ctx.setCounter(
      "block_cache_misses",
      static_cast<double>(after.blocks.misses - before.blocks.misses));
}

/// Cold serving: a fresh engine per rep, every extraction a miss.
void coldCase(BenchContext& ctx) {
  const ExtractionEngine engine(trainedPipeline(ctx), engineConfig(ctx));
  const EngineCacheStats before = engine.cacheStats();
  RunReport report;
  const std::vector<ExtractionResult> results =
      engine.extractBatch(adcLibs(), {}, &report);
  doNotOptimize(results);
  ctx.setReport(std::move(report));
  setCacheCounters(ctx, before, engine.cacheStats());
  ctx.setCounter("designs", static_cast<double>(adcLibs().size()));
}

/// Warm serving: the shared pre-warmed engine, every extraction a hit.
void warmCase(BenchContext& ctx) {
  ExtractionEngine& engine = warmEngine(ctx);
  const EngineCacheStats before = engine.cacheStats();
  RunReport report;
  const std::vector<ExtractionResult> results =
      engine.extractBatch(adcLibs(), {}, &report);
  doNotOptimize(results);
  ctx.setReport(std::move(report));
  setCacheCounters(ctx, before, engine.cacheStats());
  ctx.setCounter("designs", static_cast<double>(adcLibs().size()));
}

/// Cold and warm in one rep: emits the speedup ratio and the bitwise
/// warm-equals-cold verdict that the caching contract promises.
void speedupCase(BenchContext& ctx) {
  const ExtractionEngine cold(trainedPipeline(ctx), engineConfig(ctx));
  Stopwatch coldWatch;
  const std::vector<ExtractionResult> coldResults =
      cold.extractBatch(adcLibs());
  const double coldSeconds = coldWatch.seconds();

  ExtractionEngine& warm = warmEngine(ctx);
  Stopwatch warmWatch;
  const std::vector<ExtractionResult> warmResults =
      warm.extractBatch(adcLibs());
  const double warmSeconds = warmWatch.seconds();

  ctx.setCounter("cold_seconds", coldSeconds);
  ctx.setCounter("warm_seconds", warmSeconds);
  ctx.setCounter("speedup",
                 warmSeconds > 0.0 ? coldSeconds / warmSeconds : 0.0);
  ctx.setCounter("bitwise_equal",
                 bitwiseEqual(coldResults, warmResults) ? 1.0 : 0.0);
}

/// Restart-warm serving: a cold engine populates a --cache-dir-style disk
/// tier and is destroyed (process-restart simulation: only the directory
/// survives); a fresh engine over the same directory then serves the
/// batch. Emits the restart speedup, the bitwise restart-equals-cold
/// verdict, and the engine.disk_cache.* deltas gate_counters.py gates in
/// CI (docs/robustness.md).
void restartWarmCase(BenchContext& ctx) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("ancstr_bench_engine.cache." +
       std::to_string(static_cast<long>(::getpid())));
  std::error_code ec;
  fs::remove_all(dir, ec);  // each rep starts from an empty directory

  EngineConfig config = engineConfig(ctx);
  config.cachePath = dir;

  std::vector<ExtractionResult> coldResults;
  double coldSeconds = 0.0;
  {
    const ExtractionEngine cold(trainedPipeline(ctx), config);
    Stopwatch coldWatch;
    coldResults = cold.extractBatch(adcLibs());
    coldSeconds = coldWatch.seconds();
    cold.flushDiskWrites();
  }  // "restart": the engine (and its memory caches) are gone

  const ExtractionEngine restarted(trainedPipeline(ctx), config);
  Stopwatch warmWatch;
  const std::vector<ExtractionResult> warmResults =
      restarted.extractBatch(adcLibs());
  const double warmSeconds = warmWatch.seconds();
  const util::DiskCacheStats disk = restarted.diskCacheStats();

  ctx.setCounter("cold_seconds", coldSeconds);
  ctx.setCounter("restart_warm_seconds", warmSeconds);
  ctx.setCounter("speedup",
                 warmSeconds > 0.0 ? coldSeconds / warmSeconds : 0.0);
  ctx.setCounter("bitwise_equal",
                 bitwiseEqual(coldResults, warmResults) ? 1.0 : 0.0);
  ctx.setCounter("engine.disk_cache.hit", static_cast<double>(disk.hits));
  ctx.setCounter("engine.disk_cache.miss", static_cast<double>(disk.misses));
  ctx.setCounter("engine.disk_cache.corrupt",
                 static_cast<double>(disk.corrupt));
  ctx.setCounter("designs", static_cast<double>(adcLibs().size()));
  fs::remove_all(dir, ec);
}

[[maybe_unused]] const bool kRegistered = [] {
  registerBench("engine.extract.adc.cold", coldCase);
  registerBench("engine.extract.adc.warm", warmCase);
  registerBench("engine.extract.adc.speedup", speedupCase);
  registerBench("engine.extract.adc.restart_warm", restartWarmCase);
  return true;
}();

}  // namespace

ANCSTR_BENCH_MAIN("bench_engine")
