#include "nn/gru.h"

#include "nn/init.h"

namespace ancstr::nn {

GruCell::GruCell(std::size_t inputDim, std::size_t hiddenDim, Rng& rng)
    : inputDim_(inputDim), hiddenDim_(hiddenDim) {
  auto weightIn = [&] { return Tensor::param(xavierUniform(inputDim, hiddenDim, rng)); };
  auto weightHid = [&] { return Tensor::param(xavierUniform(hiddenDim, hiddenDim, rng)); };
  auto biasRow = [&] { return Tensor::param(Matrix(1, hiddenDim)); };
  wz_ = weightIn(); uz_ = weightHid(); bz_ = biasRow();
  wr_ = weightIn(); ur_ = weightHid(); br_ = biasRow();
  wc_ = weightIn(); uc_ = weightHid(); bc_ = biasRow();
}

Tensor GruCell::forward(const Tensor& x, const Tensor& h) const {
  const Tensor z =
      sigmoid(addRow(add(matmul(x, wz_), matmul(h, uz_)), bz_));
  const Tensor r =
      sigmoid(addRow(add(matmul(x, wr_), matmul(h, ur_)), br_));
  const Tensor c =
      tanh(addRow(add(matmul(x, wc_), matmul(hadamard(r, h), uc_)), bc_));
  return add(hadamard(oneMinus(z), h), hadamard(z, c));
}

std::vector<Tensor> GruCell::parameters() const {
  return {wz_, uz_, bz_, wr_, ur_, br_, wc_, uc_, bc_};
}

}  // namespace ancstr::nn
