#include "graph/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/diagnostics.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ancstr {

PageRankResult pageRankDetailed(const SimpleDigraph& g,
                                const PageRankOptions& options) {
  const trace::TraceSpan span("graph.pagerank");
  PageRankResult result;
  const std::size_t n = g.numVertices();
  if (n == 0) return result;
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);

  // Aggregated locally; one atomic add per call (pageRank runs on
  // ThreadPool workers during block embedding).
  std::uint64_t iterations = 0;
  result.converged = false;
  for (int iter = 0; iter < options.maxIterations; ++iter) {
    ++iterations;
    double danglingMass = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (g.outDegree(v) == 0) danglingMass += rank[v];
    }
    const double base =
        (1.0 - options.damping) * uniform +
        options.damping * danglingMass * uniform;
    std::fill(next.begin(), next.end(), base);
    for (std::uint32_t v = 0; v < n; ++v) {
      for (const std::uint32_t u : g.inNeighbors(v)) {
        next[v] += options.damping * rank[u] /
                   static_cast<double>(g.outDegree(u));
      }
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - rank[i]);
    rank.swap(next);
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  static metrics::Counter& iterationCounter =
      metrics::Registry::instance().counter("pagerank.iterations");
  iterationCounter.add(iterations);
  if (!result.converged) {
    static metrics::Counter& nonConvergedCounter =
        metrics::Registry::instance().counter("pagerank.nonconverged");
    nonConvergedCounter.add();
    log::warn() << "[" << diag::codes::kPageRankNonConverged << "] PageRank "
                << "did not converge within " << options.maxIterations
                << " iterations (|V| = " << n << ")";
  }
  result.iterations = static_cast<int>(iterations);
  result.scores = std::move(rank);
  return result;
}

std::vector<double> pageRank(const SimpleDigraph& g,
                             const PageRankOptions& options) {
  return pageRankDetailed(g, options).scores;
}

std::vector<std::uint32_t> topKByScore(const std::vector<double>& scores,
                                       std::size_t k) {
  std::vector<std::uint32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace ancstr
