#include "place/pnr.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "place/placement.h"

namespace ancstr::place {
namespace {

PlacementProblem constrainedDiffStage() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.res("r1", "op", "vdd", 1e3);
  b.res("r2", "on", "vdd", 1e3);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("cell"));
  PlacementProblem problem = buildPlacementProblem(design, 0);
  auto indexOf = [&](const std::string& name) {
    for (std::size_t i = 0; i < problem.cells.size(); ++i) {
      if (problem.cells[i].name == name) return i;
    }
    return std::size_t{0};
  };
  problem.symmetricPairs = {{indexOf("m1"), indexOf("m2")},
                            {indexOf("r1"), indexOf("r2")}};
  problem.selfSymmetric = {indexOf("mt")};
  return problem;
}

TEST(FindSymmetricNetPairs, DetectsMirrorImageNets) {
  // Cells: 0<->1 paired; nets {0,2} and {1,2} are images of each other.
  PlacementProblem problem;
  problem.cells = {{"a", 0, 1, 1}, {"b", 1, 1, 1}, {"t", 2, 1, 1}};
  problem.symmetricPairs = {{0, 1}};
  problem.nets = {{0, 2}, {1, 2}, {0, 1}};
  const auto pairs = findSymmetricNetPairs(problem);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  // net {0,1} maps to itself -> not a pair.
}

TEST(FindSymmetricNetPairs, NoPairsWithoutConstraints) {
  PlacementProblem problem;
  problem.cells = {{"a", 0, 1, 1}, {"b", 1, 1, 1}};
  problem.nets = {{0, 1}};
  EXPECT_TRUE(findSymmetricNetPairs(problem).empty());
}

TEST(PlaceAndRoute, EndToEndOnDiffStage) {
  const PlacementProblem problem = constrainedDiffStage();
  PnrOptions options;
  options.anneal.iterations = 6000;
  options.anneal.seed = 5;
  const PnrResult result = placeAndRoute(problem, options);

  EXPECT_LT(result.placement.overlap, 0.1);
  EXPECT_NEAR(symmetryViolation(problem, result.placement.solution), 0.0,
              1e-9);
  EXPECT_GT(result.gridWidth, 0);
  EXPECT_GT(result.gridHeight, 0);
  EXPECT_TRUE(result.routing.success());
  EXPECT_GT(result.routing.wirelength, 0u);
}

TEST(PlaceAndRoute, SymmetricNetsRoutedAsMirrors) {
  const PlacementProblem problem = constrainedDiffStage();
  PnrOptions options;
  options.anneal.iterations = 6000;
  options.anneal.seed = 5;
  const PnrResult result = placeAndRoute(problem, options);
  // The inp/op-side nets mirror the inn/on-side nets.
  EXPECT_FALSE(result.symmetricNets.empty());
  std::size_t mirrored = 0;
  for (const RoutedNet& net : result.routing.nets) {
    mirrored += net.mirrored ? 1u : 0u;
  }
  EXPECT_GE(mirrored, result.symmetricNets.size() > 0 ? 1u : 0u);
}

TEST(PlaceAndRoute, DeterministicPerSeed) {
  const PlacementProblem problem = constrainedDiffStage();
  PnrOptions options;
  options.anneal.iterations = 3000;
  options.anneal.seed = 8;
  const PnrResult a = placeAndRoute(problem, options);
  const PnrResult b = placeAndRoute(problem, options);
  EXPECT_EQ(a.routing.wirelength, b.routing.wirelength);
  EXPECT_EQ(a.placement.solution.rects, b.placement.solution.rects);
}

}  // namespace
}  // namespace ancstr::place
