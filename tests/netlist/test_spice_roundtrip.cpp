// Writer/parser round-trip: serialising a library and re-parsing it must
// preserve structure (device/net/instance counts, types, sizing).
#include <gtest/gtest.h>

#include "circuits/benchmark.h"
#include "netlist/builder.h"
#include "netlist/flatten.h"
#include "netlist/spice_parser.h"
#include "netlist/spice_writer.h"

namespace ancstr {
namespace {

void expectStructurallyEqual(const Library& a, const Library& b) {
  ASSERT_EQ(a.subcktCount(), b.subcktCount());
  EXPECT_EQ(a.flatDeviceCount(), b.flatDeviceCount());
  EXPECT_EQ(a.flatNetCount(), b.flatNetCount());
  for (SubcktId i = 0; i < a.subcktCount(); ++i) {
    const SubcktDef& sa = a.subckt(i);
    const auto idB = b.findSubckt(sa.name());
    ASSERT_TRUE(idB.has_value()) << sa.name();
    const SubcktDef& sb = b.subckt(*idB);
    EXPECT_EQ(sa.devices().size(), sb.devices().size()) << sa.name();
    EXPECT_EQ(sa.instances().size(), sb.instances().size()) << sa.name();
    EXPECT_EQ(sa.ports().size(), sb.ports().size()) << sa.name();
    for (const Device& dev : sa.devices()) {
      const auto devB = sb.findDevice(dev.name);
      ASSERT_TRUE(devB.has_value()) << dev.name;
      const Device& other = sb.device(*devB);
      EXPECT_EQ(dev.type, other.type) << dev.name;
      EXPECT_NEAR(dev.params.w, other.params.w, 1e-12);
      EXPECT_NEAR(dev.params.l, other.params.l, 1e-12);
      EXPECT_NEAR(dev.params.value, other.params.value,
                  std::abs(dev.params.value) * 1e-9);
      EXPECT_EQ(dev.params.nf, other.params.nf);
    }
  }
}

TEST(SpiceRoundTrip, SimpleHierarchy) {
  NetlistBuilder b;
  b.beginSubckt("inv", {"in", "out", "vdd", "vss"});
  b.pmos("mp", "out", "in", "vdd", "vdd", 2e-6, 0.1e-6);
  b.nmos("mn", "out", "in", "vss", "vss", 1e-6, 0.1e-6, 2);
  b.endSubckt();
  b.beginSubckt("buf", {"in", "out", "vdd", "vss"});
  b.inst("x1", "inv", {"in", "mid", "vdd", "vss"});
  b.inst("x2", "inv", {"mid", "out", "vdd", "vss"});
  b.cap("cl", "out", "vss", 10e-15);
  b.endSubckt();
  Library lib = b.build("buf");

  Library reparsed = parseSpice(writeSpice(lib));
  expectStructurallyEqual(lib, reparsed);
}

TEST(SpiceRoundTrip, AllBlockBenchmarks) {
  for (const auto& bench : circuits::blockBenchmarks()) {
    SCOPED_TRACE(bench.name);
    Library reparsed = parseSpice(writeSpice(bench.lib), bench.name);
    expectStructurallyEqual(bench.lib, reparsed);
  }
}

TEST(SpiceRoundTrip, AdcBenchmark) {
  const auto bench = circuits::adcBenchmark(1);
  Library reparsed = parseSpice(writeSpice(bench.lib), bench.name);
  expectStructurallyEqual(bench.lib, reparsed);
}

}  // namespace
}  // namespace ancstr
