// Deterministic fault-injection drills (docs/robustness.md): arm named
// fault sites via util/fault.h and verify that every guarded layer fails
// the way it promises to — the trainer recovers from injected NaNs with
// bitwise-deterministic results, and the IO layers surface the documented
// diagnostic codes instead of crashing or silently corrupting state.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/constraint_io.h"
#include "core/features.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "netlist/builder.h"
#include "util/error.h"
#include "util/fault.h"

namespace ancstr {
namespace {

PreparedGraph diffPairGraph() {
  NetlistBuilder b;
  b.beginSubckt("cell", {"inp", "inn", "op", "on", "vb", "vdd", "vss"});
  b.nmos("m1", "op", "inp", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("m2", "on", "inn", "tail", "vss", 2e-6, 0.2e-6);
  b.nmos("mt", "tail", "vb", "vss", "vss", 4e-6, 0.4e-6);
  b.pmos("m3", "op", "vbp", "vdd", "vdd", 4e-6, 0.2e-6);
  b.pmos("m4", "on", "vbp", "vdd", "vdd", 4e-6, 0.2e-6);
  b.cap("c1", "op", "vss", 1e-14);
  b.cap("c2", "on", "vss", 1e-14);
  b.endSubckt();
  const FlatDesign design = FlatDesign::elaborate(b.build("cell"));
  return prepareGraph(buildHeteroGraph(design), buildFeatureMatrix(design));
}

/// Runs `fn`, which must throw Error, and returns its what() text.
template <typename Fn>
std::string expectError(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an Error to be thrown";
  return {};
}

// --- trainer guardrails ------------------------------------------------

TEST(FaultInjection, TrainerRecoversFromInjectedNaN) {
  // The 2nd batch-loss reduction is corrupted to NaN; the trainer must
  // restore the epoch-entry weights, back off the LR, and retry once.
  const fault::ScopedFault armed("train.batch_loss@2");
  Rng rng(1);
  GnnModel model(GnnConfig{}, rng);
  std::vector<PreparedGraph> corpus;
  corpus.push_back(diffPairGraph());
  TrainConfig config;
  config.epochs = 4;
  const TrainStats stats = trainUnsupervised(model, corpus, config, rng);
  EXPECT_EQ(stats.epochRetries, 1);
  ASSERT_EQ(stats.epochLoss.size(), 4u);
  for (const double l : stats.epochLoss) EXPECT_TRUE(std::isfinite(l));
  EXPECT_TRUE(std::isfinite(model.embed(corpus[0]).maxAbs()));
}

TEST(FaultInjection, RecoveryIsBitwiseThreadCountIndependent) {
  // The same injected failure must produce bitwise-identical weights no
  // matter how many workers evaluate the batch fan-out (PR-1 contract).
  auto run = [](std::size_t threads) {
    const fault::ScopedFault armed("train.batch_loss@2");
    Rng rng(7);
    GnnModel model(GnnConfig{}, rng);
    std::vector<PreparedGraph> corpus;
    corpus.push_back(diffPairGraph());
    corpus.push_back(diffPairGraph());
    corpus.push_back(diffPairGraph());
    TrainConfig config;
    config.epochs = 3;
    config.batchSize = 0;  // whole epoch = one batch -> real fan-out
    const TrainStats stats =
        trainUnsupervised(model, corpus, config, rng, threads);
    EXPECT_EQ(stats.epochRetries, 1);
    return model.embed(corpus[0]);
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(FaultInjection, TrainerGivesUpAfterMaxRetries) {
  // An always-firing corruption exhausts the retry budget.
  const fault::ScopedFault armed("train.batch_loss");
  Rng rng(2);
  GnnModel model(GnnConfig{}, rng);
  std::vector<PreparedGraph> corpus;
  corpus.push_back(diffPairGraph());
  TrainConfig config;
  config.epochs = 3;
  config.maxEpochRetries = 2;
  const std::string what = expectError(
      [&] { trainUnsupervised(model, corpus, config, rng); });
  EXPECT_NE(what.find("train.retries_exhausted"), std::string::npos);
}

// --- model IO ----------------------------------------------------------

class ModelIoFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::path(testing::TempDir()) / "fault_model.txt";
    Rng rng(11);
    const GnnModel model(GnnConfig{}, rng);
    saveModelFile(model, path_);
  }

  std::filesystem::path path_;
};

TEST_F(ModelIoFaults, OpenFailureIsIoFailure) {
  const fault::ScopedFault armed("model_io.open@1");
  const std::string what = expectError([&] { loadModelFile(path_); });
  EXPECT_NE(what.find("io.failure"), std::string::npos);
  // The site fired once; the next load succeeds untouched.
  EXPECT_NO_THROW(loadModelFile(path_));
}

TEST_F(ModelIoFaults, TruncatedReadIsIoTruncated) {
  const fault::ScopedFault armed("model_io.read@1");
  const std::string what = expectError([&] { loadModelFile(path_); });
  EXPECT_NE(what.find("io.truncated"), std::string::npos);
}

TEST_F(ModelIoFaults, NonFiniteParameterIsIoNonfinite) {
  const fault::ScopedFault armed("model_io.value@1");
  const std::string what = expectError([&] { loadModelFile(path_); });
  EXPECT_NE(what.find("io.nonfinite"), std::string::npos);
}

// --- constraint IO -----------------------------------------------------

class ConstraintIoFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    NetlistBuilder b;
    b.beginSubckt("cell", {"a", "vss"});
    b.res("r1", "a", "m", 1e3);
    b.res("r2", "m", "vss", 1e3);
    b.endSubckt();
    const Library lib = b.build("cell");
    const FlatDesign design = FlatDesign::elaborate(lib);
    path_ = std::filesystem::path(testing::TempDir()) /
            "fault_constraints.json";
    std::ofstream out(path_);
    out << constraintSetToJson(design, ConstraintSet{});
  }

  std::filesystem::path path_;
};

TEST_F(ConstraintIoFaults, OpenFailureIsIoFailure) {
  const fault::ScopedFault armed("constraint_io.open@1");
  const std::string what = expectError([&] { parseConstraintsFile(path_); });
  EXPECT_NE(what.find("io.failure"), std::string::npos);
  EXPECT_NO_THROW(parseConstraintsFile(path_));
}

TEST_F(ConstraintIoFaults, TruncatedReadIsIoTruncated) {
  const fault::ScopedFault armed("constraint_io.read@1");
  const std::string what = expectError([&] { parseConstraintsFile(path_); });
  EXPECT_NE(what.find("io.truncated"), std::string::npos);
}

}  // namespace
}  // namespace ancstr
