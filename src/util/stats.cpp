#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace ancstr {

double ksStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0, ib = 0;
  double best = 0.0;
  while (ia < a.size() && ib < b.size()) {
    // Advance past ties on the smaller current value.
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    best = std::max(best, std::fabs(fa - fb));
  }
  return best;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (const double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double total = 0.0;
  for (const double x : xs) total += (x - m) * (x - m);
  return std::sqrt(total / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

double medianAbsDeviation(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = median(xs);
  std::vector<double> deviations;
  deviations.reserve(xs.size());
  for (const double x : xs) deviations.push_back(std::fabs(x - m));
  return median(std::move(deviations));
}

}  // namespace ancstr
