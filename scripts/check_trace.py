#!/usr/bin/env python3
"""Validates an ancstr trace export (--trace-out or --spans-out).

Auto-detects the format: a {"kind": "ancstr-span-tree"} document is checked
against the span-tree schema (nesting, selfUs accounting); anything else is
checked as Chrome trace_event JSON. Fails (exit 1) when the file is invalid,
when a required span name is missing, or when any event violates the schema
(docs/observability.md). Usage:

    check_trace.py TRACE_JSON [REQUIRED_SPAN ...]

With no explicit span list, the default extraction span set is required.
"""
import json
import sys

DEFAULT_REQUIRED = [
    "parse.spice",
    "pipeline.extract",
    "extract.graph_build",
    "extract.inference",
    "extract.detection",
    "detect.run",
    "detect.score",
    "graph.build",
    "model.embed",
]

SPAN_TREE_SCHEMA_VERSION = 1


def check_chrome(trace, required):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("FAIL: traceEvents missing or empty", file=sys.stderr)
        return 1

    for i, event in enumerate(events):
        for key, kind in (("name", str), ("cat", str), ("ph", str),
                          ("ts", (int, float)), ("dur", (int, float)),
                          ("pid", int), ("tid", int)):
            if not isinstance(event.get(key), kind):
                print(f"FAIL: event {i} field {key!r} malformed: {event}",
                      file=sys.stderr)
                return 1
        if event["ph"] != "X":
            print(f"FAIL: event {i} has phase {event['ph']!r}, expected 'X'",
                  file=sys.stderr)
            return 1

    names = {event["name"] for event in events}
    missing = [span for span in required if span not in names]
    if missing:
        print(f"FAIL: required spans missing: {missing}", file=sys.stderr)
        print(f"      spans present: {sorted(names)}", file=sys.stderr)
        return 1

    print(f"OK: {len(events)} events, {len(names)} distinct spans, "
          f"all {len(required)} required spans present")
    return 0


def check_span_node(node, path, names, counts):
    """Validates one span-tree node recursively. Returns an error or None."""
    for key, kind in (("name", str), ("startUs", (int, float)),
                      ("durUs", (int, float)), ("selfUs", (int, float)),
                      ("children", list)):
        if not isinstance(node.get(key), kind):
            return f"span {path} field {key!r} malformed: {node}"
    names.add(node["name"])
    counts[0] += 1
    end_us = node["startUs"] + node["durUs"]
    child_total = 0.0
    for i, child in enumerate(node["children"]):
        err = check_span_node(child, f"{path}.{i}", names, counts)
        if err:
            return err
        # Children must nest inside the parent's window (1us tolerance for
        # the separate clock reads at span entry/exit).
        if child["startUs"] < node["startUs"] - 1.0 or \
                child["startUs"] + child["durUs"] > end_us + 1.0:
            return (f"span {path} child {i} ({child['name']!r}) escapes "
                    f"parent window")
        child_total += child["durUs"]
    # selfUs must equal durUs minus time in children (small tolerance for
    # float accumulation across many children).
    expected_self = node["durUs"] - child_total
    if abs(node["selfUs"] - expected_self) > max(1.0, 1e-6 * node["durUs"]):
        return (f"span {path} selfUs {node['selfUs']} != durUs - "
                f"sum(children durUs) = {expected_self}")
    return None


def check_span_tree(tree, required):
    if tree.get("schemaVersion") != SPAN_TREE_SCHEMA_VERSION:
        print(f"FAIL: schemaVersion {tree.get('schemaVersion')!r}, expected "
              f"{SPAN_TREE_SCHEMA_VERSION}", file=sys.stderr)
        return 1
    threads = tree.get("threads")
    if not isinstance(threads, list) or not threads:
        print("FAIL: threads missing or empty", file=sys.stderr)
        return 1

    names = set()
    counts = [0]
    for t, thread in enumerate(threads):
        if not isinstance(thread.get("tid"), int) or \
                not isinstance(thread.get("spans"), list):
            print(f"FAIL: thread {t} malformed", file=sys.stderr)
            return 1
        for i, node in enumerate(thread["spans"]):
            err = check_span_node(node, f"t{t}.{i}", names, counts)
            if err:
                print(f"FAIL: {err}", file=sys.stderr)
                return 1

    missing = [span for span in required if span not in names]
    if missing:
        print(f"FAIL: required spans missing: {missing}", file=sys.stderr)
        print(f"      spans present: {sorted(names)}", file=sys.stderr)
        return 1

    print(f"OK: span tree with {len(threads)} thread(s), {counts[0]} spans, "
          f"{len(names)} distinct names, all {len(required)} required "
          f"spans present")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = argv[1]
    required = argv[2:] or DEFAULT_REQUIRED

    try:
        with open(path, encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {path}: {err}", file=sys.stderr)
        return 1

    if not isinstance(trace, dict):
        print("FAIL: top level is not an object", file=sys.stderr)
        return 1
    if trace.get("kind") == "ancstr-span-tree":
        return check_span_tree(trace, required)
    return check_chrome(trace, required)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
