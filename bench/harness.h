// Self-reporting bench harness: every bench binary registers named cases
// and gets a uniform CLI (--json-out/--reps/--warmup/--filter/--list/
// --threads/--seed/--trace-out/--spans-out), warmup + repetition with
// median/MAD, deterministic per-case seeding, and a BENCH.json report
// (util/bench_report.h) carrying wall time, phase breakdown, metrics
// delta, and resource usage. scripts/compare_bench.py diffs two such
// reports; docs/observability.md documents the schema and thresholds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/bench_report.h"
#include "util/report.h"
#include "util/rng.h"

namespace ancstr::bench {

/// Parsed harness CLI options (see usage text in harness.cpp). The
/// defaults (one rep, no warmup) keep `for b in build/bench/*; do $b;
/// done` at its historical cost; measurement-grade runs pass --reps /
/// --warmup explicitly (CI's bench-smoke uses --reps 3 --warmup 1).
struct BenchOptions {
  int reps = 1;              ///< measured repetitions per case
  int warmup = 0;            ///< unmeasured warmup runs per case
  std::string filter;        ///< substring filter over case names
  bool list = false;         ///< print case names and exit
  std::size_t threads = 0;   ///< 0 = resolveThreadCount default
  std::uint64_t seed = 42;   ///< base seed; each case derives its own
  std::string jsonOut;       ///< BENCH.json path ("" = skip)
  std::string traceOut;      ///< Chrome trace path ("" = tracing off)
  std::string spansOut;      ///< span-tree path ("" = tracing off)
};

/// Per-run state handed to each case body. The same context instance is
/// reused across warmup and measured reps of one case; rng() is reseeded
/// before every rep so all reps execute identical work.
class BenchContext {
 public:
  BenchContext(std::uint64_t caseSeed, std::size_t threads);

  /// Deterministic per-case stream, reseeded to caseSeed() each rep.
  Rng& rng() { return rng_; }

  /// baseSeed ^ fnv1a(case name): stable across binaries and filters.
  std::uint64_t caseSeed() const { return caseSeed_; }

  /// Resolved worker count for this run; cases doing parallel work must
  /// pass this into their PipelineConfig so --threads actually applies.
  std::size_t threads() const { return threads_; }

  /// 0-based measured rep index; -1 during warmup.
  int rep() const { return rep_; }
  bool measured() const { return rep_ >= 0; }

  /// Replaces this rep's phase breakdown (kept only for the rep whose
  /// wall time lands closest to the median).
  void setReport(RunReport report) { report_ = std::move(report); }

  /// Folds another report into this rep's (same-name phases add) — for
  /// cases that run several extractions per rep.
  void accumulateReport(const RunReport& other) { report_.accumulate(other); }

  /// Free-form numeric output (problem size, AUC, items/s, ...); last
  /// write per key wins and lands in BENCH.json under "counters".
  void setCounter(const std::string& name, double value) {
    counters_[name] = value;
  }

 private:
  friend class BenchRegistry;

  Rng rng_;
  std::uint64_t caseSeed_;
  std::size_t threads_;
  int rep_ = -1;
  RunReport report_;
  std::map<std::string, double> counters_;
};

using BenchFn = std::function<void(BenchContext&)>;

/// Orderd collection of named cases plus the measurement loop. Normally
/// used through the process-wide instance() + registerBench + the
/// ANCSTR_BENCH_MAIN macro; instantiable directly for tests.
class BenchRegistry {
 public:
  static BenchRegistry& instance();

  /// Registers a case; names must be unique within a binary.
  void add(std::string name, BenchFn fn);

  /// Registered case names, in registration order.
  std::vector<std::string> names() const;

  /// Runs every case whose name contains options.filter (all when empty):
  /// warmup reps unmeasured, then options.reps measured reps with wall
  /// time per rep, a metrics delta and resource delta over the measured
  /// block, and the phase report of the median-closest rep.
  std::vector<benchio::BenchCaseResult> run(const BenchOptions& options) const;

  /// Full binary entry point: parses flags, runs, prints one summary line
  /// per case, writes BENCH.json / trace / span-tree outputs. Returns the
  /// process exit code (0 ok, 1 no case matched, 2 bad usage).
  int runMain(int argc, char** argv, const std::string& binaryName) const;

  /// Parses harness flags; returns false (with a message on stderr) on
  /// unknown or malformed arguments. Exposed for tests.
  static bool parseArgs(int argc, char** argv, BenchOptions* options);

 private:
  std::vector<std::pair<std::string, BenchFn>> cases_;
};

/// Static-initializer registration hook:
///   namespace { const bool kReg = ancstr::bench::registerBench("x", run); }
bool registerBench(std::string name, BenchFn fn);

/// Keeps `value` alive past the optimizer without touching it.
template <typename T>
inline void doNotOptimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace ancstr::bench

/// Defines main() for a bench binary whose cases self-register.
#define ANCSTR_BENCH_MAIN(binaryName)                                        \
  int main(int argc, char** argv) {                                          \
    return ancstr::bench::BenchRegistry::instance().runMain(argc, argv,      \
                                                            binaryName);     \
  }
