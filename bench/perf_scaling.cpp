// Runtime-scaling microbenchmarks, backing the paper's Section V-B
// scalability claims: graph construction, GNN inference, and full
// extraction scale gently with design size, while the spectral baseline's
// per-pair eigendecompositions blow up on block-rich designs (the
// ADC4/ADC5 runtime gap in Table V).
//
// Each case runs a fixed inner iteration count over a size-parameterised
// synthetic circuit, so per-rep wall times are directly comparable across
// runs (scripts/compare_bench.py). Fixtures are cached per size; a warmup
// rep (--warmup 1) absorbs the one-time setup so measured reps see only
// the operation under test.
#include <map>

#include "baselines/s3det.h"
#include "circuits/synthetic.h"
#include "core/features.h"
#include "core/model.h"
#include "core/pipeline.h"
#include "graph/pagerank.h"
#include "harness.h"
#include "util/parallel.h"
#include "util/trace.h"

using namespace ancstr;
using namespace ancstr::bench;

namespace {

circuits::CircuitBenchmark& chain(int stages) {
  static std::map<int, circuits::CircuitBenchmark> cache;
  auto it = cache.find(stages);
  if (it == cache.end()) {
    it = cache.emplace(stages, circuits::makeDiffChain(stages)).first;
  }
  return it->second;
}

circuits::CircuitBenchmark& blockArray(int blocks) {
  static std::map<int, circuits::CircuitBenchmark> cache;
  auto it = cache.find(blocks);
  if (it == cache.end()) {
    it = cache.emplace(blocks, circuits::makeBlockArray(blocks)).first;
  }
  return it->second;
}

const FlatDesign& chainDesign(int stages) {
  static std::map<int, FlatDesign> cache;
  auto it = cache.find(stages);
  if (it == cache.end()) {
    it = cache.emplace(stages, FlatDesign::elaborate(chain(stages).lib)).first;
  }
  return it->second;
}

/// Trained pipeline over a block array, shared across reps so extraction
/// cases measure the extraction stage alone.
Pipeline& trainedOnBlocks(int blocks) {
  static std::map<int, Pipeline> cache;
  auto it = cache.find(blocks);
  if (it == cache.end()) {
    PipelineConfig config;
    config.train.epochs = 2;
    it = cache.emplace(blocks, Pipeline(config)).first;
    it->second.train({&blockArray(blocks).lib});
  }
  return it->second;
}

/// Trained state over the largest synthetic block benchmark, built once
/// and shared by every thread-sweep iteration so the sweep measures the
/// detection stage alone.
struct DetectionScalingFixture {
  static PipelineConfig makeConfig() {
    PipelineConfig config;
    config.train.epochs = 2;
    return config;
  }

  circuits::CircuitBenchmark bench = blockArray(12);
  FlatDesign design = FlatDesign::elaborate(bench.lib);
  PipelineConfig config = makeConfig();
  Pipeline pipeline{config};
  nn::Matrix z;

  DetectionScalingFixture() {
    pipeline.train({&bench.lib});
    const CircuitGraph graph = buildHeteroGraph(design, config.graph);
    z = pipeline.model().embed(
        prepareGraph(graph, buildFeatureMatrix(design, config.features)));
  }
};

DetectionScalingFixture& detectionFixture() {
  static DetectionScalingFixture fixture;
  return fixture;
}

std::string sized(const char* base, int n) {
  return std::string(base) + "/" + std::to_string(n);
}

void setSizeCounters(BenchContext& ctx, int n, int inner) {
  ctx.setCounter("n", static_cast<double>(n));
  ctx.setCounter("inner_iterations", static_cast<double>(inner));
}

[[maybe_unused]] const bool kRegistered = [] {
  for (const int n : {4, 16, 64, 256}) {
    registerBench(sized("perf.elaboration", n), [n](BenchContext& ctx) {
      constexpr int kInner = 8;
      for (int i = 0; i < kInner; ++i) {
        doNotOptimize(FlatDesign::elaborate(chain(n).lib));
      }
      setSizeCounters(ctx, n, kInner);
    });
  }
  for (const int n : {4, 16, 64, 256}) {
    registerBench(sized("perf.graph_build", n), [n](BenchContext& ctx) {
      constexpr int kInner = 8;
      for (int i = 0; i < kInner; ++i) {
        doNotOptimize(buildHeteroGraph(chainDesign(n)));
      }
      setSizeCounters(ctx, n, kInner);
    });
  }
  for (const int n : {4, 16, 64}) {
    registerBench(sized("perf.gnn_inference", n), [n](BenchContext& ctx) {
      static std::map<int, std::pair<PreparedGraph, GnnModel>> cache;
      auto it = cache.find(n);
      if (it == cache.end()) {
        const FlatDesign& design = chainDesign(n);
        Rng rng(1);
        it = cache
                 .emplace(n, std::make_pair(
                                 prepareGraph(buildHeteroGraph(design),
                                              buildFeatureMatrix(design)),
                                 GnnModel(GnnConfig{}, rng)))
                 .first;
      }
      constexpr int kInner = 4;
      for (int i = 0; i < kInner; ++i) {
        doNotOptimize(it->second.second.embed(it->second.first));
      }
      setSizeCounters(ctx, n, kInner);
    });
  }
  for (const int n : {4, 16, 64, 256}) {
    registerBench(sized("perf.pagerank", n), [n](BenchContext& ctx) {
      static std::map<int, SimpleDigraph> cache;
      auto it = cache.find(n);
      if (it == cache.end()) {
        it = cache
                 .emplace(n,
                          buildHeteroGraph(chainDesign(n)).graph.simplified())
                 .first;
      }
      constexpr int kInner = 8;
      for (int i = 0; i < kInner; ++i) doNotOptimize(pageRank(it->second));
      setSizeCounters(ctx, n, kInner);
    });
  }
  for (const int n : {2, 6, 10}) {
    registerBench(sized("perf.full_extraction", n), [n](BenchContext& ctx) {
      Pipeline& pipeline = trainedOnBlocks(n);
      constexpr int kInner = 2;
      for (int i = 0; i < kInner; ++i) {
        const ExtractionResult result = pipeline.extract(blockArray(n).lib);
        if (ctx.measured() && i == 0) ctx.setReport(result.report);
        doNotOptimize(result);
      }
      setSizeCounters(ctx, n, kInner);
    });
  }
  // The delta against perf.full_extraction is the cost of *enabled*
  // tracing (every case already pays the compiled-but-disabled cost, a
  // relaxed atomic load per span site).
  for (const int n : {2, 6, 10}) {
    registerBench(
        sized("perf.full_extraction_traced", n), [n](BenchContext& ctx) {
          Pipeline& pipeline = trainedOnBlocks(n);
          trace::TraceCollector& collector = trace::TraceCollector::instance();
          const bool wasEnabled = collector.enabled();
          if (!wasEnabled) collector.setEnabled(true);
          constexpr int kInner = 2;
          for (int i = 0; i < kInner; ++i) {
            doNotOptimize(pipeline.extract(blockArray(n).lib));
          }
          if (!wasEnabled) {
            collector.setEnabled(false);
            collector.clear();
          }
          setSizeCounters(ctx, n, kInner);
        });
  }
  for (const int n : {2, 6, 10}) {
    registerBench(sized("perf.s3det_extraction", n), [n](BenchContext& ctx) {
      static std::map<int, FlatDesign> cache;
      auto it = cache.find(n);
      if (it == cache.end()) {
        it = cache.emplace(n, FlatDesign::elaborate(blockArray(n).lib)).first;
      }
      constexpr int kInner = 2;
      for (int i = 0; i < kInner; ++i) {
        doNotOptimize(
            s3det::detectSystemConstraints(it->second, blockArray(n).lib));
      }
      setSizeCounters(ctx, n, kInner);
    });
  }
  for (const int n : {4, 16, 64}) {
    registerBench(sized("perf.training", n), [n](BenchContext& ctx) {
      PipelineConfig config;
      config.train.epochs = 1;
      Pipeline pipeline(config);
      pipeline.train({&chain(n).lib});
      setSizeCounters(ctx, n, 1);
    });
  }
  // Thread sweeps: one case per worker count; speedup at T threads =
  // median(/1) / median(/T). Results are bitwise identical across the
  // sweep, so this measures pure wall-clock scaling.
  for (const int t : {1, 2, 4, 8}) {
    registerBench(sized("perf.detection_threads", t), [t](BenchContext& ctx) {
      DetectionScalingFixture& f = detectionFixture();
      DetectorConfig config = f.config.detector;
      config.graphOptions = f.config.graph;
      const std::size_t threads = static_cast<std::size_t>(t);
      const BlockEmbeddingContext context{f.pipeline.model(),
                                          f.config.features};
      constexpr int kInner = 2;
      for (int i = 0; i < kInner; ++i) {
        doNotOptimize(detectConstraints(f.design, f.bench.lib, f.z, config,
                                        context, threads));
      }
      ctx.setCounter("threads",
                     static_cast<double>(util::resolveThreadCount(threads)));
      ctx.setCounter("inner_iterations", kInner);
    });
  }
  // Whole-epoch batches: the per-graph forward/loss/backward fan-out is
  // the parallel section; weights stay bitwise identical across the sweep.
  for (const int t : {1, 2, 4}) {
    registerBench(sized("perf.training_threads", t), [t](BenchContext& ctx) {
      static const std::vector<circuits::CircuitBenchmark> corpus = [] {
        std::vector<circuits::CircuitBenchmark> out;
        for (int i = 0; i < 8; ++i) out.push_back(circuits::makeDiffChain(6));
        return out;
      }();
      PipelineConfig config;
      config.train.epochs = 2;
      config.train.batchSize = 0;  // whole epoch per step -> widest fan-out
      config.threads = static_cast<std::size_t>(t);
      std::vector<const Library*> libs;
      for (const auto& bench : corpus) libs.push_back(&bench.lib);
      Pipeline pipeline(config);
      pipeline.train(libs);
      ctx.setCounter("threads", static_cast<double>(util::resolveThreadCount(
                                    config.threads)));
    });
  }
  return true;
}();

}  // namespace

ANCSTR_BENCH_MAIN("perf_scaling")
