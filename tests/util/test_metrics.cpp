#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.h"
#include "util/json.h"

namespace ancstr::metrics {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(Histogram, BucketBoundariesUseLeSemantics) {
  // Prometheus "le": a value equal to a bound lands in that bound's
  // bucket, strictly-greater values go one bucket up.
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.numBuckets(), 4u);

  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (boundary is inclusive)
  h.observe(1.001); // <= 2.0
  h.observe(2.0);   // <= 2.0
  h.observe(4.0);   // <= 4.0
  h.observe(4.5);   // overflow
  h.observe(1e300); // overflow

  EXPECT_EQ(h.bucketCount(0), 2u);
  EXPECT_EQ(h.bucketCount(1), 2u);
  EXPECT_EQ(h.bucketCount(2), 1u);
  EXPECT_EQ(h.bucketCount(3), 2u);
  EXPECT_EQ(h.totalCount(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 4.0 + 4.5 + 1e300);
}

TEST(Histogram, NegativeAndZeroValuesLandInFirstBucket) {
  Histogram h({0.0, 10.0});
  h.observe(-5.0);
  h.observe(0.0);
  h.observe(5.0);
  EXPECT_EQ(h.bucketCount(0), 2u);
  EXPECT_EQ(h.bucketCount(1), 1u);
  EXPECT_EQ(h.bucketCount(2), 0u);
}

TEST(Histogram, ResetZeroesBucketsCountAndSum) {
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(3.0);
  h.reset();
  EXPECT_EQ(h.bucketCount(0), 0u);
  EXPECT_EQ(h.bucketCount(1), 0u);
  EXPECT_EQ(h.totalCount(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(Histogram, ConcurrentObserveLosesNothing) {
  Histogram h({10.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.totalCount(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Registry, LookupsAreStableAcrossReset) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.registry.stable");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &reg.counter("test.registry.stable"));
}

TEST(Registry, HistogramBoundsFixedOnFirstRegistration) {
  Registry& reg = Registry::instance();
  Histogram& h = reg.histogram("test.registry.hist", {1.0, 2.0});
  Histogram& again = reg.histogram("test.registry.hist", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.upperBounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Snapshot, SinceSubtractsCountersAndHistograms) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.snapshot.counter");
  Histogram& h = reg.histogram("test.snapshot.hist", {1.0});
  Gauge& g = reg.gauge("test.snapshot.gauge");
  c.reset();
  h.reset();

  c.add(3);
  h.observe(0.5);
  g.set(1.0);
  const Snapshot before = reg.snapshot();

  c.add(4);
  h.observe(0.5);
  h.observe(2.0);
  g.set(9.0);
  const Snapshot delta = reg.snapshot().since(before);

  EXPECT_EQ(delta.counters.at("test.snapshot.counter"), 4u);
  const HistogramSnapshot& hs = delta.histograms.at("test.snapshot.hist");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_EQ(hs.buckets.at(0), 1u);
  EXPECT_EQ(hs.buckets.at(1), 1u);
  EXPECT_DOUBLE_EQ(hs.sum, 2.5);
  // Gauges are last-write-wins, not differences.
  EXPECT_EQ(delta.gauges.at("test.snapshot.gauge"), 9.0);
}

TEST(Snapshot, ToJsonHasStableSchema) {
  Registry& reg = Registry::instance();
  reg.counter("test.json.counter").reset();
  reg.counter("test.json.counter").add(2);
  reg.histogram("test.json.hist", {1.0}).observe(0.5);

  const Json json = reg.snapshot().toJson();
  ASSERT_TRUE(json.isObject());
  ASSERT_NE(json.find("counters"), nullptr);
  ASSERT_NE(json.find("gauges"), nullptr);
  ASSERT_NE(json.find("histograms"), nullptr);
  EXPECT_EQ(json.get("counters").get("test.json.counter").asNumber(), 2.0);
  const Json& hist = json.get("histograms").get("test.json.hist");
  ASSERT_NE(hist.find("le"), nullptr);
  ASSERT_NE(hist.find("buckets"), nullptr);
  EXPECT_EQ(hist.get("buckets").size(), hist.get("le").size() + 1);
  EXPECT_EQ(hist.get("count").asNumber(), 1.0);

  // Round-trips through the parser.
  std::string error;
  EXPECT_TRUE(Json::parse(json.dump(2), &error).has_value()) << error;
}

TEST(Snapshot, PrometheusSanitisesNamesAndTypesEveryMetric) {
  Snapshot snapshot;
  snapshot.counters["test.prom.counter"] = 7;
  snapshot.gauges["test.prom.gauge"] = 2.5;

  const std::string text = snapshot.toPrometheus();
  EXPECT_NE(text.find("# TYPE ancstr_test_prom_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ancstr_test_prom_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ancstr_test_prom_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("ancstr_test_prom_gauge 2.5\n"), std::string::npos);
  // Dots never survive into exposition names.
  EXPECT_EQ(text.find("test.prom"), std::string::npos);
}

TEST(Snapshot, PrometheusHistogramBucketsAreCumulative) {
  Snapshot snapshot;
  HistogramSnapshot h;
  h.upperBounds = {1.0, 2.0};
  h.buckets = {3, 2, 1};  // per-bin: <=1, <=2, overflow
  h.count = 6;
  h.sum = 7.5;
  snapshot.histograms["test.prom.hist"] = h;

  const std::string text = snapshot.toPrometheus();
  EXPECT_NE(text.find("# TYPE ancstr_test_prom_hist histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("ancstr_test_prom_hist_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ancstr_test_prom_hist_bucket{le=\"2\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("ancstr_test_prom_hist_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("ancstr_test_prom_hist_sum 7.5\n"), std::string::npos);
  EXPECT_NE(text.find("ancstr_test_prom_hist_count 6\n"), std::string::npos);
}

TEST(Snapshot, PrometheusCustomPrefixAndEmptySnapshot) {
  Snapshot snapshot;
  EXPECT_EQ(snapshot.toPrometheus(), "");
  snapshot.counters["c"] = 1;
  const std::string text = snapshot.toPrometheus("myapp");
  EXPECT_NE(text.find("myapp_c 1\n"), std::string::npos);
}

TEST(Snapshot, PrometheusPassesEmbeddedLabelBlocksThrough) {
  // Registry names may carry a literal {k="v"} label block (e.g.
  // process.build_info). Only the prefix before '{' is sanitized; the
  // block itself is exposition syntax and must survive verbatim, and the
  // "# TYPE" line uses the bare metric name.
  Snapshot snapshot;
  snapshot.gauges["process.build_info{git_sha=\"abc123\","
                  "build_type=\"Release\"}"] = 1.0;
  snapshot.counters["weird.name{path=\"a.b/c\"}"] = 2;

  const std::string text = snapshot.toPrometheus();
  EXPECT_NE(text.find("# TYPE ancstr_process_build_info gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("ancstr_process_build_info{git_sha=\"abc123\","
                      "build_type=\"Release\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ancstr_weird_name counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ancstr_weird_name{path=\"a.b/c\"} 2\n"),
            std::string::npos);
  // The dot in the base name is sanitized even with a label block present.
  EXPECT_EQ(text.find("weird.name"), std::string::npos);
}

TEST(Registry, PublishProcessMetricsSetsUptimeAndBuildInfo) {
  publishProcessMetrics();
  const Snapshot snapshot = Registry::instance().snapshot();
  ASSERT_EQ(snapshot.gauges.count("process.uptime_seconds"), 1u);
  EXPECT_GE(snapshot.gauges.at("process.uptime_seconds"), 0.0);

  bool foundBuildInfo = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind("process.build_info{git_sha=\"", 0) == 0) {
      foundBuildInfo = true;
      EXPECT_EQ(value, 1.0);
      EXPECT_NE(name.find("build_type=\""), std::string::npos);
    }
  }
  EXPECT_TRUE(foundBuildInfo);

  // Re-publishing refreshes the uptime gauge monotonically.
  publishProcessMetrics();
  const Snapshot again = Registry::instance().snapshot();
  EXPECT_GE(again.gauges.at("process.uptime_seconds"),
            snapshot.gauges.at("process.uptime_seconds"));
}

}  // namespace
}  // namespace ancstr::metrics
