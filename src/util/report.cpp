#include "util/report.h"

#include <cstdio>

#include "util/json.h"
#include "util/table.h"

namespace ancstr {

namespace {

std::string secondsCell(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace

void RunReport::accumulate(const RunReport& other) {
  for (const PhaseTiming& phase : other.phases) {
    bool found = false;
    for (PhaseTiming& mine : phases) {
      if (mine.name == phase.name) {
        mine.seconds += phase.seconds;
        found = true;
        break;
      }
    }
    if (!found) phases.push_back(phase);
  }
  metrics = other.metrics;
  if (requestId == 0) requestId = other.requestId;
  if (correlationId.empty()) correlationId = other.correlationId;
  if (kernel.empty()) kernel = other.kernel;
  std::vector<diag::Diagnostic> more = other.diagnostics;
  addDiagnostics(std::move(more));
}

double RunReport::phaseSeconds(std::string_view name) const {
  for (const PhaseTiming& phase : phases) {
    if (phase.name == name) return phase.seconds;
  }
  return 0.0;
}

double RunReport::totalSeconds() const {
  double total = 0.0;
  for (const PhaseTiming& phase : phases) total += phase.seconds;
  return total;
}

Json RunReport::toJson() const {
  Json root = Json::object();
  if (requestId != 0) {
    root.set("requestId", static_cast<std::size_t>(requestId));
  }
  if (!correlationId.empty()) root.set("correlationId", correlationId);
  if (!kernel.empty()) root.set("kernel", kernel);
  Json phaseArray = Json::array();
  for (const PhaseTiming& phase : phases) {
    Json entry = Json::object();
    entry.set("name", phase.name);
    entry.set("seconds", phase.seconds);
    phaseArray.push(std::move(entry));
  }
  root.set("phases", std::move(phaseArray));
  root.set("totalSeconds", totalSeconds());
  root.set("metrics", metrics.toJson());
  if (!diagnostics.empty()) {
    Json diagArray = Json::array();
    for (const diag::Diagnostic& d : diagnostics) {
      Json entry = Json::object();
      entry.set("severity", std::string(diag::severityName(d.severity)));
      entry.set("code", d.code);
      if (!d.file.empty()) entry.set("file", d.file);
      if (d.line != 0) entry.set("line", static_cast<double>(d.line));
      entry.set("message", d.message);
      if (d.requestId != 0) {
        entry.set("requestId", static_cast<std::size_t>(d.requestId));
      }
      diagArray.push(std::move(entry));
    }
    root.set("diagnostics", std::move(diagArray));
  }
  return root;
}

std::string RunReport::toTable() const {
  std::string out;

  TextTable phaseTable;
  phaseTable.setHeader({"phase", "seconds"});
  for (const PhaseTiming& phase : phases) {
    phaseTable.addRow({phase.name, secondsCell(phase.seconds)});
  }
  phaseTable.addSeparator();
  phaseTable.addRow({"total", secondsCell(totalSeconds())});
  out += phaseTable.render();

  TextTable metricTable;
  metricTable.setHeader({"metric", "value"});
  bool anyMetric = false;
  for (const auto& [name, value] : metrics.counters) {
    if (value == 0) continue;
    metricTable.addRow({name, std::to_string(value)});
    anyMetric = true;
  }
  for (const auto& [name, value] : metrics.gauges) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    metricTable.addRow({name, buf});
    anyMetric = true;
  }
  for (const auto& [name, histogram] : metrics.histograms) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "count=%llu sum=%.6g",
                  static_cast<unsigned long long>(histogram.count),
                  histogram.sum);
    metricTable.addRow({name, buf});
    anyMetric = true;
  }
  if (anyMetric) {
    out += "\n";
    out += metricTable.render();
  }

  if (!diagnostics.empty()) {
    out += "\ndiagnostics (";
    out += std::to_string(diagnostics.size());
    out += "):\n";
    for (const diag::Diagnostic& d : diagnostics) {
      out += "  ";
      out += d.str();
      out += "\n";
    }
  }
  return out;
}

}  // namespace ancstr
